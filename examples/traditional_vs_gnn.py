"""The paper's opening claim, measured: traditional combinatorial tracking
scales superlinearly with pileup; the GNN pipeline scales with hits.

Overlays 1–8 collisions per event, reconstructs each with (a) the
combinatorial seed-and-follow finder and (b) GNN-pipeline inference, and
prints per-event times, seed combinatorics, and the fitted log–log
scaling exponents.

    python examples/traditional_vs_gnn.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import CombinatorialTrackFinder
from repro.detector import (
    DetectorGeometry,
    EventSimulator,
    GeometricBuilderConfig,
    build_candidate_graph,
    generate_pileup_event,
)
from repro.graph import components_as_lists, connected_components
from repro.metrics import match_tracks
from repro.models import IGNNConfig, InteractionGNN
from repro.tensor import Tensor, no_grad


def gnn_inference(event, geometry, builder_cfg, model):
    graph = build_candidate_graph(event, geometry, builder_cfg)
    with no_grad():
        logits = model(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
    pruned = graph.edge_mask_subgraph(logits.numpy() > 0.0)
    labels = connected_components(pruned.rows, pruned.cols, pruned.num_nodes)
    return components_as_lists(labels, min_size=3)


def main() -> None:
    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=15, noise_fraction=0.05)
    finder = CombinatorialTrackFinder(geometry)
    builder_cfg = GeometricBuilderConfig(dphi_max=0.3, dz_max=300.0)
    # an untrained IGNN prices the *runtime*; accuracy needs training
    model = InteractionGNN(
        IGNNConfig(node_features=6, edge_features=2, hidden=32, num_layers=4, seed=0)
    )

    rng = np.random.default_rng(7)
    print(f"{'mu':>3} | {'hits':>6} | {'seeds':>7} | {'comb time':>10} | "
          f"{'comb eff':>8} | {'GNN time':>9}")
    hits_list, comb_times, gnn_times = [], [], []
    for mu in (1, 2, 4, 8):
        ev = generate_pileup_event(sim, mu, rng)
        t0 = time.perf_counter()
        tracks = finder.find_tracks(ev)
        t_comb = time.perf_counter() - t0
        score = match_tracks(tracks, ev.particle_ids)
        t0 = time.perf_counter()
        gnn_inference(ev, geometry, builder_cfg, model)
        t_gnn = time.perf_counter() - t0
        print(
            f"{mu:>3} | {ev.num_hits:>6} | {finder.seed_count(ev):>7} | "
            f"{1e3 * t_comb:>7.1f} ms | {score.efficiency:>8.2f} | "
            f"{1e3 * t_gnn:>6.1f} ms"
        )
        hits_list.append(ev.num_hits)
        comb_times.append(t_comb)
        gnn_times.append(t_gnn)

    s_comb = np.polyfit(np.log(hits_list), np.log(comb_times), 1)[0]
    s_gnn = np.polyfit(np.log(hits_list), np.log(gnn_times), 1)[0]
    print(f"\nlog-log slope vs hits: combinatorial {s_comb:.2f}, GNN {s_gnn:.2f}")
    print("(the paper's §I claim: traditional superlinear, GNN ~linear in hits)")


if __name__ == "__main__":
    main()
