"""Matrix-based bulk ShaDow sampling (Figure 2) — the sampler API.

Samples minibatches from an Ex3-like event graph with the sequential
Algorithm-2 sampler and the matrix-based bulk sampler, verifies they
produce structurally identical batches, and times the amortisation of
sampling k minibatches in one bulk step (Eq. 1).

    python examples/bulk_sampling_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.detector import dataset_config, make_dataset
from repro.sampling import BulkShadowSampler, ShadowSampler

DEPTH, FANOUT, BATCH = 3, 6, 128  # the paper's ShaDow hyper-parameters


def main() -> None:
    graph = make_dataset(dataset_config("ex3_like").with_sizes(1, 0, 0)).train[0]
    graph.to_csr(symmetric=True)  # warm the adjacency cache
    print(f"event graph: {graph.num_nodes} vertices, {graph.num_edges} edges")

    rng = np.random.default_rng(0)
    batch = rng.choice(graph.num_nodes, size=BATCH, replace=False)

    sequential = ShadowSampler(depth=DEPTH, fanout=FANOUT)
    bulk = BulkShadowSampler(depth=DEPTH, fanout=FANOUT)

    sb = sequential.sample(graph, batch, np.random.default_rng(1))
    bb = bulk.sample(graph, batch, np.random.default_rng(1))
    print(
        f"sequential: {sb.graph.num_nodes} sampled vertices, "
        f"{sb.graph.num_edges} edges, {sb.num_components} components"
    )
    print(
        f"bulk:       {bb.graph.num_nodes} sampled vertices, "
        f"{bb.graph.num_edges} edges, {bb.num_components} components"
    )
    assert sb.num_components == bb.num_components == BATCH
    assert np.array_equal(sb.node_parent[sb.roots], batch)
    assert np.array_equal(bb.node_parent[bb.roots], batch)

    # --- amortisation across k stacked minibatches (Eq. 1) ---------------
    print(f"\nper-batch sampling time vs k (batch {BATCH}, d={DEPTH}, s={FANOUT})")
    batches = [rng.choice(graph.num_nodes, size=BATCH, replace=False) for _ in range(16)]
    t0 = time.perf_counter()
    for b in batches:
        sequential.sample(graph, b, rng)
    t_seq = (time.perf_counter() - t0) / len(batches)
    print(f"  sequential: {1e3 * t_seq:7.2f} ms/batch")
    for k in (1, 2, 4, 8, 16):
        t0 = time.perf_counter()
        bulk.sample_bulk(graph, batches[:k], rng)
        t_bulk = (time.perf_counter() - t0) / k
        print(f"  bulk k={k:>2}:  {1e3 * t_bulk:7.2f} ms/batch  ({t_seq / t_bulk:4.1f}x)")


if __name__ == "__main__":
    main()
