"""Quickstart: simulate collision events, train the five-stage pipeline,
and reconstruct particle tracks.

Runs in about a minute on a laptop CPU::

    python examples/quickstart.py

Pipeline (Figure 1 of the paper):
  hits → embedding MLP → fixed-radius graph → filter MLP → Interaction GNN
       → connected components = track candidates
"""

from __future__ import annotations

import numpy as np

from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
from repro.pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig


def main() -> None:
    # --- 1. simulate a handful of collision events -----------------------
    geometry = DetectorGeometry.barrel_only()
    simulator = EventSimulator(
        geometry,
        gun=ParticleGun(pt_min=0.5, pt_max=10.0),
        particles_per_event=25,
        hit_efficiency=0.98,
        noise_fraction=0.05,
    )
    events = [simulator.generate(np.random.default_rng(i), event_id=i) for i in range(8)]
    train_events, val_events, test_events = events[:5], events[5:6], events[6:]
    print(f"simulated {len(events)} events, "
          f"~{np.mean([e.num_hits for e in events]):.0f} hits each")

    # --- 2. configure and train the pipeline -----------------------------
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=20,
        filter_epochs=20,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",        # matrix-based bulk ShaDow sampling (ours)
            epochs=6,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    pipeline = ExaTrkXPipeline(config, geometry)
    report = pipeline.fit(train_events, val_events)

    print("\nstage diagnostics")
    print(f"  graph construction edge efficiency: {report.graph_edge_efficiency:.3f}")
    print(f"  filter true-segment recall:         {report.filter_segment_recall:.3f}")
    print(f"  filter kept edge fraction:          {report.filter_kept_fraction:.3f}")
    print(f"  GNN validation precision / recall:  "
          f"{report.gnn_final_precision:.3f} / {report.gnn_final_recall:.3f}")

    # --- 3. reconstruct unseen events ------------------------------------
    print("\ntrack reconstruction on held-out events")
    for event in test_events:
        score = pipeline.score_event(event)
        print(
            f"  event {event.event_id}: efficiency={score.efficiency:.2f} "
            f"fake rate={score.fake_rate:.2f} "
            f"({score.num_matched}/{score.num_reconstructable} particles matched, "
            f"{score.num_candidates} candidates)"
        )


if __name__ == "__main__":
    main()
