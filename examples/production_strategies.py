"""Production-pipeline strategies: module map, walkthrough, persistence.

The paper evaluates one configuration (metric learning + connected
components); production pipelines expose strategy switches.  This script
fits four pipeline variants on the same simulated events and compares
their tracking scores on a held-out pileup event, then round-trips the
best metric-learning variant through save/load:

* construction: metric learning vs module map;
* track building: connected components vs score-guided walkthrough.

    python examples/production_strategies.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.detector import DetectorGeometry, EventSimulator, merge_events
from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    load_pipeline,
    save_pipeline,
)


def main() -> None:
    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=20, noise_fraction=0.05)
    events = [sim.generate(np.random.default_rng(i), event_id=i) for i in range(15)]
    train_ev, val_ev = events[:12], events[12:13]
    # held-out test at pileup 2 — where the strategy choices matter
    test_event = merge_events(events[13:15], event_id=99)

    gnn = GNNTrainConfig(
        mode="bulk", epochs=5, batch_size=64, hidden=16,
        num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
    )
    variants = {
        "metric + CC": PipelineConfig(
            embedding_dim=6, embedding_epochs=18, filter_epochs=18,
            frnn_radius=0.3, gnn=gnn, track_builder="cc",
        ),
        "metric + walkthrough": PipelineConfig(
            embedding_dim=6, embedding_epochs=18, filter_epochs=18,
            frnn_radius=0.3, gnn=gnn, track_builder="walkthrough",
        ),
        "module map + CC": PipelineConfig(
            construction="module_map", filter_epochs=18, gnn=gnn,
            track_builder="cc",
        ),
        "module map + walkthrough": PipelineConfig(
            construction="module_map", filter_epochs=18, gnn=gnn,
            track_builder="walkthrough",
        ),
    }

    best_pipe = None
    print(f"{'variant':<26} | {'graph eff':>9} | {'track eff':>9} | {'fake rate':>9}")
    for name, cfg in variants.items():
        pipe = ExaTrkXPipeline(cfg, geometry)
        report = pipe.fit(train_ev, val_ev)
        score = pipe.score_event(test_event)
        print(
            f"{name:<26} | {report.graph_edge_efficiency:>9.3f} | "
            f"{score.efficiency:>9.3f} | {score.fake_rate:>9.3f}"
        )
        if name == "metric + walkthrough":
            best_pipe = pipe

    # --- deployment: persist and reload ----------------------------------
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "pipeline.npz")
        save_pipeline(best_pipe, path)
        loaded = load_pipeline(path, geometry)
        again = loaded.score_event(test_event)
        print(
            f"\nsaved → loaded ({os.path.getsize(path) / 1024:.0f} KiB): "
            f"efficiency {again.efficiency:.3f} (identical inference, no retraining)"
        )


if __name__ == "__main__":
    main()
