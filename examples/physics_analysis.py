"""Physics closure: from reconstructed tracks to physics quantities.

Trains the pipeline, reconstructs held-out events, then performs the
analysis steps a physicist would run on the output:

* per-stage diagnostics (edge counts, segment recall, purity, GNN AUC);
* helix fits of every track candidate → transverse-momentum estimates;
* pT resolution against the generated truth;
* reconstruction efficiency binned in truth pT (low-pT tracks curl more
  and are harder — the efficiency turn-on curve shows it).

    python examples/physics_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.detector import DetectorGeometry, EventSimulator, ParticleGun
from repro.metrics import evaluate_tracking
from repro.pipeline import (
    ExaTrkXPipeline,
    GNNTrainConfig,
    PipelineConfig,
    diagnose_event,
)


def main() -> None:
    geometry = DetectorGeometry.barrel_only()
    simulator = EventSimulator(
        geometry,
        gun=ParticleGun(pt_min=0.5, pt_max=8.0),
        particles_per_event=25,
        noise_fraction=0.05,
    )
    events = [simulator.generate(np.random.default_rng(i), event_id=i) for i in range(10)]
    train_ev, val_ev, test_ev = events[:6], events[6:7], events[7:]

    pipe = ExaTrkXPipeline(
        PipelineConfig(
            embedding_dim=6,
            embedding_epochs=20,
            filter_epochs=20,
            frnn_radius=0.3,
            gnn=GNNTrainConfig(
                mode="bulk", epochs=6, batch_size=64, hidden=16,
                num_layers=2, mlp_layers=2, depth=2, fanout=4, bulk_k=4,
            ),
        ),
        geometry,
    )
    pipe.fit(train_ev, val_ev)

    # --- per-stage diagnostics on one test event --------------------------
    print("per-stage diagnostics (first test event)")
    for line in diagnose_event(pipe, test_ev[0]).render():
        print("  " + line)

    # --- batch evaluation: scores, pT resolution, efficiency vs pT -------
    evaluation = evaluate_tracking(pipe, test_ev, pt_edges=[0.5, 1.0, 1.5, 2.5, 4.0, 8.0])
    print("\naggregate tracking evaluation over held-out events")
    for line in evaluation.render():
        print("  " + line)
    if evaluation.pt_residuals.size:
        res = evaluation.pt_residuals
        print(f"  68% pT-residual interval = [{np.percentile(res, 16):+.3f}, "
              f"{np.percentile(res, 84):+.3f}]")


if __name__ == "__main__":
    main()
