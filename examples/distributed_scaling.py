"""Distributed data parallelism with the coalesced all-reduce — the
paper's Figure-3 / Section III-D machinery as a script.

Trains the GNN stage with simulated DDP at several rank counts, comparing
the per-parameter all-reduce baseline against the coalesced (stacked
flat-buffer) strategy, and prints measured call counts plus modeled NVLink
communication time from the α–β cost model.

    python examples/distributed_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.detector import dataset_config, make_dataset
from repro.distributed import NVLINK_A100
from repro.models import IGNNConfig, InteractionGNN
from repro.pipeline import GNNTrainConfig, train_gnn


def main() -> None:
    dataset = make_dataset(dataset_config("ex3_like").with_sizes(4, 1, 1))
    train, val = dataset.train, dataset.val

    common = dict(
        mode="bulk", bulk_k=2, epochs=1, batch_size=128,
        hidden=32, num_layers=4, mlp_layers=2, depth=2, fanout=4,
        eval_every=10_000,
    )

    print(f"{'P':>2} | {'allreduce':<14} | {'calls':>6} | {'modeled comm':>12} | in sync")
    for world in (1, 2, 4):
        for strategy in ("per_parameter", "coalesced"):
            cfg = GNNTrainConfig(world_size=world, allreduce=strategy, **common)
            res = train_gnn(train, val, cfg)
            stats = res.comm_stats
            print(
                f"{world:>2} | {strategy:<14} | {stats.num_allreduce_calls:>6} | "
                f"{1e3 * stats.modeled_seconds:9.2f} ms | "
                f"{'yes' if res.model is not None else '?'}"
            )

    # the latency arithmetic behind Section III-D
    model = InteractionGNN(
        IGNNConfig(
            node_features=train[0].num_node_features,
            edge_features=train[0].num_edge_features,
            hidden=common["hidden"],
            num_layers=common["num_layers"],
        )
    )
    sizes = [p.size * 4 for p in model.parameters()]
    print(
        f"\nIGNN has {len(sizes)} parameter tensors totalling "
        f"{sum(sizes) / 1e6:.2f} MB"
    )
    for world in (2, 4, 8):
        speedup = NVLINK_A100.coalescing_speedup(sizes, world)
        print(
            f"  P={world}: one all-reduce per tensor "
            f"{1e6 * NVLINK_A100.allreduce_sequence_time(sizes, world):8.1f} us "
            f"vs coalesced {1e6 * NVLINK_A100.coalesced_time(sizes, world):6.1f} us "
            f"→ {speedup:.1f}x"
        )


if __name__ == "__main__":
    main()
