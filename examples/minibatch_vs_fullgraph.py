"""The paper's Figure-4 experiment as a script: does ShaDow minibatch
training beat full-graph training on the Ex3-like dataset?

Trains the Interaction GNN stage three ways on identical graphs —
full-graph, sequential ShaDow (the PyG baseline), and matrix-based bulk
ShaDow (ours) — and prints the validation precision/recall trajectory of
each, plus where the full-graph regime starts skipping events when the
device memory budget shrinks.

    python examples/minibatch_vs_fullgraph.py
"""

from __future__ import annotations

import numpy as np

from repro.detector import dataset_config, make_dataset
from repro.memory import ActivationMemoryModel
from repro.models import IGNNConfig
from repro.pipeline import GNNTrainConfig, train_gnn


def main() -> None:
    dataset = make_dataset(dataset_config("ex3_like").with_sizes(4, 2, 2))
    train, val = dataset.train, dataset.val
    print("dataset:", ", ".join(f"{g.num_nodes}v/{g.num_edges}e" for g in train))

    common = dict(
        epochs=6, batch_size=128, hidden=16, num_layers=2, mlp_layers=2,
        depth=2, fanout=4, lr=2e-3, seed=3,
    )
    runs = {
        "full-graph": GNNTrainConfig(mode="full", **common),
        "ShaDow (sequential)": GNNTrainConfig(mode="shadow", **common),
        "ShaDow (bulk, ours)": GNNTrainConfig(mode="bulk", bulk_k=4, **common),
    }

    results = {}
    for name, cfg in runs.items():
        results[name] = train_gnn(train, val, cfg)
        final = results[name].history.final
        print(
            f"{name:>22}: precision={final.val_precision:.3f} "
            f"recall={final.val_recall:.3f} f1={final.val_f1:.3f} "
            f"({results[name].trained_steps} steps, "
            f"{sum(r.epoch_seconds for r in results[name].history.records):.1f}s)"
        )

    best_mini = max(
        results["ShaDow (sequential)"].history.final.val_f1,
        results["ShaDow (bulk, ours)"].history.final.val_f1,
    )
    print(
        f"\nminibatch beats full-graph by "
        f"{best_mini - results['full-graph'].history.final.val_f1:+.3f} F1 "
        "(the Figure-4 conclusion)"
    )

    # --- why full-graph training skips events ----------------------------
    memory = ActivationMemoryModel(
        IGNNConfig(
            node_features=train[0].num_node_features,
            edge_features=train[0].num_edge_features,
            hidden=common["hidden"],
            num_layers=common["num_layers"],
        )
    )
    footprints = [memory.total_bytes(g.num_nodes, g.num_edges) / 1e6 for g in train]
    print(
        f"\nfull-graph activation footprints: "
        f"{', '.join(f'{f:.0f} MB' for f in footprints)}"
    )
    cap = np.median(footprints) * 1e6
    res = train_gnn(
        train, val, GNNTrainConfig(mode="full", capacity_bytes=int(cap), **common)
    )
    print(
        f"with a {cap / 1e6:.0f} MB activation budget the full-graph trainer "
        f"skipped {res.skipped_graphs} graph-epochs "
        f"(paper: 'Exa.TrkX will skip particle graphs that are too large')"
    )


if __name__ == "__main__":
    main()
