"""Root conftest: register the per-test timeout cap.

``pytest_plugins`` is only honoured in the rootdir conftest, which is
why this file exists at the repository root.  The plugin is a no-op
shim when the real ``pytest-timeout`` distribution is installed (CI)
and a SIGALRM fallback otherwise (the hermetic dev container) — see
:mod:`repro.testing.timeout_plugin`.
"""

import os
import sys

# The suite runs as `PYTHONPATH=src python -m pytest`; make the plugin
# importable even when PYTHONPATH was not set (e.g. bare `pytest`).
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ["repro.testing.timeout_plugin"]
