"""Input validation and quarantine: malformed data never crashes a run.

Production tracking ingests events from detectors, DAQ replays, and
simulation — and some of them are garbage: NaN coordinates from a failed
calibration, duplicate hits from a double-read, layer ids outside the
geometry, truth arrays that disagree with each other.  The policy here
is *quarantine, don't crash*: a composable validator classifies each
event (or training graph) against a set of named rules, and the
:class:`Quarantine` filter drops offenders with a structured reason —
``guard.quarantine.*`` counters, a tracer event, and optionally one JSON
line per offender in a quarantine log — while the healthy remainder of
the batch/epoch/stream proceeds untouched.

Rules are plain callables returning ``None`` (pass) or a human-readable
detail string (fail), so deployments can extend the default sets with
site-specific checks without touching this module.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_telemetry, get_tracer

__all__ = [
    "ValidationIssue",
    "ValidationRule",
    "EventValidator",
    "GraphValidator",
    "QuarantineLog",
    "Quarantine",
]


@dataclass(frozen=True)
class ValidationIssue:
    """One failed rule: which rule, and what exactly was wrong."""

    rule: str
    detail: str


@dataclass(frozen=True)
class ValidationRule:
    """A named predicate over an event/graph.

    ``check`` returns ``None`` when the input passes, or a detail string
    describing the violation.
    """

    name: str
    check: Callable[[object], Optional[str]]

    def __call__(self, obj: object) -> Optional[ValidationIssue]:
        detail = self.check(obj)
        if detail is None:
            return None
        return ValidationIssue(rule=self.name, detail=detail)


# ----------------------------------------------------------------------
# event rules
# ----------------------------------------------------------------------
def _rule_finite_positions(event) -> Optional[str]:
    pos = np.asarray(event.positions, dtype=np.float64)
    if pos.size and not np.isfinite(pos).all():
        bad = int(np.count_nonzero(~np.isfinite(pos).all(axis=1)))
        return f"{bad} hit(s) with NaN/Inf coordinates"
    return None


def _rule_nonempty(event) -> Optional[str]:
    if event.num_hits == 0:
        return "event has no hits"
    return None


def _rule_consistent_lengths(event) -> Optional[str]:
    n = event.positions.shape[0]
    lengths = {
        "layer_ids": len(event.layer_ids),
        "particle_ids": len(event.particle_ids),
        "hit_order": len(event.hit_order),
    }
    bad = {k: v for k, v in lengths.items() if v != n}
    if bad:
        return f"hit arrays disagree on length (positions={n}, {bad})"
    return None


def _rule_duplicate_hits(event) -> Optional[str]:
    if event.num_hits == 0:
        return None
    if len(event.layer_ids) != event.positions.shape[0]:
        return None  # consistent_lengths reports this; rules stay independent
    # a hit's identity is its (layer, position) record: two identical
    # rows are a double-read, which downstream graph construction would
    # happily wire into zero-length edges
    keys = np.concatenate(
        [
            np.asarray(event.layer_ids, dtype=np.float64).reshape(-1, 1),
            np.asarray(event.positions, dtype=np.float64),
        ],
        axis=1,
    )
    unique = np.unique(keys, axis=0)
    dupes = keys.shape[0] - unique.shape[0]
    if dupes > 0:
        return f"{dupes} duplicate hit record(s) (identical layer + position)"
    return None


def _rule_layer_range(valid_layers: Optional[frozenset]):
    def check(event) -> Optional[str]:
        layers = np.asarray(event.layer_ids)
        if layers.size == 0:
            return None
        if np.any(layers < 0):
            return f"{int(np.count_nonzero(layers < 0))} hit(s) with negative layer id"
        if valid_layers is not None:
            known = np.isin(layers, list(valid_layers))
            if not known.all():
                unknown = sorted(set(np.asarray(layers)[~known].tolist()))[:5]
                return f"layer id(s) outside the geometry: {unknown}"
        return None

    return check


def _rule_truth_consistency(event) -> Optional[str]:
    pid = np.asarray(event.particle_ids)
    order = np.asarray(event.hit_order)
    if pid.size == 0:
        return None
    if pid.size != order.size:
        return f"particle_ids ({pid.size}) vs hit_order ({order.size}) length mismatch"
    true_mask = pid > 0
    if np.any(order[true_mask] < 0):
        n = int(np.count_nonzero(order[true_mask] < 0))
        return f"{n} truth hit(s) with negative hit_order"
    if np.any(order[~true_mask] >= 0):
        n = int(np.count_nonzero(order[~true_mask] >= 0))
        return f"{n} noise hit(s) carrying a truth hit_order"
    if np.any(true_mask):
        pairs = np.stack([pid[true_mask], order[true_mask]], axis=1)
        if np.unique(pairs, axis=0).shape[0] != pairs.shape[0]:
            return "duplicate (particle, hit_order) pairs — ambiguous truth segments"
    return None


# ----------------------------------------------------------------------
# graph rules (train_gnn ingestion)
# ----------------------------------------------------------------------
def _rule_graph_nonempty(graph) -> Optional[str]:
    if graph.num_nodes == 0:
        return "graph has no nodes"
    return None


def _rule_graph_finite_features(graph) -> Optional[str]:
    for label, arr in (("node", graph.x), ("edge", graph.y)):
        if arr is not None and arr.size and not np.isfinite(arr).all():
            return f"NaN/Inf in {label} features"
    return None


def _rule_graph_edge_range(graph) -> Optional[str]:
    if graph.num_edges == 0:
        return None
    lo = int(graph.edge_index.min())
    hi = int(graph.edge_index.max())
    if lo < 0 or hi >= graph.num_nodes:
        return (
            f"edge endpoints outside [0, {graph.num_nodes}) "
            f"(observed [{lo}, {hi}])"
        )
    return None


def _rule_graph_labels(graph) -> Optional[str]:
    if graph.edge_labels is None:
        return "graph carries no edge labels"
    if len(graph.edge_labels) != graph.num_edges:
        return (
            f"edge_labels length {len(graph.edge_labels)} != "
            f"num_edges {graph.num_edges}"
        )
    return None


class _Validator:
    """Shared engine: run every rule, collect the issues."""

    def __init__(self, rules: Sequence[ValidationRule]) -> None:
        if not rules:
            raise ValueError("validator needs at least one rule")
        self.rules: Tuple[ValidationRule, ...] = tuple(rules)

    @property
    def rule_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.rules)

    def validate(self, obj) -> List[ValidationIssue]:
        """All violated rules for ``obj`` (empty list = valid)."""
        issues = []
        for rule in self.rules:
            issue = rule(obj)
            if issue is not None:
                issues.append(issue)
        return issues

    def is_valid(self, obj) -> bool:
        return not self.validate(obj)

    def with_rule(self, rule: ValidationRule) -> "_Validator":
        """A new validator with ``rule`` appended (composability)."""
        out = type(self).__new__(type(self))
        _Validator.__init__(out, self.rules + (rule,))
        return out


class EventValidator(_Validator):
    """Default rule set over :class:`repro.detector.Event` inputs.

    Parameters
    ----------
    valid_layers:
        Known layer ids from the detector geometry; ``None`` only checks
        for negative ids.
    min_hits:
        Events with fewer hits are degenerate (a graph built from them
        can never yield a reconstructable track).
    extra_rules:
        Site-specific rules appended after the defaults.
    """

    def __init__(
        self,
        valid_layers: Optional[Sequence[int]] = None,
        min_hits: int = 1,
        extra_rules: Sequence[ValidationRule] = (),
    ) -> None:
        if min_hits < 1:
            raise ValueError("min_hits must be >= 1")
        layers = frozenset(int(l) for l in valid_layers) if valid_layers is not None else None

        def rule_min_hits(event) -> Optional[str]:
            if event.num_hits < min_hits:
                return f"only {event.num_hits} hit(s); need >= {min_hits}"
            return None

        rules = [
            ValidationRule("consistent_lengths", _rule_consistent_lengths),
            ValidationRule("nonempty", _rule_nonempty),
            ValidationRule("min_hits", rule_min_hits),
            ValidationRule("finite_positions", _rule_finite_positions),
            ValidationRule("duplicate_hits", _rule_duplicate_hits),
            ValidationRule("layer_range", _rule_layer_range(layers)),
            ValidationRule("truth_consistency", _rule_truth_consistency),
        ]
        rules.extend(extra_rules)
        super().__init__(rules)

    @classmethod
    def for_geometry(cls, geometry, min_hits: int = 1) -> "EventValidator":
        """Validator whose layer-range rule knows the geometry's layers."""
        layer_ids = [s.layer_id for s in list(geometry.barrel) + list(geometry.endcaps)]
        return cls(valid_layers=layer_ids, min_hits=min_hits)

    @classmethod
    def critical(cls) -> "EventValidator":
        """The minimal always-on rule set: inputs that would *poison a
        stage* rather than merely reconstruct badly.

        NaN/Inf coordinates propagate through the embedding MLP into
        every downstream score, and mismatched hit-array lengths crash
        graph construction outright — so these two rules run on the
        serve path even when full ``validate_inputs`` is off.  Everything
        else (duplicate hits, layer range, truth consistency) degrades
        physics but cannot corrupt the process, and stays opt-in.
        """
        out = cls.__new__(cls)
        _Validator.__init__(
            out,
            [
                ValidationRule("consistent_lengths", _rule_consistent_lengths),
                ValidationRule("finite_positions", _rule_finite_positions),
            ],
        )
        return out


class GraphValidator(_Validator):
    """Default rule set over :class:`repro.graph.EventGraph` training inputs."""

    def __init__(
        self,
        require_labels: bool = True,
        extra_rules: Sequence[ValidationRule] = (),
    ) -> None:
        rules = [
            ValidationRule("nonempty", _rule_graph_nonempty),
            ValidationRule("finite_features", _rule_graph_finite_features),
            ValidationRule("edge_range", _rule_graph_edge_range),
        ]
        if require_labels:
            rules.append(ValidationRule("labels", _rule_graph_labels))
        rules.extend(extra_rules)
        super().__init__(rules)


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------
class QuarantineLog:
    """Append-only JSONL log of quarantined inputs (thread-safe).

    One line per offender::

        {"context": "serve.submit", "kind": "event", "id": 42,
         "rules": ["finite_positions"],
         "issues": [{"rule": "finite_positions", "detail": "..."}]}

    Parameters
    ----------
    path:
        JSONL destination (created on first record).
    max_bytes:
        Size-capped rotation: when appending a record would push the
        active file past this many bytes, it is rotated to
        ``path.1`` (existing ``path.N`` shift to ``path.N+1``) and a
        fresh file is started.  ``None`` (default) grows unbounded —
        fine for tests, not for a sustained hostile feed.
    keep_files:
        Rotated generations retained (``path.1`` … ``path.keep_files``);
        older ones are deleted.  Ignored when ``max_bytes`` is ``None``.
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        keep_files: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if keep_files < 1:
            raise ValueError("keep_files must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.keep_files = keep_files
        self.rotations = 0
        self._lock = threading.Lock()

    def record(self, context: str, kind: str, obj_id, issues: Sequence[ValidationIssue]) -> None:
        line = json.dumps(
            {
                "context": context,
                "kind": kind,
                "id": obj_id,
                "rules": [i.rule for i in issues],
                "issues": [{"rule": i.rule, "detail": i.detail} for i in issues],
            }
        )
        data = line + "\n"
        with self._lock:
            if self.max_bytes is not None:
                self._maybe_rotate(len(data.encode("utf-8")))
            with open(self.path, "a") as fh:
                fh.write(data)

    def _maybe_rotate(self, incoming_bytes: int) -> None:
        """Rotate ``path`` → ``path.1`` → … when the cap would be crossed.

        Called under ``_lock``.  A single record larger than the cap
        still lands in a fresh file — records are never dropped or
        split, so the cap is a rotation trigger, not a hard truncation.
        """
        try:
            current = os.path.getsize(self.path)
        except OSError:
            return  # nothing written yet
        if current == 0 or current + incoming_bytes <= self.max_bytes:
            return
        oldest = f"{self.path}.{self.keep_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for gen in range(self.keep_files - 1, 0, -1):
            src = f"{self.path}.{gen}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{gen + 1}")
        os.replace(self.path, f"{self.path}.1")
        self.rotations += 1


@dataclass
class Quarantine:
    """Validator + accounting: filter a stream, never crash on bad input.

    Parameters
    ----------
    validator:
        An :class:`EventValidator` / :class:`GraphValidator` (anything
        with ``validate``).
    context:
        Where in the stack this quarantine sits (``"pipeline.fit"``,
        ``"train_gnn"``, ``"serve.submit"``) — becomes the counter suffix
        and the log's ``context`` field.
    log:
        Optional :class:`QuarantineLog` receiving one JSONL line per
        quarantined input.
    kind:
        ``"event"`` or ``"graph"`` (log/telemetry labelling only).
    """

    validator: _Validator
    context: str = "guard"
    log: Optional[QuarantineLog] = None
    kind: str = "event"
    quarantined: int = 0
    passed: int = 0
    reasons: List[Tuple[object, List[ValidationIssue]]] = field(default_factory=list)

    def admit(self, obj, obj_id=None) -> bool:
        """True if ``obj`` passes; False (and record it) if quarantined."""
        issues = self.validator.validate(obj)
        if not issues:
            self.passed += 1
            return True
        self.quarantined += 1
        if obj_id is None:
            obj_id = getattr(obj, "event_id", None)
        self.reasons.append((obj_id, issues))
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("guard.quarantine.total").add(1)
            telemetry.metrics.counter(f"guard.quarantine.{self.context}").add(1)
            for issue in issues:
                telemetry.metrics.counter(f"guard.quarantine.rule.{issue.rule}").add(1)
        get_tracer().event(
            "guard.quarantine",
            category="guard",
            context=self.context,
            kind=self.kind,
            id=obj_id,
            rules=",".join(i.rule for i in issues),
        )
        if self.log is not None:
            self.log.record(self.context, self.kind, obj_id, issues)
        return False

    def filter(self, objects: Sequence) -> List:
        """The admitted subset of ``objects``, in order."""
        return [obj for obj in objects if self.admit(obj)]
