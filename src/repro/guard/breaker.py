"""Circuit breaker: contain a persistently failing serving stage.

The serving engine already degrades a *slow* batch (GNN skipped when the
latency budget is blown).  What it could not survive before this module
is a GNN stage that *keeps failing* — a poisoned model file, an OOM-ing
kernel, injected :class:`repro.faults.StageFault` chaos.  Retrying such
a stage on every batch burns the latency budget of every request behind
it; the classic answer is a circuit breaker:

::

          failures >= threshold
    closed ────────────────────▶ open
      ▲                           │ cooldown elapsed
      │ probe successes           ▼
      └──────────────────── half-open ──▶ (probe fails → open again)

* **closed** — normal operation; consecutive failures are counted and a
  success resets the count.
* **open** — the stage is not attempted at all; callers route to their
  fallback (degraded GNN-skip serving).  After ``cooldown_s`` on the
  injected clock the breaker lets one probe through.
* **half-open** — probes trickle through; ``probe_successes`` in a row
  close the breaker, any failure reopens it and restarts the cooldown.

The breaker is deliberately unaware of *what* it protects: callers
report ``record_success`` / ``record_failure`` and ask ``allow()``.
Time comes from an injectable clock (``now`` attribute, wall or
:class:`repro.faults.SimClock`), so every transition is deterministic in
tests.  All methods are thread-safe (the engine's worker pool shares one
breaker).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..obs import get_telemetry, get_tracer

__all__ = ["BreakerConfig", "BreakerOpenError", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class BreakerOpenError(RuntimeError):
    """The protected stage was invoked while the breaker is open."""


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker knobs.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (stage exceptions, and latency breaches if
        the caller reports them) that trip closed → open.
    cooldown_s:
        Seconds (on the breaker's clock) the breaker stays open before
        admitting a half-open probe.
    probe_successes:
        Consecutive half-open successes required to close.
    """

    failure_threshold: int = 3
    cooldown_s: float = 1.0
    probe_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class _WallClock:
    @property
    def now(self) -> float:
        return time.perf_counter()


class CircuitBreaker:
    """closed → open → half-open state machine over an injectable clock.

    Parameters
    ----------
    config:
        :class:`BreakerConfig` thresholds.
    clock:
        Object with a ``now`` attribute in seconds; defaults to the wall
        clock.
    name:
        Telemetry prefix — transitions emit ``guard.breaker.<name>.*``
        counters and a state gauge (0 = closed, 1 = half-open, 2 = open).
    on_transition:
        Optional callback ``(old_state, new_state)`` for callers that
        need to react (logging, health endpoints).
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock=None,
        name: str = "stage",
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock if clock is not None else _WallClock()
        self.name = name
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.transitions: Dict[str, int] = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # lock held; promote open → half-open once the cooldown elapses
        if self._state == OPEN and (
            self.clock.now - self._opened_at >= self.config.cooldown_s
        ):
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May the protected stage be attempted right now?

        ``True`` in closed and half-open (the probe), ``False`` while
        open.  Calling this does not consume anything; report the
        attempt's outcome with :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            return self._effective_state() != OPEN

    # -- outcomes -------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.probe_successes:
                    self._transition(CLOSED)
            elif state == CLOSED:
                self._consecutive_failures = 0

    def record_failure(self, kind: str = "exception") -> None:
        """Report one failed attempt (``kind``: "exception" | "latency")."""
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter(
                f"guard.breaker.{self.name}.failures.{kind}"
            ).add(1)
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                # the probe failed: straight back to open, fresh cooldown
                self._transition(OPEN)
            elif state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.config.failure_threshold:
                    self._transition(OPEN)
            # open: the stage should not have been attempted; ignore

    # -- internals ------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        # lock held
        old = self._state
        if new_state == old:
            return
        self._state = new_state
        self.transitions[new_state] += 1
        if new_state == OPEN:
            self._opened_at = self.clock.now
            self._probe_successes = 0
        elif new_state == CLOSED:
            self._consecutive_failures = 0
            self._probe_successes = 0
        elif new_state == HALF_OPEN:
            self._probe_successes = 0
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter(f"guard.breaker.{self.name}.{new_state}").add(1)
            telemetry.metrics.gauge(f"guard.breaker.{self.name}.state").set(
                _STATE_GAUGE[new_state]
            )
        get_tracer().event(
            "guard.breaker.transition",
            category="guard",
            breaker=self.name,
            old=old,
            new=new_state,
        )
        if self.on_transition is not None:
            self.on_transition(old, new_state)
