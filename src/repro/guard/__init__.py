"""End-to-end guardrails: quarantine, stability watchdog, circuit breaker.

``repro.guard`` is the resilience layer threaded through every stage of
the stack (see ``docs/resilience.md``):

* :mod:`repro.guard.validation` — composable input validators and the
  :class:`Quarantine` filter applied at ingestion
  (:meth:`repro.pipeline.ExaTrkXPipeline.fit`,
  :func:`repro.pipeline.train_gnn`) and at
  :meth:`repro.serve.InferenceEngine.submit`: malformed events/graphs
  are skipped with a structured reason instead of crashing the epoch or
  the serving worker;
* :mod:`repro.guard.watchdog` — per-step loss / grad-norm divergence
  detection driving checkpoint rollback + LR backoff in the trainers;
* :mod:`repro.guard.breaker` — the closed → open → half-open circuit
  breaker wrapping the serving engine's GNN stage.

Everything emits ``guard.*`` counters/gauges/events through
:mod:`repro.obs`, and every recovery path is deterministically testable
via :mod:`repro.faults` (:class:`~repro.faults.NumericFault`,
:class:`~repro.faults.StageFault`, corrupters).
"""

from .breaker import BreakerConfig, BreakerOpenError, CircuitBreaker
from .validation import (
    EventValidator,
    GraphValidator,
    Quarantine,
    QuarantineLog,
    ValidationIssue,
    ValidationRule,
)
from .watchdog import (
    DivergenceError,
    StabilityWatchdog,
    TrainingUnstableError,
    WatchdogConfig,
    global_grad_norm,
)

__all__ = [
    "ValidationIssue",
    "ValidationRule",
    "EventValidator",
    "GraphValidator",
    "QuarantineLog",
    "Quarantine",
    "WatchdogConfig",
    "StabilityWatchdog",
    "DivergenceError",
    "TrainingUnstableError",
    "global_grad_norm",
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
]
