"""Training stability watchdog: detect divergence, drive auto-rollback.

A long training run has two numeric failure modes the fault-tolerant
runtime of :mod:`repro.pipeline.trainers` cannot retry its way out of:

* a **non-finite step** — NaN/Inf loss or gradient (hardware fault,
  injected :class:`repro.faults.NumericFault`, or a genuinely unstable
  recipe), which would silently poison every replica at the next
  all-reduce; and
* a **loss spike** — a finite but exploding loss (``spike_factor`` ×
  the rolling-window median), the classic precursor of divergence.

The watchdog is a pure observer with a budget: trainers feed it every
step's loss (and the global gradient norm), it raises
:class:`DivergenceError` the moment either trigger fires, and
:func:`repro.pipeline.trainers.train_gnn` responds by rolling back to
the last good checkpoint, backing off the learning rate, and retrying —
at most ``max_rollbacks`` times before the typed
:class:`TrainingUnstableError` escapes to the caller.

State machine::

    observing ──divergence──▶ rolled-back (LR × backoff, window reset)
        ▲                          │ retry (budget left)
        └──────────────────────────┘
                                   │ budget exhausted
                                   ▼
                          TrainingUnstableError

Everything is deterministic: no wall-clock, no randomness — two runs
with the same seed and fault plan diverge, roll back, and recover
identically (verified by the determinism tests).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

__all__ = [
    "WatchdogConfig",
    "DivergenceError",
    "TrainingUnstableError",
    "StabilityWatchdog",
    "global_grad_norm",
]


class DivergenceError(RuntimeError):
    """Training diverged: non-finite step or loss spike.

    Raised by :meth:`StabilityWatchdog.observe_loss` /
    :meth:`~StabilityWatchdog.observe_grad_norm`; caught by the
    rollback loop in :func:`repro.pipeline.trainers.train_gnn`.
    """

    def __init__(self, message: str, step: Optional[int] = None, value: float = float("nan")):
        super().__init__(message)
        self.step = step
        self.value = value


class TrainingUnstableError(RuntimeError):
    """The rollback budget is exhausted and training still diverges."""

    def __init__(self, message: str, rollbacks: int, last_error: Optional[BaseException] = None):
        super().__init__(message)
        self.rollbacks = rollbacks
        self.last_error = last_error


@dataclass(frozen=True)
class WatchdogConfig:
    """Stability-watchdog knobs.

    Parameters
    ----------
    window:
        Rolling window of recent finite losses the spike detector
        compares against.
    spike_factor:
        A loss above ``spike_factor ×`` the window median is divergence.
    min_history:
        Spike detection arms only after this many observations (early
        losses are legitimately noisy).
    max_rollbacks:
        Rollback budget; the rollback exceeding it raises
        :class:`TrainingUnstableError`.
    lr_backoff:
        Learning-rate multiplier applied at each rollback.
    """

    window: int = 8
    spike_factor: float = 10.0
    min_history: int = 3
    max_rollbacks: int = 2
    lr_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must be > 1")
        if self.min_history < 1:
            raise ValueError("min_history must be >= 1")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")


def global_grad_norm(model) -> float:
    """L2 norm over every parameter gradient of ``model``.

    Parameters without a gradient contribute nothing; NaN/Inf anywhere
    makes the result non-finite (which is the point).
    """
    total = 0.0
    for p in model.parameters():
        if p.grad is None:
            continue
        g = np.asarray(p.grad, dtype=np.float64)
        if not np.isfinite(g).all():
            return float("inf") if not np.isnan(g).any() else float("nan")
        total += float(np.dot(g.ravel(), g.ravel()))
    return math.sqrt(total)


class StabilityWatchdog:
    """Observe per-step loss / grad-norm; raise on divergence.

    One instance lives across every rollback attempt of a
    :func:`~repro.pipeline.trainers.train_gnn` call, so the rollback
    budget is global to the run, not per attempt.
    """

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.rollbacks = 0
        self.divergences = 0
        self.events: List[str] = []
        self._losses: Deque[float] = deque(maxlen=self.config.window)
        self._observed = 0

    # -- observation ---------------------------------------------------
    def observe_loss(self, value: float, step: Optional[int] = None) -> None:
        """Feed one training-step loss; raises :class:`DivergenceError`."""
        value = float(value)
        if not math.isfinite(value):
            self._diverged(f"non-finite loss {value!r}", step, value)
        if (
            self._observed >= self.config.min_history
            and self._losses
        ):
            baseline = float(np.median(self._losses))
            if baseline > 0 and value > self.config.spike_factor * baseline:
                self._diverged(
                    f"loss spike: {value:.4g} > {self.config.spike_factor:g} × "
                    f"rolling median {baseline:.4g}",
                    step,
                    value,
                )
        self._losses.append(value)
        self._observed += 1

    def observe_grad_norm(self, value: float, step: Optional[int] = None) -> None:
        """Feed one global gradient norm; raises on NaN/Inf."""
        value = float(value)
        if not math.isfinite(value):
            self._diverged(f"non-finite global grad norm {value!r}", step, value)

    def _diverged(self, reason: str, step: Optional[int], value: float) -> None:
        self.divergences += 1
        self.events.append(reason)
        raise DivergenceError(
            reason + (f" at step {step}" if step is not None else ""),
            step=step,
            value=value,
        )

    # -- rollback budget ----------------------------------------------
    def can_rollback(self) -> bool:
        return self.rollbacks < self.config.max_rollbacks

    def register_rollback(self) -> float:
        """Consume one rollback; returns the LR backoff factor.

        Also resets the loss window — post-rollback losses restart from
        the restored checkpoint and must not be compared against the
        diverging tail.
        """
        if not self.can_rollback():
            raise TrainingUnstableError(
                f"rollback budget ({self.config.max_rollbacks}) exhausted",
                rollbacks=self.rollbacks,
            )
        self.rollbacks += 1
        self._losses.clear()
        self._observed = 0
        return self.config.lr_backoff
