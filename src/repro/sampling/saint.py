"""GraphSAINT random-walk subgraph sampler.

The third member of the subgraph-sampling family the paper cites (Zeng et
al. 2020).  Where ShaDow runs an *independent* bounded walk per root and
trains on disjoint per-root components, GraphSAINT runs several random
walks from a set of start vertices and trains on the *single* subgraph
induced by their union — cheaper per batch, but roots share context.

Included for the sampler-taxonomy ablation; the Exa.TrkX experiments use
ShaDow.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from .base import SampledBatch, Sampler

__all__ = ["SaintRWSampler"]


class SaintRWSampler(Sampler):
    """Random-walk GraphSAINT sampler.

    Parameters
    ----------
    walk_length:
        Steps per walk (GraphSAINT-RW's ``h``).
    num_walks_per_root:
        Independent walks started from every batch vertex.
    """

    def __init__(self, walk_length: int = 3, num_walks_per_root: int = 1) -> None:
        if walk_length < 1 or num_walks_per_root < 1:
            raise ValueError("walk_length and num_walks_per_root must be >= 1")
        self.walk_length = walk_length
        self.num_walks_per_root = num_walks_per_root

    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        """Union-of-walks induced subgraph for the batch."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise ValueError("empty batch")
        adj = graph.to_csr(symmetric=True)
        current = np.repeat(batch, self.num_walks_per_root)
        touched = [batch.copy()]
        for _ in range(self.walk_length):
            nxt = np.empty_like(current)
            alive = np.ones(current.shape[0], dtype=bool)
            for i, v in enumerate(current):
                start, end = adj.indptr[v], adj.indptr[v + 1]
                if end == start:
                    alive[i] = False
                    nxt[i] = v
                    continue
                nxt[i] = adj.indices[start + rng.integers(end - start)]
            current = nxt
            touched.append(current[alive].copy())
        nodes = np.unique(np.concatenate(touched))
        sub = induced_subgraph(graph, nodes)
        return SampledBatch(
            graph=sub.graph,
            node_parent=sub.node_index,
            edge_parent=sub.edge_index_parent,
            component_ids=None,
            roots=np.searchsorted(sub.node_index, batch),
        )
