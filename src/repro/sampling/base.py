"""Common sampler types.

A sampler consumes ``(graph, batch_vertices)`` and produces a
:class:`SampledBatch`: a single (typically block-diagonal) subgraph the
IGNN can train on, plus the index maps back into the parent event graph.
For ShaDow the subgraph has one connected block per batch vertex
(Algorithm 2's ``APPEND_COMPONENT``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graph import EventGraph
from ..graph.subgraph import InducedSubgraph
from ..obs import get_tracer

__all__ = ["SampledBatch", "Sampler", "stack_components"]


@dataclass
class SampledBatch:
    """One training batch after sampling.

    Attributes
    ----------
    graph:
        The sampled subgraph with compact vertex ids (the ``A_S`` of
        Algorithm 2; block-diagonal across batch vertices for ShaDow).
    node_parent:
        ``(k,)`` parent vertex id per sampled vertex.
    edge_parent:
        ``(m_s,)`` parent edge id per sampled edge (labels/metrics map
        through this).
    component_ids:
        ``(k,)`` which batch vertex's component each sampled vertex
        belongs to (``None`` for non-ShaDow samplers).
    roots:
        ``(b,)`` compact vertex id of each batch vertex within
        ``graph`` (``None`` when roots are not tracked).
    """

    graph: EventGraph
    node_parent: np.ndarray
    edge_parent: np.ndarray
    component_ids: Optional[np.ndarray] = None
    roots: Optional[np.ndarray] = None

    @property
    def num_components(self) -> int:
        if self.component_ids is None:
            return 1
        return int(self.component_ids.max()) + 1 if len(self.component_ids) else 0

    def labels(self) -> np.ndarray:
        """Edge labels of the sampled subgraph (from the parent)."""
        if self.graph.edge_labels is None:
            raise ValueError("sampled graph carries no labels")
        return self.graph.edge_labels


class Sampler:
    """Sampler interface."""

    def sample(
        self,
        graph: EventGraph,
        batch: np.ndarray,
        rng: np.random.Generator,
    ) -> SampledBatch:
        """Sample a training subgraph for the given batch vertices."""
        raise NotImplementedError

    def sample_bulk(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        """Sample several batches.  Default: one `sample` call per batch
        (sequential); bulk samplers override this with a single fused
        sampling step (the paper's k-batch stacking, Eq. 1)."""
        with get_tracer().span(
            "sampler.sample_bulk",
            category="sampling",
            sampler=type(self).__name__,
            k=len(batches),
        ):
            return [self.sample(graph, b, rng) for b in batches]


def stack_components(
    parent: EventGraph, subgraphs: Sequence[InducedSubgraph]
) -> SampledBatch:
    """APPEND_COMPONENT of Algorithm 2: block-diagonal stack of per-root
    induced subgraphs into one ``A_S``.

    Vertices of component ``i`` occupy a contiguous id range after those of
    components ``0..i-1``.  A parent vertex appearing in several components
    is *replicated* — exactly the ShaDow semantics, where each root sees
    its own localised copy of the neighbourhood.
    """
    if not subgraphs:
        raise ValueError("cannot stack zero components")
    edge_chunks, x_chunks, y_chunks, label_chunks = [], [], [], []
    node_parent_chunks, edge_parent_chunks, comp_chunks = [], [], []
    offset = 0
    for ci, sub in enumerate(subgraphs):
        g = sub.graph
        edge_chunks.append(g.edge_index + offset)
        x_chunks.append(g.x)
        y_chunks.append(g.y)
        if g.edge_labels is not None:
            label_chunks.append(g.edge_labels)
        node_parent_chunks.append(sub.node_index)
        edge_parent_chunks.append(sub.edge_index_parent)
        comp_chunks.append(np.full(g.num_nodes, ci, dtype=np.int64))
        offset += g.num_nodes

    labels = np.concatenate(label_chunks) if label_chunks else None
    stacked = EventGraph(
        edge_index=np.concatenate(edge_chunks, axis=1)
        if edge_chunks
        else np.zeros((2, 0), dtype=np.int64),
        x=np.concatenate(x_chunks, axis=0),
        y=np.concatenate(y_chunks, axis=0),
        edge_labels=labels,
        event_id=parent.event_id,
    )
    return SampledBatch(
        graph=stacked,
        node_parent=np.concatenate(node_parent_chunks),
        edge_parent=np.concatenate(edge_parent_chunks),
        component_ids=np.concatenate(comp_chunks),
    )
