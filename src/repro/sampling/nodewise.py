"""Node-wise (GraphSAGE-style) neighbourhood sampler.

One of the two sampling families the matrix-based bulk framework was
originally introduced for (Hamilton et al. 2017; Tripathy et al. 2024).
Included for the sampler-taxonomy ablation bench: it samples a fanout per
vertex per GNN layer and trains on the subgraph induced by the union of
all sampled vertices.

Note: full GraphSAGE keeps one bipartite adjacency per layer; since the
Interaction GNN consumes a single adjacency, we use the induced-subgraph
formulation (as GraphSAINT-style trainers do).  The ShaDow samplers are
the ones the paper evaluates; this module is supporting material.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from .base import SampledBatch, Sampler

__all__ = ["NodeWiseSampler"]


class NodeWiseSampler(Sampler):
    """Layered neighbourhood sampling with per-layer fanouts.

    Parameters
    ----------
    fanouts:
        Neighbours sampled per vertex per layer, outermost first (e.g.
        ``[10, 5]`` for a 2-layer network).
    """

    def __init__(self, fanouts: List[int]) -> None:
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be a non-empty list of positive ints")
        self.fanouts = list(fanouts)

    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        """Induced subgraph over the sampled layered neighbourhood."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise ValueError("empty batch")
        adj = graph.to_csr(symmetric=True)
        touched = [batch]
        frontier = batch
        for fanout in self.fanouts:
            nxt: List[np.ndarray] = []
            for v in frontier:
                start, end = adj.indptr[v], adj.indptr[v + 1]
                neighbors = adj.indices[start:end]
                if neighbors.size == 0:
                    continue
                if neighbors.size <= fanout:
                    chosen = neighbors
                else:
                    chosen = rng.choice(neighbors, size=fanout, replace=False)
                nxt.append(chosen.astype(np.int64))
            if not nxt:
                break
            frontier = np.unique(np.concatenate(nxt))
            touched.append(frontier)
        nodes = np.unique(np.concatenate(touched))
        sub = induced_subgraph(graph, nodes)
        return SampledBatch(
            graph=sub.graph,
            node_parent=sub.node_index,
            edge_parent=sub.edge_index_parent,
            component_ids=None,
            roots=np.searchsorted(sub.node_index, batch),
        )
