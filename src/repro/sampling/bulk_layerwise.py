"""Matrix-based bulk *layer-wise* (LADIES) sampling.

Completes the matrix-based family (Tripathy et al. cover node-wise and
layer-wise; the paper adds ShaDow).  Layer-wise sampling is naturally a
matrix algorithm: the importance distribution of candidate vertices for
the next layer is the column-sum of the adjacency rows of the current
layer — i.e. the row of ``q A`` where ``q`` is the layer's indicator
vector.  Stacking the ``k`` batches' indicator vectors gives a ``k × n``
``Q`` whose single SpGEMM ``Q·A`` yields every batch's distribution at
once.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from .base import SampledBatch, Sampler

__all__ = ["BulkLayerWiseSampler"]


class BulkLayerWiseSampler(Sampler):
    """Bulk LADIES-style sampler.

    Parameters
    ----------
    layer_size:
        Vertices drawn per layer per batch.
    num_layers:
        Sampled layers (network depth).
    """

    def __init__(self, layer_size: int, num_layers: int) -> None:
        if layer_size < 1 or num_layers < 1:
            raise ValueError("layer_size and num_layers must be >= 1")
        self.layer_size = layer_size
        self.num_layers = num_layers

    # ------------------------------------------------------------------
    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        return self.sample_bulk(graph, [batch], rng)[0]

    def sample_bulk(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        """Sample ``k`` stacked batches with one SpGEMM per layer."""
        batches = [np.asarray(b, dtype=np.int64) for b in batches]
        if not batches or any(b.size == 0 for b in batches):
            raise ValueError("need at least one non-empty batch")
        A = graph.to_csr(symmetric=True)
        n = graph.num_nodes
        k = len(batches)

        touched = [set(b.tolist()) for b in batches]
        current = [b.copy() for b in batches]
        for _ in range(self.num_layers):
            # stacked indicator matrix: row i = current layer of batch i
            rows, cols = [], []
            for i, layer in enumerate(current):
                rows.append(np.full(layer.shape[0], i, dtype=np.int64))
                cols.append(layer)
            Q = sp.csr_matrix(
                (
                    np.ones(sum(len(c) for c in cols), dtype=np.float64),
                    (np.concatenate(rows), np.concatenate(cols)),
                ),
                shape=(k, n),
            )
            P = (Q @ A).tocsr()  # row i = importance weights of batch i
            next_layers: List[np.ndarray] = []
            for i in range(k):
                start, end = P.indptr[i], P.indptr[i + 1]
                cand = P.indices[start:end].astype(np.int64)
                weights = P.data[start:end].astype(np.float64)
                # avoid re-drawing the current layer
                mask = ~np.isin(cand, current[i])
                cand, weights = cand[mask], weights[mask]
                if cand.size == 0:
                    next_layers.append(np.zeros(0, dtype=np.int64))
                    continue
                probs = weights / weights.sum()
                take = min(self.layer_size, cand.size)
                chosen = rng.choice(cand, size=take, replace=False, p=probs)
                next_layers.append(np.asarray(chosen, dtype=np.int64))
                touched[i].update(int(v) for v in chosen)
            current = next_layers

        results: List[SampledBatch] = []
        for i, batch in enumerate(batches):
            nodes = np.fromiter(sorted(touched[i]), dtype=np.int64)
            sub = induced_subgraph(graph, nodes)
            results.append(
                SampledBatch(
                    graph=sub.graph,
                    node_parent=sub.node_index,
                    edge_parent=sub.edge_index_parent,
                    component_ids=None,
                    roots=np.searchsorted(sub.node_index, batch),
                )
            )
        return results
