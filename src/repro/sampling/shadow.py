"""ShaDow subgraph sampling — Algorithm 2 (the "PyG-style" baseline).

For each batch vertex a bounded random walk is run (depth ``d``, fanout
``s``): starting from the root, every frontier vertex samples up to ``s``
distinct neighbours, for ``d`` levels.  The subgraph induced by all
touched vertices becomes that root's component, and the per-root
components are stacked block-diagonally into ``A_S``.

This implementation deliberately mirrors the *sequential* structure of
Algorithm 2 / PyG's ``ShaDowKHopSampler`` — one Python-level loop
iteration per batch vertex — because it is the paper's baseline whose cost
the matrix-based bulk sampler (:mod:`repro.sampling.bulk`) amortises.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from ..obs import get_tracer
from .base import SampledBatch, Sampler, stack_components

__all__ = ["ShadowSampler"]


class ShadowSampler(Sampler):
    """Sequential ShaDow sampler (Algorithm 2).

    Parameters
    ----------
    depth:
        Random-walk depth ``d`` (paper: 3).
    fanout:
        Neighbours sampled per frontier vertex ``s`` (paper: 6).
    """

    def __init__(self, depth: int = 3, fanout: int = 6) -> None:
        if depth < 1 or fanout < 1:
            raise ValueError("depth and fanout must be >= 1")
        self.depth = depth
        self.fanout = fanout

    # ------------------------------------------------------------------
    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        """Sample one block-diagonal ``A_S`` for the batch vertices."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise ValueError("empty batch")
        with get_tracer().span(
            "sampler.sample",
            category="sampling",
            sampler=type(self).__name__,
            roots=int(batch.size),
            depth=self.depth,
            fanout=self.fanout,
        ) as span:
            adj = graph.to_csr(symmetric=True)
            subgraphs = [
                induced_subgraph(graph, self._walk(adj, int(root), rng))
                for root in batch
            ]
            out = stack_components(graph, subgraphs)
            span.set(nodes=out.graph.num_nodes, edges=out.graph.num_edges)
        # root of component i is the vertex whose parent id equals batch[i];
        # record its compact id for models that score roots.
        roots = np.empty(len(batch), dtype=np.int64)
        starts = np.flatnonzero(
            np.diff(np.concatenate([[-1], out.component_ids]))
        )
        for i, (root, start) in enumerate(zip(batch, starts)):
            comp_nodes = out.node_parent[out.component_ids == i]
            local = np.searchsorted(comp_nodes, root)
            roots[i] = start + local
        out.roots = roots
        return out

    # ------------------------------------------------------------------
    def _walk(
        self, adj: sp.csr_matrix, root: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Vertices touched by the bounded random walk from ``root``."""
        touched = [np.array([root], dtype=np.int64)]
        frontier = np.array([root], dtype=np.int64)
        for _ in range(self.depth):
            next_frontier: List[np.ndarray] = []
            for v in frontier:
                start, end = adj.indptr[v], adj.indptr[v + 1]
                neighbors = adj.indices[start:end]
                if neighbors.size == 0:
                    continue
                if neighbors.size <= self.fanout:
                    chosen = neighbors
                else:
                    chosen = rng.choice(neighbors, size=self.fanout, replace=False)
                next_frontier.append(chosen.astype(np.int64))
            if not next_frontier:
                break
            frontier = np.concatenate(next_frontier)
            touched.append(frontier)
        return np.unique(np.concatenate(touched))
