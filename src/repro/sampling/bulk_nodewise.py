"""Matrix-based bulk *node-wise* sampling.

Tripathy et al. introduced matrix-based bulk sampling for node-wise and
layer-wise algorithms; the paper's contribution is extending it to ShaDow
(subgraph sampling).  This module provides the node-wise original, so the
repository contains the full family the paper discusses:

* the walk is the same ``Q^{l-1} ← Q^l A`` SpGEMM + row-sampling recursion
  as Figure 2;
* unlike ShaDow, all vertices touched for one *batch* land in a single
  block (node-wise training consumes one subgraph per batch, not one
  component per root), and ``k`` batches are stacked exactly as in Eq. 1.

Output matches :class:`repro.sampling.NodeWiseSampler`'s structure (one
induced subgraph per batch) so trainers can swap samplers freely.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from ..obs import get_tracer
from .base import SampledBatch, Sampler
from .bulk import sample_rows_csr

__all__ = ["BulkNodeWiseSampler"]


class BulkNodeWiseSampler(Sampler):
    """Bulk node-wise (GraphSAGE-style) sampler.

    Parameters
    ----------
    fanouts:
        Per-layer fanouts, outermost first (as
        :class:`repro.sampling.NodeWiseSampler`).
    """

    def __init__(self, fanouts: List[int]) -> None:
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be a non-empty list of positive ints")
        self.fanouts = list(fanouts)

    # ------------------------------------------------------------------
    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        return self.sample_bulk(graph, [batch], rng)[0]

    def sample_bulk(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        """Sample ``k`` stacked batches in one fused pass."""
        with get_tracer().span(
            "sampler.sample_bulk",
            category="sampling",
            sampler=type(self).__name__,
            k=len(batches),
        ):
            return self._sample_bulk_impl(graph, batches, rng)

    def _sample_bulk_impl(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        batches = [np.asarray(b, dtype=np.int64) for b in batches]
        if not batches or any(b.size == 0 for b in batches):
            raise ValueError("need at least one non-empty batch")
        A = graph.to_csr(symmetric=True)
        n = graph.num_nodes

        # frontier rows: one per (batch, vertex); block id = batch index
        q_vertex = np.concatenate(batches)
        q_block = np.repeat(
            np.arange(len(batches), dtype=np.int64),
            [len(b) for b in batches],
        )
        touched_block = [q_block]
        touched_vertex = [q_vertex]
        for fanout in self.fanouts:
            # dedup the frontier per block: node-wise expands the *set* of
            # frontier vertices, unlike ShaDow's per-root replicated walk
            keys = np.unique(q_block * np.int64(n) + q_vertex)
            q_block = keys // n
            q_vertex = keys % n
            Q = sp.csr_matrix(
                (
                    np.ones(q_vertex.shape[0], dtype=np.float64),
                    (np.arange(q_vertex.shape[0], dtype=np.int64), q_vertex),
                ),
                shape=(q_vertex.shape[0], n),
            )
            P = Q @ A  # the Figure-2 neighbourhood SpGEMM
            s_rows, s_cols = sample_rows_csr(P, fanout, rng)
            if s_rows.size == 0:
                break
            q_block = q_block[s_rows]
            q_vertex = s_cols
            touched_block.append(q_block)
            touched_vertex.append(q_vertex)

        all_block = np.concatenate(touched_block)
        all_vertex = np.concatenate(touched_vertex)
        results: List[SampledBatch] = []
        for bi, batch in enumerate(batches):
            nodes = np.unique(all_vertex[all_block == bi])
            sub = induced_subgraph(graph, nodes)
            results.append(
                SampledBatch(
                    graph=sub.graph,
                    node_parent=sub.node_index,
                    edge_parent=sub.edge_index_parent,
                    component_ids=None,
                    roots=np.searchsorted(sub.node_index, batch),
                )
            )
        return results
