"""Minibatch iteration over event-graph collections.

Training epochs iterate the event graphs; within each graph, vertices are
shuffled and grouped into batches of ``batch_size`` (the paper: 256).
Under DDP each rank takes a contiguous ``batch_size / P`` shard of every
batch (Section IV-C).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import EventGraph, shard_batch

__all__ = ["iter_vertex_batches", "epoch_batches", "group_batches"]


def iter_vertex_batches(
    graph: EventGraph,
    batch_size: int,
    rng: np.random.Generator,
    drop_last: bool = True,
) -> Iterator[np.ndarray]:
    """Yield shuffled vertex batches of one graph.

    Parameters
    ----------
    drop_last:
        Drop the trailing partial batch (default, as uneven batches would
        unbalance DDP shards).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    perm = rng.permutation(graph.num_nodes)
    full = (len(perm) // batch_size) * batch_size
    for start in range(0, full, batch_size):
        yield perm[start : start + batch_size]
    if not drop_last and full < len(perm):
        yield perm[full:]


def epoch_batches(
    graphs: Sequence[EventGraph],
    batch_size: int,
    rng: np.random.Generator,
    drop_last: bool = True,
) -> Iterator[Tuple[EventGraph, np.ndarray]]:
    """Yield ``(graph, batch_vertices)`` pairs over a whole epoch.

    Graph order is shuffled per epoch; batches within a graph are
    contiguous so samplers can reuse the graph's cached CSR adjacency.
    """
    order = rng.permutation(len(graphs))
    for gi in order:
        graph = graphs[gi]
        for batch in iter_vertex_batches(graph, batch_size, rng, drop_last=drop_last):
            yield graph, batch


def group_batches(
    batches: Iterator[Tuple[EventGraph, np.ndarray]], k: int
) -> Iterator[Tuple[EventGraph, List[np.ndarray]]]:
    """Group consecutive same-graph batches into chunks of up to ``k``.

    This is the unit the bulk sampler fuses: ``k`` minibatches sampled in
    one stacked step (Eq. 1).  A group never spans two graphs.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    current_graph: Optional[EventGraph] = None
    group: List[np.ndarray] = []
    for graph, batch in batches:
        if current_graph is not None and (graph is not current_graph or len(group) == k):
            yield current_graph, group
            group = []
        current_graph = graph
        group.append(batch)
    if current_graph is not None and group:
        yield current_graph, group
