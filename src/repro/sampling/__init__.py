"""GNN minibatch samplers.

* :class:`ShadowSampler` — sequential ShaDow (Algorithm 2), the paper's
  "PyG implementation" baseline;
* :class:`BulkShadowSampler` — matrix-based bulk ShaDow (Figure 2,
  Eq. 1), the paper's contribution;
* :class:`NodeWiseSampler` / :class:`LayerWiseSampler` — the other two
  families of the sampling taxonomy, for ablations.
"""

from .base import SampledBatch, Sampler, stack_components
from .shadow import ShadowSampler
from .bulk import BulkShadowSampler, sample_rows_csr
from .nodewise import NodeWiseSampler
from .bulk_nodewise import BulkNodeWiseSampler
from .layerwise import LayerWiseSampler
from .bulk_layerwise import BulkLayerWiseSampler
from .saint import SaintRWSampler
from .batching import epoch_batches, group_batches, iter_vertex_batches

__all__ = [
    "SampledBatch",
    "Sampler",
    "stack_components",
    "ShadowSampler",
    "BulkShadowSampler",
    "sample_rows_csr",
    "NodeWiseSampler",
    "BulkNodeWiseSampler",
    "LayerWiseSampler",
    "BulkLayerWiseSampler",
    "SaintRWSampler",
    "iter_vertex_batches",
    "epoch_batches",
    "group_batches",
]
