"""Matrix-based bulk ShaDow sampling — Figure 2 and Eq. (1) of the paper.

The sequential sampler (:mod:`repro.sampling.shadow`) pays a Python-level
loop iteration per batch vertex per walk level.  The matrix formulation of
Tripathy et al. replaces the walk with sparse matrix algebra:

1. ``Q^d`` is a ``b × n`` selection matrix with one nonzero per row at each
   batch vertex.  ``P ← Q^d A`` (an SpGEMM) materialises every frontier
   vertex's neighbourhood in one operation; normalising each row of ``P``
   by its sum gives the uniform sampling distribution over neighbours.
2. ``s`` distinct columns are sampled per row of ``P`` (vectorised), and
   ``Q^{d-1}`` is *expanded* to one nonzero per sampled vertex.  All
   vertices touched are accumulated per batch root in a sparse ``F``.
3. After ``d`` levels, the induced subgraph per root is extracted with row
   and column selection SpGEMMs: a single ``S A Sᵀ`` over the stacked
   (root, vertex) selection, masked to the block diagonal.

Multiple minibatches are sampled in one shot by stacking their ``Q``
matrices (Eq. 1): the per-SpGEMM fixed costs are amortised over ``k``
batches, which is where the measured speedup comes from.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..obs import get_tracer
from .base import SampledBatch, Sampler

__all__ = ["BulkShadowSampler", "sample_rows_csr"]

# Above this many rows the composite float key "row + U[0,1)" keeps fewer
# than ~30 bits of within-row randomness (float64 spends its mantissa on
# the row index), biasing selection toward CSR order on ties; fall back
# to an exact two-key lexsort there.  Both paths draw the same random
# keys, so results are identical wherever the composite key is exact.
_COMPOSITE_KEY_MAX_ROWS = 1 << 22


def sample_rows_csr(
    P: sp.csr_matrix, fanout: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` distinct nonzero columns from every row of ``P``.

    Vectorised over the whole matrix: draw one random key per stored
    element, sort within rows by key, and keep each row's first ``fanout``
    entries.  Equivalent to uniform sampling without replacement from each
    row's nonzero columns (the row-normalised distribution of Figure 2).

    Returns
    -------
    (rows, cols):
        Parallel arrays of the sampled entries' row and column indices.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    nnz_per_row = np.diff(P.indptr)
    if P.nnz == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    row_of = np.repeat(np.arange(P.shape[0], dtype=np.int64), nnz_per_row)
    keys = rng.random(P.nnz)
    if P.shape[0] <= _COMPOSITE_KEY_MAX_ROWS:
        # Composite sort key "row + U[0,1)" orders by row, random inside
        # each row — one float argsort instead of a (slower) two-key
        # lexsort.
        order = np.argsort(row_of + keys, kind="stable")
    else:
        # Stacked k·b row counts can grow past the point where the
        # composite key's fraction keeps enough precision; sort the raw
        # keys row-segmented instead.
        order = np.lexsort((keys, row_of))
    # Entries are now grouped by row (group i starts at indptr[i]) with a
    # random permutation inside each group; rank within group:
    rank = np.arange(P.nnz, dtype=np.int64) - np.repeat(P.indptr[:-1], nnz_per_row)
    keep = order[rank < fanout]
    return row_of[keep], P.indices[keep].astype(np.int64)


class BulkShadowSampler(Sampler):
    """Matrix-based bulk ShaDow sampler.

    Produces the same distribution of subgraphs as
    :class:`repro.sampling.shadow.ShadowSampler` (the property tests check
    the structural invariants agree) but performs the walk and the
    extraction as bulk sparse-matrix operations over ``k`` stacked batches.

    Parameters
    ----------
    depth, fanout:
        ShaDow hyper-parameters (paper: d=3, s=6).
    """

    # Largest (stacked roots × vertices) product for which extraction uses
    # the dense compact-id table (int64 → ≤ ~1.6 GB at the cap; typical
    # workloads are far below it).
    DENSE_LOOKUP_MAX = 200_000_000

    def __init__(self, depth: int = 3, fanout: int = 6) -> None:
        if depth < 1 or fanout < 1:
            raise ValueError("depth and fanout must be >= 1")
        self.depth = depth
        self.fanout = fanout

    # ------------------------------------------------------------------
    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        """Single-batch convenience wrapper over :meth:`sample_bulk`."""
        return self.sample_bulk(graph, [batch], rng)[0]

    # ------------------------------------------------------------------
    def sample_bulk(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        """Sample ``k`` stacked minibatches in one bulk pass (Eq. 1)."""
        with get_tracer().span(
            "sampler.sample_bulk",
            category="sampling",
            sampler=type(self).__name__,
            k=len(batches),
            depth=self.depth,
            fanout=self.fanout,
        ) as span:
            results = self._sample_bulk_impl(graph, batches, rng)
            span.set(
                nodes=sum(r.graph.num_nodes for r in results),
                edges=sum(r.graph.num_edges for r in results),
            )
        return results

    def _sample_bulk_impl(
        self,
        graph: EventGraph,
        batches: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> List[SampledBatch]:
        batches = [np.asarray(b, dtype=np.int64) for b in batches]
        if not batches or any(b.size == 0 for b in batches):
            raise ValueError("need at least one non-empty batch")
        A = graph.to_csr(symmetric=True)
        n = graph.num_nodes

        roots = np.concatenate(batches)            # stacked batch vertices
        b_tot = roots.shape[0]
        root_ids = np.arange(b_tot, dtype=np.int64)

        # F accumulation: (root, vertex) pairs touched during the walk.
        f_roots = [root_ids]
        f_verts = [roots]

        # Q^d: one nonzero per row at each stacked batch vertex.
        q_vertex = roots.copy()    # column index of each Q row's nonzero
        q_root = root_ids.copy()   # which root each Q row walks for
        for _ in range(self.depth):
            Q = sp.csr_matrix(
                (
                    np.ones(q_vertex.shape[0], dtype=np.float64),
                    (np.arange(q_vertex.shape[0], dtype=np.int64), q_vertex),
                ),
                shape=(q_vertex.shape[0], n),
            )
            P = Q @ A  # the neighbourhood SpGEMM of Figure 2
            s_rows, s_cols = sample_rows_csr(P, self.fanout, rng)
            if s_rows.size == 0:
                break
            f_roots.append(q_root[s_rows])
            f_verts.append(s_cols)
            # expand Q^{l-1}: one nonzero per sampled vertex
            q_root = q_root[s_rows]
            q_vertex = s_cols

        # Deduplicate F per root and sort by (root, vertex): vertex order
        # within each block then matches the sequential sampler's
        # (np.unique-sorted) convention.  Pairs are packed into scalar keys
        # (root * n + vertex) so the dedup is a single flat unique.
        pair_keys = np.concatenate(f_roots) * np.int64(n) + np.concatenate(f_verts)
        uniq_keys = np.unique(pair_keys)
        sel_root = uniq_keys // n
        sel_vertex = uniq_keys % n

        # Extraction: for every root block, the induced subgraph over that
        # block's selected vertices.  Three strategies, chosen by estimated
        # work (all produce identical edge sets — the property tests check
        # this):
        #
        # * block-mask  — batched edge-membership kernel
        #   member[:, A.rows] & member[:, A.cols]; scans the parent edge
        #   list once per root, O(roots · edges).  Wins when selections are
        #   a large fraction of the graph.
        # * spgemm+table — row-selection SpGEMM R ← S·A then O(1) dense
        #   table lookups for the in-block column selection,
        #   O(Σ deg(selected)).  Wins when selections are small relative to
        #   the graph (dense graphs, shallow walks).
        # * spgemm+search — as above with binary search instead of the
        #   dense table; used when the (roots × n) table would not fit.
        K = sel_vertex.shape[0]
        m = graph.num_edges
        degrees = np.diff(A.indptr)
        est_spgemm = int(degrees[sel_vertex].sum())
        est_mask = b_tot * m
        use_table = b_tot * n <= self.DENSE_LOOKUP_MAX

        if use_table:
            table = np.full(b_tot * n, -1, dtype=np.int64)
            table[uniq_keys] = np.arange(K, dtype=np.int64)

        if use_table and est_mask <= 2 * est_spgemm:
            # --- block-mask path
            member2d = (table >= 0).reshape(b_tot, n)
            rows_arr = graph.rows.astype(np.int64)
            cols_arr = graph.cols.astype(np.int64)
            hit_roots, hit_edges = [], []
            # chunk roots so the (chunk × m) mask stays ~64 MB
            chunk = max(1, int(64_000_000 // max(m, 1)))
            for lo in range(0, b_tot, chunk):
                hi = min(lo + chunk, b_tot)
                mask2d = member2d[lo:hi, rows_arr] & member2d[lo:hi, cols_arr]
                rr, ee = np.nonzero(mask2d)
                hit_roots.append(rr.astype(np.int64) + lo)
                hit_edges.append(ee.astype(np.int64))
            hit_root = np.concatenate(hit_roots) if hit_roots else np.zeros(0, np.int64)
            hit_edge = np.concatenate(hit_edges) if hit_edges else np.zeros(0, np.int64)
            edge_parent_all = hit_edge
            sub_rows_all = table[hit_root * np.int64(n) + rows_arr[hit_edge]]
            sub_cols_all = table[hit_root * np.int64(n) + cols_arr[hit_edge]]
        else:
            # --- SpGEMM paths
            S = sp.csr_matrix(
                (
                    np.ones(K, dtype=np.float64),
                    (np.arange(K, dtype=np.int64), sel_vertex),
                ),
                shape=(K, n),
            )
            R = (S @ A).tocsr()  # row i = neighbourhood of sel_vertex[i]
            nnz_per_row = np.diff(R.indptr)
            r_row = np.repeat(np.arange(K, dtype=np.int64), nnz_per_row)
            r_col_vertex = R.indices.astype(np.int64)
            cand_keys = sel_root[r_row] * np.int64(n) + r_col_vertex
            if use_table:
                cand = table[cand_keys]
                in_block = cand >= 0
                br = r_row[in_block]
                bc = cand[in_block]
            else:
                pos = np.minimum(np.searchsorted(uniq_keys, cand_keys), K - 1)
                in_block = uniq_keys[pos] == cand_keys
                br = r_row[in_block]
                bc = pos[in_block]
            # Keep only entries matching *directed* parent edges u→v (the
            # symmetric mirror (v, u) is dropped) and recover edge ids.
            # A (u, v) key can match several parent edges (duplicate edges
            # in the event graph); every instance is emitted, matching the
            # sequential sampler and the block-mask path.
            parent_keys = graph.rows.astype(np.int64) * n + graph.cols.astype(np.int64)
            key_order = np.argsort(parent_keys, kind="stable")
            sorted_keys = parent_keys[key_order]
            edge_keys = sel_vertex[br] * np.int64(n) + sel_vertex[bc]
            lo_pos = np.searchsorted(sorted_keys, edge_keys, side="left")
            hi_pos = np.searchsorted(sorted_keys, edge_keys, side="right")
            counts = hi_pos - lo_pos  # 0 where (u, v) is not a parent edge
            rep = np.repeat(np.arange(edge_keys.shape[0], dtype=np.int64), counts)
            within = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            edge_parent_all = key_order[lo_pos[rep] + within]
            sub_rows_all, sub_cols_all = br[rep], bc[rep]

        # Global compact id of every root: its position among the sorted
        # (root, vertex) selection keys (each root is guaranteed present in
        # its own block — level 0 of F).
        root_global = np.searchsorted(uniq_keys, root_ids * np.int64(n) + roots)

        # Split back into per-batch results along stacked-root boundaries.
        batch_sizes = np.array([len(b) for b in batches], dtype=np.int64)
        batch_lo = np.concatenate([[0], np.cumsum(batch_sizes)])
        node_splits = np.searchsorted(sel_root, batch_lo)
        edge_batch = np.searchsorted(batch_lo, sel_root[sub_rows_all], side="right") - 1
        edge_order = np.argsort(edge_batch, kind="stable")
        edge_splits = np.searchsorted(edge_batch[edge_order], np.arange(len(batches) + 1))

        results: List[SampledBatch] = []
        for bi, batch in enumerate(batches):
            n_lo, n_hi = node_splits[bi], node_splits[bi + 1]
            e_sel = edge_order[edge_splits[bi] : edge_splits[bi + 1]]
            e_rows = sub_rows_all[e_sel] - n_lo
            e_cols = sub_cols_all[e_sel] - n_lo
            e_parent = edge_parent_all[e_sel]
            nodes_parent = sel_vertex[n_lo:n_hi]
            comp = sel_root[n_lo:n_hi] - batch_lo[bi]

            sub = EventGraph(
                edge_index=np.stack([e_rows, e_cols]),
                x=graph.x[nodes_parent],
                y=graph.y[e_parent],
                edge_labels=None
                if graph.edge_labels is None
                else graph.edge_labels[e_parent],
                event_id=graph.event_id,
            )
            results.append(
                SampledBatch(
                    graph=sub,
                    node_parent=nodes_parent,
                    edge_parent=e_parent,
                    component_ids=comp,
                    roots=root_global[batch_lo[bi] : batch_lo[bi + 1]] - n_lo,
                )
            )
        return results
