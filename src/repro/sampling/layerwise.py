"""Layer-wise (LADIES-style) importance sampler.

The second sampling family of the taxonomy (Zou et al. 2019).  Instead of
sampling neighbours per vertex (node-wise) or a subgraph per root
(ShaDow), layer-wise sampling draws a fixed-size vertex *set* per layer
with probability proportional to each candidate's connectivity to the
previous layer, bounding the layer width and hence memory.

As with :mod:`repro.sampling.nodewise`, the sampled union feeds the IGNN
as one induced subgraph; supporting material for the ablation bench.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..graph import EventGraph
from ..graph.subgraph import induced_subgraph
from .base import SampledBatch, Sampler

__all__ = ["LayerWiseSampler"]


class LayerWiseSampler(Sampler):
    """LADIES-style layer-dependent importance sampling.

    Parameters
    ----------
    layer_size:
        Number of vertices drawn per layer.
    num_layers:
        Number of sampled layers (network depth).
    """

    def __init__(self, layer_size: int, num_layers: int) -> None:
        if layer_size < 1 or num_layers < 1:
            raise ValueError("layer_size and num_layers must be >= 1")
        self.layer_size = layer_size
        self.num_layers = num_layers

    def sample(
        self, graph: EventGraph, batch: np.ndarray, rng: np.random.Generator
    ) -> SampledBatch:
        """Induced subgraph over the union of sampled layers."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise ValueError("empty batch")
        adj = graph.to_csr(symmetric=True)
        n = graph.num_nodes
        touched = [batch]
        current = batch
        for _ in range(self.num_layers):
            # importance ∝ connectivity to the current layer: column sums of
            # the rows of A restricted to `current`
            weights = np.asarray(adj[current].sum(axis=0)).reshape(-1)
            weights[current] = 0.0  # avoid re-drawing the current layer
            total = weights.sum()
            if total <= 0:
                break
            p = weights / total
            k = min(self.layer_size, int(np.count_nonzero(weights)))
            chosen = rng.choice(n, size=k, replace=False, p=p)
            touched.append(chosen.astype(np.int64))
            current = chosen.astype(np.int64)
        nodes = np.unique(np.concatenate(touched))
        sub = induced_subgraph(graph, nodes)
        return SampledBatch(
            graph=sub.graph,
            node_parent=sub.node_index,
            edge_parent=sub.edge_index_parent,
            component_ids=None,
            roots=np.searchsorted(sub.node_index, batch),
        )
