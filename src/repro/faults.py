"""Deterministic fault injection and recovery policies.

Production training runs fail: a NIC drops a collective, a node dies, a
checkpoint write is cut short.  This module makes those failures *first
class and reproducible* so the recovery paths in
:mod:`repro.distributed` and :mod:`repro.pipeline.trainers` can be
exercised in tests rather than discovered in outages — the same spirit
as the NaN-guard tests, extended to the communication and I/O layers.

Everything here is deterministic: faults fire at a chosen collective
call index (and rank), retry backoff runs on a simulated clock
(:class:`SimClock`) so no test ever sleeps wall-time, and the file
corrupters flip exactly the requested bit.

Components
----------
* :class:`CommError` — the typed failure raised by injected collective
  faults; carries the failing rank and whether the fault is transient.
* :class:`CommFault` / :class:`IOFault` / :class:`FaultPlan` — a
  deterministic schedule of failures, consulted by
  :class:`repro.distributed.SimCommunicator` (collectives) and the
  trainer checkpoint writer (I/O).
* :class:`NumericFault` — inject NaN into a planned training step's loss
  or gradients, so the stability watchdog's rollback path
  (:mod:`repro.guard.watchdog`) is reproducibly testable.
* :class:`StageFault` / :class:`StageError` — fail a planned invocation
  of a named serving stage, exercising the circuit breaker
  (:mod:`repro.guard.breaker`).
* :class:`DiskFault` — physically corrupt an event-store shard (bit
  flip or truncation) just before its ``at_map``-th mmap, so the
  store's integrity checks (:class:`repro.store.StoreCorruptError`)
  are exercised against real on-disk damage.
* :class:`SimClock`, :class:`RetryPolicy`, :func:`call_with_retries` —
  retry-with-exponential-backoff for *transient* faults; exhaustion
  re-raises the original error.
* :func:`truncate_file`, :func:`flip_bit` — checkpoint corrupters for
  durability tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TypeVar

__all__ = [
    "CommError",
    "CommTimeoutError",
    "RankDeadError",
    "StageError",
    "CommFault",
    "IOFault",
    "NumericFault",
    "StageFault",
    "ProcessFault",
    "DiskFault",
    "FaultPlan",
    "SimClock",
    "RetryPolicy",
    "call_with_retries",
    "truncate_file",
    "flip_bit",
]

T = TypeVar("T")


class CommError(RuntimeError):
    """A collective failed.

    Parameters
    ----------
    rank:
        The global rank that failed (or ``None`` when unattributed).
    transient:
        ``True`` for faults a retry can clear (dropped packet, timeout);
        ``False`` for a permanently lost rank, which demands elastic
        recovery instead of a retry.
    """

    def __init__(self, message: str, rank: Optional[int] = None, transient: bool = True):
        super().__init__(message)
        self.rank = rank
        self.transient = transient


class CommTimeoutError(CommError):
    """A collective did not complete within its deadline.

    Raised by real communication backends (``ProcCommunicator``) when a
    collective times out while every participating worker still looks
    alive — the straggler may recover, so the error is *transient* and
    maps onto the existing retry path of
    :meth:`repro.distributed.DistributedDataParallel.synchronize_gradients`.
    """

    def __init__(self, message: str, rank: Optional[int] = None):
        super().__init__(message, rank=rank, transient=True)


class RankDeadError(CommError):
    """A rank's worker process is gone (crashed, killed, or heartbeat-dead).

    *Permanent* by construction: the failure detector only raises this
    once the process has exited or its heartbeat has been silent past the
    deadline, so the DDP layer responds with elastic eviction rather than
    a retry.
    """

    def __init__(self, message: str, rank: Optional[int] = None):
        super().__init__(message, rank=rank, transient=False)


@dataclass
class CommFault:
    """One scheduled collective failure.

    ``at_call`` counts *attempts* of the collective (0-based, including
    attempts that themselves failed), so a transient fault with
    ``times=2`` fails attempts ``at_call`` and ``at_call + 1`` and lets
    the third retry through.
    """

    at_call: int
    rank: int = 0
    transient: bool = True
    times: int = 1
    _fired: int = field(default=0, repr=False)

    def should_fire(self, call_index: int) -> bool:
        if self.transient:
            return self.at_call <= call_index < self.at_call + self.times
        # a permanent fault keeps firing for its rank until the rank is
        # removed from the communicator (elastic recovery)
        return call_index >= self.at_call


@dataclass
class IOFault:
    """Fail the ``at_write``-th checkpoint write with an ``OSError``."""

    at_write: int
    times: int = 1
    message: str = "injected transient I/O error"

    def should_fire(self, write_index: int) -> bool:
        return self.at_write <= write_index < self.at_write + self.times


@dataclass
class NumericFault:
    """Corrupt the ``at_step``-th training step with NaN.

    ``at_step`` counts *forward/backward executions* (0-based, one per
    :func:`repro.pipeline.trainers._step` call — with ``world_size`` P
    every optimisation step consumes P indices, one per rank).  The
    counter keeps advancing across watchdog rollbacks, so a step
    re-executed after a rollback consumes a *new* index and the fault
    does not re-fire — which is what makes recovery deterministic
    instead of an infinite divergence loop.

    ``target`` selects what is corrupted: ``"loss"`` overwrites the loss
    value with NaN before the finiteness check (the step fails before
    ``backward``); ``"grad"`` lets the step run and overwrites the first
    parameter gradient with NaN afterwards (caught by the watchdog's
    grad-norm probe, or poisoning the weights when no watchdog runs).
    """

    at_step: int
    target: str = "loss"
    times: int = 1

    def __post_init__(self) -> None:
        if self.target not in ("loss", "grad"):
            raise ValueError(f"unknown NumericFault target {self.target!r}")
        if self.at_step < 0 or self.times < 1:
            raise ValueError("at_step must be >= 0 and times >= 1")

    def should_fire(self, step_index: int) -> bool:
        return self.at_step <= step_index < self.at_step + self.times


_PROCESS_FAULT_KINDS = ("sigkill", "hang", "slow")


@dataclass
class ProcessFault:
    """Physically disturb a rank's *worker process* at a chosen collective.

    The chaos-harness counterpart of :class:`CommFault`: instead of
    raising an exception in the driver, the fault is *executed* against a
    live worker by the ``proc`` backend
    (:class:`repro.distributed.ProcCommunicator`) at the top of collective
    attempt ``at_call`` — the same 0-based attempt counter
    :meth:`FaultPlan.before_collective` advances, so a SIGKILL at
    ``at_call=N`` on the ``proc`` backend is the replayable twin of a
    permanent ``CommFault(at_call=N)`` on :class:`SimCommunicator`.

    Kinds
    -----
    ``"sigkill"``
        SIGKILL the worker — an OOM-killed / crashed node.  Detected by
        the supervisor via the process sentinel and surfaced as
        :class:`RankDeadError` (permanent → elastic eviction).
    ``"hang"``
        SIGSTOP the worker — a wedged process.  Its heartbeat goes silent,
        the deadline detector fires, and the rank is evicted exactly like
        a crash (the supervisor SIGKILLs the stopped process on eviction).
    ``"slow"``
        Inject ``duration`` seconds of pre-collective delay into the
        worker (a straggler).  The collective completes late; if it blows
        the collective timeout the driver sees a *transient*
        :class:`CommTimeoutError` and retries.
    """

    at_call: int
    rank: int = 0
    kind: str = "sigkill"
    duration: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _PROCESS_FAULT_KINDS:
            raise ValueError(
                f"unknown ProcessFault kind {self.kind!r}; "
                f"choose from {_PROCESS_FAULT_KINDS}"
            )
        if self.at_call < 0 or self.times < 1:
            raise ValueError("at_call must be >= 0 and times >= 1")
        if self.kind == "slow" and self.duration <= 0:
            raise ValueError("slow faults need a positive duration")

    def should_fire(self, call_index: int) -> bool:
        if self.kind == "slow":
            return self.at_call <= call_index < self.at_call + self.times
        # sigkill / hang are one-shot: the process does not come back
        return call_index == self.at_call


class StageError(RuntimeError):
    """An injected serving-stage failure (see :class:`StageFault`)."""

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message)
        self.stage = stage


@dataclass
class StageFault:
    """Fail the ``at_call``-th invocation of serving stage ``stage``.

    ``at_call`` counts *attempted* invocations of that stage (0-based).
    While the circuit breaker is open the stage is not attempted at all,
    so the counter does not advance — a schedule of ``times`` failures
    therefore outlasts the open period and can also fail the first
    half-open probe, which is exactly the recovery path worth testing.
    """

    stage: str
    at_call: int
    times: int = 1
    message: str = "injected stage failure"

    def should_fire(self, call_index: int) -> bool:
        return self.at_call <= call_index < self.at_call + self.times


_DISK_FAULT_MODES = ("flip", "truncate")


@dataclass
class DiskFault:
    """Physically corrupt an event-store shard before its ``at_map``-th mmap.

    ``at_map`` counts shard *map attempts* across the whole store
    (0-based, one per :meth:`repro.store.EventStore` shard mapping,
    including re-maps after an LRU eviction).  When the fault fires the
    shard file on disk is genuinely damaged — via :func:`flip_bit`
    (``mode="flip"``: silent media corruption, caught by checksum or
    bounds audits) or :func:`truncate_file` (``mode="truncate"``: a torn
    write / lost tail, caught at map time or when an array spec runs past
    the mapped bytes) — so the typed :class:`repro.store.StoreCorruptError`
    path is exercised against real bytes, not a mock.
    """

    at_map: int
    mode: str = "flip"
    byte_offset: int = 0
    bit: int = 0
    keep_bytes: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.mode not in _DISK_FAULT_MODES:
            raise ValueError(
                f"unknown DiskFault mode {self.mode!r}; choose from {_DISK_FAULT_MODES}"
            )
        if self.at_map < 0 or self.times < 1:
            raise ValueError("at_map must be >= 0 and times >= 1")
        if self.byte_offset < 0 or self.keep_bytes < 0:
            raise ValueError("byte_offset and keep_bytes must be >= 0")
        if not 0 <= self.bit < 8:
            raise ValueError("bit must be in [0, 8)")

    def should_fire(self, map_index: int) -> bool:
        return self.at_map <= map_index < self.at_map + self.times

    def corrupt(self, path: str) -> None:
        """Damage ``path`` in place according to ``mode``."""
        if self.mode == "truncate":
            truncate_file(path, self.keep_bytes)
        else:
            flip_bit(path, self.byte_offset, self.bit)


@dataclass
class FaultPlan:
    """A deterministic failure schedule shared by comm and I/O layers.

    The plan keeps its own attempt counters, so the same plan object
    must not be reused across training runs.
    """

    comm_faults: List[CommFault] = field(default_factory=list)
    io_faults: List[IOFault] = field(default_factory=list)
    numeric_faults: List[NumericFault] = field(default_factory=list)
    stage_faults: List[StageFault] = field(default_factory=list)
    process_faults: List[ProcessFault] = field(default_factory=list)
    disk_faults: List[DiskFault] = field(default_factory=list)
    _comm_calls: int = field(default=0, repr=False)
    _io_writes: int = field(default=0, repr=False)
    _numeric_steps: int = field(default=0, repr=False)
    _stage_calls: Dict[str, int] = field(default_factory=dict, repr=False)
    _disk_maps: int = field(default=0, repr=False)

    # -- collectives ---------------------------------------------------
    def before_collective(
        self,
        active_ranks: List[int],
        process_fault_executor: Optional[Callable[[ProcessFault], None]] = None,
    ) -> None:
        """Raise :class:`CommError` if a fault is scheduled for this attempt.

        Called by the communicator at the top of every collective; the
        attempt counter advances whether or not a fault fires.  Permanent
        faults for ranks that have already been evicted are ignored.

        ``process_fault_executor`` is supplied by backends that own real
        worker processes (the ``proc`` backend): any scheduled
        :class:`ProcessFault` for a live rank is handed to it for physical
        execution (SIGKILL / SIGSTOP / delay injection) *before* the
        exception-style ``comm_faults`` are considered.  Backends without
        one must reject plans carrying process faults at construction.
        """
        index = self._comm_calls
        self._comm_calls += 1
        if process_fault_executor is not None:
            for pfault in self.process_faults:
                if pfault.should_fire(index) and pfault.rank in active_ranks:
                    process_fault_executor(pfault)
        for fault in self.comm_faults:
            if not fault.should_fire(index):
                continue
            if not fault.transient and fault.rank not in active_ranks:
                continue  # already evicted
            kind = "transient" if fault.transient else "permanent"
            raise CommError(
                f"injected {kind} collective failure on rank {fault.rank} "
                f"(attempt {index})",
                rank=fault.rank,
                transient=fault.transient,
            )

    # -- checkpoint I/O ------------------------------------------------
    def before_checkpoint_write(self, path: str) -> None:
        """Raise ``OSError`` if this checkpoint write is scheduled to fail."""
        index = self._io_writes
        self._io_writes += 1
        for fault in self.io_faults:
            if fault.should_fire(index):
                raise OSError(f"{fault.message} (write {index} of {path!r})")

    # -- numeric training faults ---------------------------------------
    def numeric_fault_target(self) -> Optional[str]:
        """Advance the step counter; return ``"loss"``/``"grad"`` or None.

        Called by the trainer once per forward/backward execution; the
        first scheduled :class:`NumericFault` covering this index wins.
        """
        index = self._numeric_steps
        self._numeric_steps += 1
        for fault in self.numeric_faults:
            if fault.should_fire(index):
                return fault.target
        return None

    # -- serving-stage faults ------------------------------------------
    def before_stage(self, stage: str) -> None:
        """Raise :class:`StageError` if this stage invocation should fail.

        The per-stage attempt counter advances whether or not a fault
        fires; invocations skipped by an open circuit breaker never
        reach this call and therefore do not advance it.
        """
        index = self._stage_calls.get(stage, 0)
        self._stage_calls[stage] = index + 1
        for fault in self.stage_faults:
            if fault.stage == stage and fault.should_fire(index):
                raise StageError(
                    f"{fault.message} (stage {stage!r}, attempt {index})",
                    stage=stage,
                )


    # -- event-store shard maps ----------------------------------------
    def before_shard_map(self, path: str) -> None:
        """Corrupt the shard at ``path`` if a disk fault covers this map.

        Called by :class:`repro.store.EventStore` immediately before a
        shard file is memory-mapped; the map counter advances whether or
        not a fault fires.  Unlike the exception-style faults above, a
        disk fault damages the file *on disk* and returns — the store's
        own integrity machinery is expected to detect the corruption and
        raise :class:`repro.store.StoreCorruptError`.
        """
        index = self._disk_maps
        self._disk_maps += 1
        for fault in self.disk_faults:
            if fault.should_fire(index):
                fault.corrupt(path)


class SimClock:
    """Deterministic clock: ``sleep`` advances time without waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient faults.

    ``max_retries`` counts *retries*, so an operation is attempted at
    most ``max_retries + 1`` times; retry ``i`` (0-based) waits
    ``base_delay * multiplier**i`` simulated seconds, capped at
    ``max_delay`` when set.  Without the cap the exponential is unbounded
    — a long transient outage with a generous retry budget would back off
    for hours; production retry loops always clamp.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.multiplier <= 0:
            raise ValueError("base_delay must be >= 0 and multiplier > 0")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")

    def delay(self, retry_index: int) -> float:
        delay = self.base_delay * self.multiplier**retry_index
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    clock: SimClock,
    retry_on: tuple = (CommError, OSError),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Run ``fn``, retrying transient failures with backoff.

    A :class:`CommError` with ``transient=False`` is never retried (it
    needs elastic recovery, not patience).  When the retry budget is
    exhausted the *original* error propagates unchanged, so callers and
    tests see the root cause rather than a retry wrapper's summary.
    """
    for attempt in range(policy.max_retries + 1):
        try:
            return fn()
        except retry_on as exc:
            if isinstance(exc, CommError) and not exc.transient:
                raise
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            clock.sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# file corrupters (durability-test utilities)
# ----------------------------------------------------------------------
def truncate_file(path: str, keep_bytes: int) -> None:
    """Cut ``path`` down to its first ``keep_bytes`` bytes (torn write)."""
    size = os.path.getsize(path)
    if keep_bytes >= size:
        raise ValueError(f"keep_bytes={keep_bytes} >= file size {size}")
    with open(path, "r+b") as fh:
        fh.truncate(keep_bytes)


def flip_bit(path: str, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit of ``path`` in place (silent media corruption)."""
    if not 0 <= bit < 8:
        raise ValueError("bit must be in [0, 8)")
    with open(path, "r+b") as fh:
        fh.seek(byte_offset)
        original = fh.read(1)
        if not original:
            raise ValueError(f"byte_offset {byte_offset} beyond end of {path!r}")
        fh.seek(byte_offset)
        fh.write(bytes([original[0] ^ (1 << bit)]))
