"""Open-loop load generator for the serving engine.

Drives a synchronous :class:`~repro.serve.InferenceEngine` with a fixed
arrival schedule (uniform or Poisson) on a simulated clock, so overload
behaviour — micro-batch formation, queue growth, shedding, degraded
serving — is observable and, with a fixed modelled service time, exactly
reproducible.

The generator is *open loop*: arrival times are drawn up front from the
offered rate and do not react to completions (a closed-loop client would
self-throttle and hide overload, which is precisely what we want to
measure).  The simulation is single-threaded discrete-event: the engine
advances the shared clock by each batch's service time (measured wall
time, or the configured constant), and arrivals that fall inside a busy
period are submitted as a burst once the server frees up — which is how
queues actually overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..detector import Event
from .engine import InferenceEngine, ServeRequest

__all__ = ["LoadGenConfig", "LoadGenReport", "arrival_times", "run_loadgen"]


@dataclass(frozen=True)
class LoadGenConfig:
    """Open-loop schedule: ``num_requests`` arrivals at ``rate`` req/s.

    ``arrival`` selects deterministic uniform spacing (``"uniform"``) or
    exponential inter-arrival gaps (``"poisson"``, seeded) — the latter
    produces the bursts that stress admission control at rates a uniform
    schedule would survive.
    """

    rate: float = 50.0
    num_requests: int = 64
    arrival: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.arrival not in ("uniform", "poisson"):
            raise ValueError("arrival must be 'uniform' or 'poisson'")


def arrival_times(config: LoadGenConfig) -> np.ndarray:
    """Absolute arrival times (seconds from 0) for the schedule."""
    if config.arrival == "uniform":
        return np.arange(config.num_requests, dtype=np.float64) / config.rate
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(scale=1.0 / config.rate, size=config.num_requests)
    times = np.cumsum(gaps)
    return times - times[0]


@dataclass
class LoadGenReport:
    """What one load-generation run offered and what came back."""

    offered: int
    completed: int
    shed: int
    degraded: int
    cache_hits: int
    batches: int
    duration_s: float
    offered_rate: float
    achieved_rate: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    queue_wait_p50_ms: float
    mean_batch_size: float

    def lines(self) -> List[str]:
        """Human-readable summary, one finding per line."""
        return [
            f"offered      {self.offered} requests @ {self.offered_rate:.1f}/s",
            f"completed    {self.completed}  (achieved {self.achieved_rate:.1f}/s)",
            f"shed         {self.shed}",
            f"degraded     {self.degraded}",
            f"cache hits   {self.cache_hits}",
            f"batches      {self.batches}  (mean size {self.mean_batch_size:.2f})",
            f"latency ms   p50={self.latency_p50_ms:.2f}  "
            f"p95={self.latency_p95_ms:.2f}  p99={self.latency_p99_ms:.2f}",
            f"queue wait   p50={self.queue_wait_p50_ms:.2f} ms",
        ]


def run_loadgen(
    engine: InferenceEngine,
    events: Sequence[Event],
    config: LoadGenConfig,
) -> LoadGenReport:
    """Offer the schedule to a synchronous engine; return the report.

    ``events`` are cycled round-robin across arrivals (replays exercise
    the stage cache).  The engine must be synchronous (``workers == 0``)
    and should run on a :class:`repro.faults.SimClock` so service time
    advances the same clock arrivals are scheduled on.
    """
    if engine.config.workers != 0:
        raise ValueError("run_loadgen drives a synchronous engine (workers=0)")
    if not events:
        raise ValueError("no events to serve")
    clock = engine.clock
    times = arrival_times(config)
    start = clock.now
    requests: List[ServeRequest] = []
    batches_before = engine.stats.batches
    for i, offset in enumerate(times):
        t_arrive = start + float(offset)
        # dispatch every batch that comes due before this arrival; each
        # pump advances the clock by its service time, so a slow server
        # naturally pushes later arrivals into a burst-submit
        while True:
            due = engine.next_due_time()
            if due is None or max(due, clock.now) >= t_arrive:
                break
            if clock.now < due:
                clock.now = due
            engine.pump()
        if clock.now < t_arrive:
            clock.now = t_arrive
        requests.append(engine.submit(events[i % len(events)]))
    # drain: everything still queued dispatches as its deadline expires
    while True:
        due = engine.next_due_time()
        if due is None:
            break
        if clock.now < due:
            clock.now = due
        if engine.pump() == 0:  # defensive: never spin
            engine.flush()
            break
    done = [r for r in requests if r.status == "done"]
    shed = sum(1 for r in requests if r.status == "shed")
    degraded = sum(1 for r in done if r.degraded)
    cache_hits = sum(1 for r in done if r.cache_hit)
    batches = engine.stats.batches - batches_before
    duration = max(clock.now - start, 1e-12)
    latencies = np.array([r.latency_ms for r in done]) if done else np.zeros(1)
    waits = np.array([r.queue_wait_ms for r in done]) if done else np.zeros(1)
    return LoadGenReport(
        offered=len(requests),
        completed=len(done),
        shed=shed,
        degraded=degraded,
        cache_hits=cache_hits,
        batches=batches,
        duration_s=float(duration),
        offered_rate=config.rate,
        achieved_rate=len(done) / duration,
        latency_p50_ms=float(np.percentile(latencies, 50)),
        latency_p95_ms=float(np.percentile(latencies, 95)),
        latency_p99_ms=float(np.percentile(latencies, 99)),
        queue_wait_p50_ms=float(np.percentile(waits, 50)),
        mean_batch_size=len(done) / batches if batches else 0.0,
    )
