"""Inference serving engine: micro-batching, stage caching, load-shedding.

``repro.serve`` turns a fitted :class:`~repro.pipeline.ExaTrkXPipeline`
into a request-serving system: a bounded :class:`RequestQueue` feeding a
dynamic micro-batcher (fused embedding/filter forwards over concatenated
per-batch arrays), a keyed :class:`StageCache` so replayed events skip
the upstream stages, and admission control with load-shedding plus a
degraded GNN-skip mode under latency pressure.  Batched results are
bit-identical to looped :meth:`~repro.pipeline.ExaTrkXPipeline.reconstruct`
(see :mod:`repro.serve.engine` for the determinism contract), and
:mod:`repro.serve.loadgen` provides an open-loop generator for overload
experiments.

Guardrails (``docs/resilience.md``): input quarantine at submit, a
circuit breaker around the GNN stage routing to the degraded GNN-skip
path while open, per-request timeouts, and graceful drain on close —
every request reaches exactly one terminal state.
"""

from .cache import CachedStages, StageCache, event_fingerprint
from .engine import (
    InferenceEngine,
    RequestFailedError,
    RequestQuarantinedError,
    RequestQueue,
    RequestShedError,
    RequestTimeoutError,
    ServeConfig,
    ServeRequest,
    ServeStats,
)
from .loadgen import LoadGenConfig, LoadGenReport, arrival_times, run_loadgen

__all__ = [
    "CachedStages",
    "StageCache",
    "event_fingerprint",
    "InferenceEngine",
    "RequestQueue",
    "ServeConfig",
    "ServeRequest",
    "ServeStats",
    "RequestShedError",
    "RequestQuarantinedError",
    "RequestTimeoutError",
    "RequestFailedError",
    "LoadGenConfig",
    "LoadGenReport",
    "arrival_times",
    "run_loadgen",
]
