"""Inference serving engine: micro-batching, stage caching, load-shedding.

``repro.serve`` turns a fitted :class:`~repro.pipeline.ExaTrkXPipeline`
into a request-serving system: a bounded :class:`RequestQueue` feeding a
dynamic micro-batcher (fused embedding/filter forwards over concatenated
per-batch arrays), a keyed :class:`StageCache` so replayed events skip
the upstream stages, and admission control with load-shedding plus a
degraded GNN-skip mode under latency pressure.  Batched results are
bit-identical to looped :meth:`~repro.pipeline.ExaTrkXPipeline.reconstruct`
(see :mod:`repro.serve.engine` for the determinism contract), and
:mod:`repro.serve.loadgen` provides an open-loop generator for overload
experiments.
"""

from .cache import CachedStages, StageCache, event_fingerprint
from .engine import (
    InferenceEngine,
    RequestQueue,
    ServeConfig,
    ServeRequest,
    ServeStats,
)
from .loadgen import LoadGenConfig, LoadGenReport, arrival_times, run_loadgen

__all__ = [
    "CachedStages",
    "StageCache",
    "event_fingerprint",
    "InferenceEngine",
    "RequestQueue",
    "ServeConfig",
    "ServeRequest",
    "ServeStats",
    "LoadGenConfig",
    "LoadGenReport",
    "arrival_times",
    "run_loadgen",
]
