"""The inference serving engine: micro-batching, caching, load-shedding.

Training got prefetching, checkpointing, and telemetry; this module is
the serving-side counterpart.  An :class:`InferenceEngine` owns a fitted
:class:`~repro.pipeline.ExaTrkXPipeline` and answers reconstruction
requests through a bounded :class:`RequestQueue`:

* a **dynamic micro-batcher** groups queued requests and flushes on
  whichever comes first — ``max_batch_events`` requests waiting, or the
  oldest request waiting ``max_wait_ms`` — so the embedding and filter
  forward passes run ONCE over the concatenated per-batch hit/edge
  arrays instead of once per event;
* a **keyed stage cache** (:class:`~repro.serve.cache.StageCache`)
  memoises construction/filter outputs under an event-content hash, so
  replayed events enter the pipeline directly at the GNN stage;
* **admission control**: when the queue is full a new request is shed
  immediately (cheap rejection beats queueing past the deadline), and
  when the per-request latency budget is already blown at dispatch the
  batch is served **degraded** — the GNN stage is skipped and tracks are
  built from filter scores alone.

Determinism contract
--------------------
Batched execution is bit-identical to looped
:meth:`~repro.pipeline.ExaTrkXPipeline.reconstruct`: both run under
:func:`repro.tensor.row_stable_matmul`, whose per-row results do not
depend on what else is in the batch, and everything downstream of the
fused forwards (FRNN, GNN, track building) is strictly per-event.  Batch
*composition* therefore never influences results — only latency.

Time is read from an injectable clock (:class:`repro.faults.SimClock`
compatible), so overload, shedding, and degraded-mode decisions are
deterministic and injectable in tests; ``workers=0`` runs the engine
synchronously (the caller pumps), ``workers>=1`` starts a background
micro-batcher thread feeding a worker pool.

Resilience (``docs/resilience.md``)
-----------------------------------
Serving is the layer where one bad input or one failing stage must never
take the process down:

* with ``validate_inputs``, malformed events are **quarantined** at
  :meth:`InferenceEngine.submit` (``status == "quarantined"``) before
  they can reach a stage; the critical rules (NaN/Inf positions,
  inconsistent hit-array lengths) run unconditionally — a NaN event
  must never reach the embedding stage, flag or no flag;
* with ``breaker_threshold`` set, a :class:`repro.guard.CircuitBreaker`
  wraps the GNN stage: consecutive stage exceptions (or latency-budget
  breaches) trip it open, open batches are served on the degraded
  GNN-skip path, and after a cooldown a half-open probe decides whether
  to close it again;
* with ``request_timeout_ms``, requests that are already older than the
  timeout at dispatch complete exceptionally (``status == "timed_out"``)
  instead of consuming stage compute;
* a stage exception never leaves a request hanging: the failing batch is
  served degraded when the upstream stages succeeded, or failed with a
  typed error otherwise, and :meth:`InferenceEngine.close` drains so
  every in-flight request reaches a terminal state.

Every request ends in exactly ONE terminal state — ``done`` (possibly
with the ``degraded`` modifier), ``shed``, ``quarantined``,
``timed_out``, or ``failed`` — and :class:`ServeStats` counts them
disjointly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..detector import Event
from ..faults import FaultPlan
from ..graph import EventGraph
from ..guard import (
    BreakerConfig,
    CircuitBreaker,
    EventValidator,
    Quarantine,
    QuarantineLog,
)
from ..obs import get_telemetry, get_tracer
from ..pipeline import ExaTrkXPipeline, GraphConstructionStage
from ..pipeline.track_building import build_tracks, build_tracks_walkthrough
from ..tensor import row_stable_matmul
from .cache import CachedStages, StageCache, event_fingerprint

__all__ = [
    "ServeConfig",
    "ServeStats",
    "ServeRequest",
    "RequestQueue",
    "InferenceEngine",
    "RequestShedError",
    "RequestQuarantinedError",
    "RequestTimeoutError",
    "RequestFailedError",
]


class RequestShedError(RuntimeError):
    """The request was rejected by admission control (queue full)."""


class RequestQuarantinedError(RuntimeError):
    """The request's event failed input validation at submit."""


class RequestTimeoutError(RuntimeError):
    """The request exceeded ``request_timeout_ms`` before its stage ran."""


class RequestFailedError(RuntimeError):
    """A stage failure terminated the request with no usable fallback."""


class _WallClock:
    """Minimal wall clock with the :class:`repro.faults.SimClock` shape."""

    @property
    def now(self) -> float:
        return time.perf_counter()


@dataclass(frozen=True)
class ServeConfig:
    """Serving engine knobs.

    Parameters
    ----------
    max_batch_events:
        Micro-batch flush threshold: a batch dispatches as soon as this
        many requests are queued.
    max_wait_ms:
        Micro-batch deadline: a batch also dispatches once its oldest
        request has waited this long, whatever the batch size — bounding
        the batching-induced latency at low load.
    max_queue_events:
        Admission bound.  A request arriving while this many are queued
        is shed immediately (``status == "shed"``).
    workers:
        ``0`` — synchronous engine: the caller drives batching through
        :meth:`InferenceEngine.pump` / :meth:`~InferenceEngine.flush`
        (deterministic; what the tests and the load generator use).
        ``>= 1`` — a background micro-batcher thread dispatches batches
        to a pool of this many worker threads.
    latency_budget_ms:
        Per-request latency budget.  If the oldest request of a batch
        has already waited longer than this at dispatch, the whole batch
        is served in degraded mode (GNN skipped, filter-score tracks);
        ``None`` disables degradation.
    degraded_threshold:
        Filter-score threshold used in place of the GNN threshold when
        serving degraded (the filter's threshold is tuned loose, so the
        degraded path re-cuts at this stricter value).
    cache_capacity:
        Stage-cache entries (events) retained; ``0`` disables caching.
    sim_service_time_s:
        Only meaningful on a simulated clock: each dispatched batch
        advances the clock by this many seconds (``None`` = advance by
        the measured wall-clock processing time).  A fixed value makes
        overload experiments fully deterministic.
    validate_inputs:
        Quarantine malformed events at :meth:`InferenceEngine.submit`
        (``status == "quarantined"``) instead of letting them crash a
        stage mid-batch.  Even when ``False``, the *critical* subset
        (:meth:`repro.guard.EventValidator.critical`: NaN/Inf hit
        positions, mismatched hit-array lengths) still runs — those
        inputs would poison the embedding stage or crash graph
        construction, so they are never admitted.
    quarantine_log:
        Optional JSONL path receiving one structured line per
        quarantined event (see :class:`repro.guard.QuarantineLog`).
    request_timeout_ms:
        Per-request timeout: a request older than this at dispatch is
        completed exceptionally (``status == "timed_out"``) without
        consuming stage compute; ``None`` disables.
    breaker_threshold:
        Consecutive GNN-stage failures (exceptions, and latency-budget
        breaches when ``latency_budget_ms`` is set) that trip the
        circuit breaker open; while open, batches are served on the
        degraded GNN-skip path.  ``None`` disables the breaker.
    breaker_cooldown_ms:
        How long (engine-clock milliseconds) the breaker stays open
        before admitting a half-open probe.
    breaker_probes:
        Consecutive successful probes required to close the breaker.
    precision:
        ``"float32"`` (default) or ``"float64"``: the engine casts the
        fitted pipeline's stage networks to this dtype at construction
        (see :meth:`repro.pipeline.ExaTrkXPipeline.astype`).  The
        batched-vs-sequential bit-parity contract holds in either mode.
    """

    max_batch_events: int = 8
    max_wait_ms: float = 5.0
    max_queue_events: int = 64
    workers: int = 0
    latency_budget_ms: Optional[float] = None
    degraded_threshold: float = 0.5
    cache_capacity: int = 128
    sim_service_time_s: Optional[float] = None
    validate_inputs: bool = False
    quarantine_log: Optional[str] = None
    request_timeout_ms: Optional[float] = None
    breaker_threshold: Optional[int] = None
    breaker_cooldown_ms: float = 1000.0
    breaker_probes: int = 1
    precision: str = "float32"

    def __post_init__(self) -> None:
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                f"unknown precision {self.precision!r}; choose 'float32' or 'float64'"
            )
        if self.max_batch_events < 1:
            raise ValueError("max_batch_events must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_events < 1:
            raise ValueError("max_queue_events must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.latency_budget_ms is not None and self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if not 0.0 <= self.degraded_threshold <= 1.0:
            raise ValueError("degraded_threshold must be in [0, 1]")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.request_timeout_ms is not None and self.request_timeout_ms <= 0:
            raise ValueError("request_timeout_ms must be positive")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be >= 0")
        if self.breaker_probes < 1:
            raise ValueError("breaker_probes must be >= 1")


@dataclass
class ServeRequest:
    """One reconstruction request and, eventually, its result.

    ``status`` moves ``"queued" → "done"`` — or lands in exactly one of
    the exceptional terminal states: ``"shed"`` (admission control),
    ``"quarantined"`` (input validation), ``"timed_out"``
    (``request_timeout_ms`` exceeded before dispatch), or ``"failed"``
    (stage failure with no usable fallback).  ``tracks`` holds the
    hit-index arrays once done; ``degraded`` / ``breaker_degraded`` mark
    a done request served on the GNN-skip path.  Timestamps are
    engine-clock seconds.
    """

    event: Event
    t_submit: float
    status: str = "queued"
    tracks: Optional[List[np.ndarray]] = None
    degraded: bool = False
    breaker_degraded: bool = False  # degraded because the breaker was open
    cache_hit: bool = False
    store_hit: bool = False  # construction graph hydrated from the event store
    error: Optional[BaseException] = None
    t_dispatch: float = 0.0
    t_done: float = 0.0
    _completed: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def queue_wait_ms(self) -> float:
        return 1e3 * (self.t_dispatch - self.t_submit)

    @property
    def latency_ms(self) -> float:
        return 1e3 * (self.t_done - self.t_submit)

    def result(self, timeout: Optional[float] = None) -> List[np.ndarray]:
        """Block until the request completes; raises on any exceptional
        terminal state (every raise is a typed :class:`RuntimeError`
        subclass, so pre-guardrail callers catching ``RuntimeError``
        still work)."""
        if self.status == "shed":
            raise RequestShedError("request was shed by admission control")
        if self.status == "quarantined":
            raise RequestQuarantinedError(
                f"event {self.event.event_id} failed input validation: "
                f"{self.error}"
            )
        if not self._completed.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self.status == "timed_out":
            raise RequestTimeoutError(
                f"request exceeded its timeout after {self.queue_wait_ms:.1f} ms queued"
            )
        if self.status == "failed":
            raise RequestFailedError(
                f"serving failed for event {self.event.event_id}: {self.error}"
            ) from self.error
        assert self.tracks is not None
        return self.tracks


class RequestQueue:
    """Bounded FIFO of pending requests, safe for concurrent access.

    ``offer`` rejects (returns ``False``) when the queue is at capacity
    — the caller sheds the request; ``pop_batch`` removes up to
    ``max_n`` oldest requests atomically.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self.not_empty = threading.Condition(self._lock)
        self._items: Deque[ServeRequest] = deque()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, request: ServeRequest) -> bool:
        with self.not_empty:
            if len(self._items) >= self.capacity:
                return False
            self._items.append(request)
            self.not_empty.notify()
            return True

    def oldest_submit_time(self) -> Optional[float]:
        with self._lock:
            return self._items[0].t_submit if self._items else None

    def pop_batch(self, max_n: int) -> List[ServeRequest]:
        with self._lock:
            batch = []
            while self._items and len(batch) < max_n:
                batch.append(self._items.popleft())
            return batch


@dataclass
class ServeStats:
    """Engine-lifetime aggregates (also exported as ``serve.*`` metrics).

    Terminal states are disjoint: every submitted request is counted in
    exactly one of ``completed`` / ``shed`` / ``quarantined`` /
    ``timed_out`` / ``failed`` once it terminates (``submitted`` equals
    their sum when nothing is in flight).  ``degraded`` and
    ``breaker_degraded`` are modifiers of ``completed``.
    """

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    quarantined: int = 0
    timed_out: int = 0
    failed: int = 0
    degraded: int = 0
    breaker_degraded: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_hydrated: int = 0

    @property
    def terminal(self) -> int:
        """Requests that reached a terminal state (disjoint sum)."""
        return (
            self.completed + self.shed + self.quarantined
            + self.timed_out + self.failed
        )


class InferenceEngine:
    """Serve reconstruction requests over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.pipeline.ExaTrkXPipeline`.
    config:
        Engine knobs (:class:`ServeConfig`).
    clock:
        Any object with a ``now`` attribute in seconds
        (:class:`repro.faults.SimClock` compatible).  Defaults to the
        wall clock; inject a :class:`~repro.faults.SimClock` with
        ``workers=0`` for deterministic batching/shedding/degradation.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`: scheduled
        :class:`~repro.faults.StageFault` entries for stage ``"gnn"``
        fail GNN dispatches deterministically, exercising the circuit
        breaker (chaos drills and tests).
    store:
        Optional :class:`repro.store.EventStore` of **precomputed
        construction graphs** (``meta["graphs"] == "construction"``, as
        written by :func:`repro.store.ingest_construction` from this
        pipeline).  Replayed events whose fingerprint is in the store
        hydrate their construction graph from the warm mmap shard cache
        instead of rebuilding it from the request payload — a restarted
        engine with a cold :class:`StageCache` skips the construction
        stage for every known event.

    Telemetry: every dispatched batch records a ``serve.batch`` span
    with nested ``serve.stage.construction`` / ``serve.stage.filter`` /
    ``serve.stage.gnn`` spans (the GNN span wraps the per-event
    ``pipeline.gnn`` / ``pipeline.track_building`` spans), and the run
    metrics gain ``serve.*`` counters, queue-depth gauges, and
    latency/batch-size histograms — plus ``guard.*`` quarantine and
    breaker series when those guardrails are enabled.
    """

    def __init__(
        self,
        pipeline: ExaTrkXPipeline,
        config: Optional[ServeConfig] = None,
        clock=None,
        fault_plan: Optional[FaultPlan] = None,
        store=None,
    ) -> None:
        if pipeline.construction is None:
            raise RuntimeError("pipeline not fitted")
        self.pipeline = pipeline
        self.store = store
        self._store_graphs: Dict[str, object] = {}
        if store is not None:
            if store.meta.get("graphs") != "construction":
                raise ValueError(
                    "serving store must hold construction graphs "
                    "(ingest with repro.store.ingest_construction); got "
                    f"meta={store.meta!r}"
                )
            self._store_graphs = {
                h.fingerprint: h
                for h in store.handles()
                if h.fingerprint and h.source == "construction"
            }
        self.config = config if config is not None else ServeConfig()
        if self.config.precision != "float32":
            pipeline.astype(np.dtype(self.config.precision))
        self.clock = clock if clock is not None else _WallClock()
        self.fault_plan = fault_plan
        self.queue = RequestQueue(self.config.max_queue_events)
        self.cache: Optional[StageCache] = (
            StageCache(self.config.cache_capacity)
            if self.config.cache_capacity > 0
            else None
        )
        # Full validation is opt-in, but the *critical* rules (NaN/Inf
        # positions, mismatched hit-array lengths) always run: a NaN
        # coordinate admitted here would flow through the embedding into
        # every downstream score, and a length mismatch crashes graph
        # construction mid-batch — neither may depend on a config flag.
        validator = (
            EventValidator.for_geometry(pipeline.geometry)
            if self.config.validate_inputs
            else EventValidator.critical()
        )
        self.quarantine: Optional[Quarantine] = Quarantine(
            validator,
            context="serve.submit",
            log=(
                QuarantineLog(self.config.quarantine_log)
                if self.config.quarantine_log
                else None
            ),
            kind="event",
        )
        self.breaker: Optional[CircuitBreaker] = None
        if self.config.breaker_threshold is not None:
            self.breaker = CircuitBreaker(
                BreakerConfig(
                    failure_threshold=self.config.breaker_threshold,
                    cooldown_s=1e-3 * self.config.breaker_cooldown_ms,
                    probe_successes=self.config.breaker_probes,
                ),
                clock=self.clock,
                name="gnn",
            )
        self.stats = ServeStats()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[threading.Thread] = None
        if self.config.workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers, thread_name_prefix="repro-serve"
            )
            self._batcher = threading.Thread(
                target=self._batcher_loop, name="repro-serve-batcher", daemon=True
            )
            self._batcher.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Gracefully drain: every in-flight request reaches a terminal
        state (served, or failed with a typed error) — none ever hangs.

        Queued requests are dispatched (batcher drain in threaded mode,
        :meth:`flush` in synchronous mode), the worker pool is shut down
        after its batches finish, and anything somehow left incomplete
        is failed explicitly as a last resort.
        """
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None:
            with self.queue.not_empty:
                self.queue.not_empty.notify_all()
            self._batcher.join()
            self._batcher = None
        else:
            self.flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # backstop: a request still queued here slipped past the drain
        # (e.g. submitted concurrently with close); fail it rather than
        # leave its waiter blocked forever
        leftovers = self.queue.pop_batch(self.config.max_queue_events)
        while leftovers:
            self._fail_requests(
                leftovers, RequestFailedError("engine closed before dispatch")
            )
            leftovers = self.queue.pop_batch(self.config.max_queue_events)

    def health(self) -> Dict[str, object]:
        """Liveness/readiness snapshot for health endpoints.

        ``live`` — the engine object can still accept work (not closed);
        ``ready`` — it is live AND the breaker (if any) is not open, so
        full-quality (non-degraded) serving is available right now.
        """
        breaker_state = self.breaker.state if self.breaker is not None else None
        with self._stats_lock:
            terminal = self.stats.terminal
            submitted = self.stats.submitted
        return {
            "live": not self._closed,
            "ready": not self._closed and breaker_state != "open",
            "queue_depth": len(self.queue),
            "breaker": breaker_state,
            "in_flight": submitted - terminal - len(self.queue),
        }

    # -- submission / admission control --------------------------------
    def submit(self, event: Event) -> ServeRequest:
        """Enqueue one reconstruction request.

        Returns immediately; the request completes asynchronously
        (threaded mode) or on the next :meth:`pump` / :meth:`flush`
        (synchronous mode).  When the queue is full the request is shed:
        ``status == "shed"`` and no reconstruction ever runs for it.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        request = ServeRequest(event=event, t_submit=self.clock.now)
        with self._stats_lock:
            self.stats.submitted += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("serve.requests.submitted").add(1)
        if self.quarantine is not None and not self.quarantine.admit(
            event, obj_id=event.event_id
        ):
            request.status = "quarantined"
            issues = self.quarantine.reasons[-1][1]
            request.error = RequestQuarantinedError(
                "; ".join(f"{i.rule}: {i.detail}" for i in issues)
            )
            with self._stats_lock:
                self.stats.quarantined += 1
            if telemetry is not None:
                telemetry.metrics.counter("serve.requests.quarantined").add(1)
            return request
        if not self.queue.offer(request):
            request.status = "shed"
            with self._stats_lock:
                self.stats.shed += 1
            if telemetry is not None:
                telemetry.metrics.counter("serve.requests.shed").add(1)
            get_tracer().event(
                "serve.shed", category="serve", event=event.event_id
            )
            return request
        if telemetry is not None:
            telemetry.metrics.gauge("serve.queue_depth").set(len(self.queue))
        return request

    def process(self, events: Sequence[Event]) -> List[ServeRequest]:
        """Convenience: submit every event, flush, and return requests.

        In synchronous mode the returned requests are already complete
        (or shed); in threaded mode this blocks until they are.
        """
        requests = [self.submit(e) for e in events]
        if self.config.workers == 0:
            self.flush()
        else:
            for r in requests:
                if r.status not in ("shed", "quarantined"):
                    # wait for the terminal state without raising on
                    # exceptional ones — callers inspect status/result()
                    r._completed.wait()
        return requests

    # -- synchronous pumping (workers == 0) ----------------------------
    def next_due_time(self) -> Optional[float]:
        """Earliest clock time at which a batch should dispatch.

        ``None`` when the queue is empty.  A full batch is due
        immediately (its oldest submit time); a partial batch is due
        when its oldest request's ``max_wait_ms`` deadline expires.
        """
        oldest = self.queue.oldest_submit_time()
        if oldest is None:
            return None
        if len(self.queue) >= self.config.max_batch_events:
            return oldest
        return oldest + 1e-3 * self.config.max_wait_ms

    def pump(self) -> int:
        """Dispatch ONE batch if one is due; returns its size (0 if not).

        Synchronous mode only.  "Due" means a full batch is waiting or
        the oldest request's batching deadline has expired at the
        current clock time.
        """
        due = self.next_due_time()
        if due is None or due > self.clock.now:
            return 0
        batch = self.queue.pop_batch(self.config.max_batch_events)
        if batch:
            self._process_batch(batch)
        return len(batch)

    def flush(self) -> int:
        """Dispatch everything queued, deadline or not; returns count."""
        total = 0
        while True:
            batch = self.queue.pop_batch(self.config.max_batch_events)
            if not batch:
                return total
            self._process_batch(batch)
            total += len(batch)

    # -- threaded micro-batcher (workers >= 1) -------------------------
    def _batcher_loop(self) -> None:
        cfg = self.config
        while True:
            with self.queue.not_empty:
                while len(self.queue._items) == 0 and not self._closed:
                    self.queue.not_empty.wait(timeout=0.05)
                if self._closed and not self.queue._items:
                    return
                # batch is dispatched when full, or when the oldest
                # request's deadline expires — whichever happens first
                while (
                    len(self.queue._items) < cfg.max_batch_events
                    and not self._closed
                ):
                    oldest = self.queue._items[0].t_submit if self.queue._items else None
                    if oldest is None:
                        break
                    remaining = oldest + 1e-3 * cfg.max_wait_ms - self.clock.now
                    if remaining <= 0:
                        break
                    self.queue.not_empty.wait(timeout=min(remaining, 0.05))
            batch = self.queue.pop_batch(cfg.max_batch_events)
            if batch:
                assert self._executor is not None
                self._executor.submit(self._process_batch, batch)

    # -- batch execution ------------------------------------------------
    def _fail_requests(self, requests: List[ServeRequest], error: BaseException) -> None:
        """Terminal-state containment: mark ``requests`` failed, wake waiters."""
        failed = 0
        t_now = self.clock.now
        for request in requests:
            if request._completed.is_set():
                continue
            request.status = "failed"
            request.error = error
            request.t_done = t_now
            request._completed.set()
            failed += 1
        if not failed:
            return
        with self._stats_lock:
            self.stats.failed += failed
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("serve.requests.failed").add(failed)
        get_tracer().event(
            "serve.failed", category="serve", requests=failed, error=str(error)
        )

    def _timeout_expired(self, batch: List[ServeRequest], t_dispatch: float) -> List[ServeRequest]:
        """Split off requests already past ``request_timeout_ms``; returns
        the still-live remainder."""
        cfg = self.config
        if cfg.request_timeout_ms is None:
            return batch
        live: List[ServeRequest] = []
        expired = 0
        for request in batch:
            if 1e3 * (t_dispatch - request.t_submit) > cfg.request_timeout_ms:
                request.status = "timed_out"
                request.t_done = t_dispatch
                request._completed.set()
                expired += 1
            else:
                live.append(request)
        if expired:
            with self._stats_lock:
                self.stats.timed_out += expired
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.metrics.counter("serve.requests.timed_out").add(expired)
            get_tracer().event(
                "serve.timed_out", category="serve", requests=expired
            )
        return live

    def _process_batch(self, batch: List[ServeRequest]) -> None:
        """Run one micro-batch through the stages; fills in every request.

        Containment invariant: every request in ``batch`` reaches a
        terminal state before this returns — served (full or degraded),
        timed out, or failed — even when a stage raises.
        """
        try:
            self._process_batch_inner(batch)
        except BaseException as exc:  # containment: nothing may hang
            self._fail_requests(batch, exc)
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt/SystemExit must still propagate

    def _process_batch_inner(self, batch: List[ServeRequest]) -> None:
        cfg = self.config
        tracer = get_tracer()
        t_dispatch = self.clock.now
        for request in batch:
            request.t_dispatch = t_dispatch
        batch = self._timeout_expired(batch, t_dispatch)
        if not batch:
            return
        oldest_wait_ms = 1e3 * (t_dispatch - batch[0].t_submit)
        late = (
            cfg.latency_budget_ms is not None
            and oldest_wait_ms > cfg.latency_budget_ms
        )
        # a latency-budget breach is a breaker failure too: persistent
        # overload trips it open, and the open breaker then skips the
        # GNN without re-measuring every batch
        if late and self.breaker is not None:
            self.breaker.record_failure(kind="latency")
        breaker_open = (
            not late and self.breaker is not None and not self.breaker.allow()
        )
        use_gnn = not late and not breaker_open
        degraded = not use_gnn
        t0_wall = time.perf_counter()
        with tracer.span(
            "serve.batch",
            category="serve",
            size=len(batch),
            degraded=degraded,
            breaker_open=breaker_open,
            oldest_wait_ms=oldest_wait_ms,
        ), row_stable_matmul():
            stages = self._upstream_stages(batch)
            gnn_error: Optional[BaseException] = None
            if use_gnn:
                with tracer.span("serve.stage.gnn", category="serve", degraded=False):
                    try:
                        if self.fault_plan is not None:
                            self.fault_plan.before_stage("gnn")
                        for request, staged in zip(batch, stages):
                            request.tracks = self.pipeline.finish_from_filtered(
                                staged.filtered
                            )
                        if self.breaker is not None:
                            self.breaker.record_success()
                    except Exception as exc:
                        gnn_error = exc
                        if self.breaker is not None:
                            self.breaker.record_failure(kind="exception")
                        get_tracer().event(
                            "serve.stage_error",
                            category="serve",
                            stage="gnn",
                            error=str(exc),
                        )
            if not use_gnn or gnn_error is not None:
                # degraded GNN-skip path: latency breach, open breaker,
                # or fallback for the requests a GNN failure left unserved
                with tracer.span("serve.stage.gnn", category="serve", degraded=True):
                    for request, staged in zip(batch, stages):
                        if request.tracks is not None:
                            continue
                        request.tracks = self._degraded_tracks(staged)
                        request.degraded = True
                        request.breaker_degraded = (
                            breaker_open or gnn_error is not None
                        )
        service_wall_s = time.perf_counter() - t0_wall
        if not isinstance(self.clock, _WallClock):
            # simulated clock: model the service time explicitly so
            # queueing dynamics (and thus shedding/degradation) are
            # reproducible — fixed when configured, measured otherwise
            self.clock.now = t_dispatch + (
                cfg.sim_service_time_s
                if cfg.sim_service_time_s is not None
                else service_wall_s
            )
        t_done = self.clock.now
        for request in batch:
            request.t_done = t_done
            request.status = "done"
            request._completed.set()
        self._record_batch(batch)

    def _upstream_stages(self, batch: List[ServeRequest]) -> List[CachedStages]:
        """Construction + filter for a batch, through the stage cache.

        Cache misses are built with the fused batched stage paths
        (:meth:`GraphConstructionStage.build_many`,
        :meth:`FilterStage.prune_many`); hits skip both stages.
        """
        tracer = get_tracer()
        keys = [event_fingerprint(r.event) for r in batch]
        staged: List[Optional[CachedStages]] = [None] * len(batch)
        miss_idx: List[int] = []
        seen_in_batch: dict = {}
        for i, key in enumerate(keys):
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is not None:
                staged[i] = entry
                batch[i].cache_hit = True
            elif key in seen_in_batch:
                # duplicate within the batch: computed once, shared —
                # counts as a hit (the work is skipped either way)
                batch[i].cache_hit = True
            else:
                seen_in_batch[key] = i
                miss_idx.append(i)
        hydrated = 0
        if miss_idx:
            # stage-cache misses whose event lives in the shard store skip
            # construction entirely: the precomputed graph is mapped out of
            # the warm shard window instead of rebuilt from the payload
            graphs: List[Optional[EventGraph]] = [None] * len(miss_idx)
            cold: List[int] = []
            for j, i in enumerate(miss_idx):
                handle = self._store_graphs.get(keys[i])
                if handle is not None:
                    with tracer.span(
                        "serve.stage.store_hydrate",
                        category="serve",
                        event=batch[i].event.event_id,
                    ):
                        graphs[j] = handle.materialize()
                    batch[i].store_hit = True
                    hydrated += 1
                else:
                    cold.append(j)
            if cold:
                miss_events = [batch[miss_idx[j]].event for j in cold]
                construction = self.pipeline.construction
                with tracer.span(
                    "serve.stage.construction", category="serve", events=len(miss_events)
                ):
                    if isinstance(construction, GraphConstructionStage):
                        built = construction.build_many(miss_events)
                    else:  # module-map construction has no fused forward
                        built = [construction.build(e) for e in miss_events]
                for j, graph in zip(cold, built):
                    graphs[j] = graph
            with tracer.span(
                "serve.stage.filter", category="serve", graphs=len(graphs)
            ):
                pruned = self.pipeline.filter.prune_many(graphs)
            for i, graph, (filtered, keep, scores) in zip(miss_idx, graphs, pruned):
                entry = CachedStages(
                    graph=graph,
                    filtered=filtered,
                    filter_keep=keep,
                    filter_scores=scores,
                )
                staged[i] = entry
                if self.cache is not None:
                    self.cache.put(keys[i], entry)
        for i, key in enumerate(keys):  # resolve in-batch duplicates
            if staged[i] is None:
                staged[i] = staged[seen_in_batch[key]]
        hits = len(batch) - len(miss_idx)
        with self._stats_lock:
            self.stats.cache_hits += hits
            self.stats.cache_misses += len(miss_idx)
            self.stats.store_hydrated += hydrated
        telemetry = get_telemetry()
        if telemetry is not None:
            if hits:
                telemetry.metrics.counter("serve.cache.hits").add(hits)
            if miss_idx:
                telemetry.metrics.counter("serve.cache.misses").add(len(miss_idx))
            if hydrated:
                telemetry.metrics.counter("serve.store.hydrated").add(hydrated)
        return [s for s in staged if s is not None]

    def _degraded_tracks(self, staged: CachedStages) -> List[np.ndarray]:
        """Budget-exceeded fallback: tracks from filter scores, no GNN.

        The filter-pruned graph is re-cut at ``degraded_threshold`` and
        handed to the configured track builder with filter scores
        standing in for GNN scores — a strictly cheaper approximation
        whose cost is independent of the GNN's depth.
        """
        config = self.pipeline.config
        filtered = staged.filtered
        kept_scores = staged.filter_scores[staged.filter_keep]
        if config.track_builder == "walkthrough":
            return build_tracks_walkthrough(
                filtered,
                kept_scores,
                min_hits=config.min_track_hits,
                min_score=self.config.degraded_threshold,
            )
        keep = kept_scores >= self.config.degraded_threshold
        graph: EventGraph = filtered.edge_mask_subgraph(keep)
        return build_tracks(graph, min_hits=config.min_track_hits)

    # -- accounting -----------------------------------------------------
    def _record_batch(self, batch: List[ServeRequest]) -> None:
        degraded = sum(1 for r in batch if r.degraded)
        breaker_degraded = sum(1 for r in batch if r.breaker_degraded)
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.completed += len(batch)
            self.stats.degraded += degraded
            self.stats.breaker_degraded += breaker_degraded
        telemetry = get_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        with self._stats_lock:
            metrics.counter("serve.batches").add(1)
            metrics.counter("serve.requests.completed").add(len(batch))
            if degraded:
                metrics.counter("serve.requests.degraded").add(degraded)
            if breaker_degraded:
                metrics.counter("serve.requests.breaker_degraded").add(
                    breaker_degraded
                )
            metrics.histogram("serve.batch_size").observe(len(batch))
            for request in batch:
                metrics.histogram("serve.latency_ms").observe(request.latency_ms)
                metrics.histogram("serve.queue_wait_ms").observe(
                    request.queue_wait_ms
                )
            metrics.gauge("serve.queue_depth").set(len(self.queue))
