"""The inference serving engine: micro-batching, caching, load-shedding.

Training got prefetching, checkpointing, and telemetry; this module is
the serving-side counterpart.  An :class:`InferenceEngine` owns a fitted
:class:`~repro.pipeline.ExaTrkXPipeline` and answers reconstruction
requests through a bounded :class:`RequestQueue`:

* a **dynamic micro-batcher** groups queued requests and flushes on
  whichever comes first — ``max_batch_events`` requests waiting, or the
  oldest request waiting ``max_wait_ms`` — so the embedding and filter
  forward passes run ONCE over the concatenated per-batch hit/edge
  arrays instead of once per event;
* a **keyed stage cache** (:class:`~repro.serve.cache.StageCache`)
  memoises construction/filter outputs under an event-content hash, so
  replayed events enter the pipeline directly at the GNN stage;
* **admission control**: when the queue is full a new request is shed
  immediately (cheap rejection beats queueing past the deadline), and
  when the per-request latency budget is already blown at dispatch the
  batch is served **degraded** — the GNN stage is skipped and tracks are
  built from filter scores alone.

Determinism contract
--------------------
Batched execution is bit-identical to looped
:meth:`~repro.pipeline.ExaTrkXPipeline.reconstruct`: both run under
:func:`repro.tensor.row_stable_matmul`, whose per-row results do not
depend on what else is in the batch, and everything downstream of the
fused forwards (FRNN, GNN, track building) is strictly per-event.  Batch
*composition* therefore never influences results — only latency.

Time is read from an injectable clock (:class:`repro.faults.SimClock`
compatible), so overload, shedding, and degraded-mode decisions are
deterministic and injectable in tests; ``workers=0`` runs the engine
synchronously (the caller pumps), ``workers>=1`` starts a background
micro-batcher thread feeding a worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

import numpy as np

from ..detector import Event
from ..graph import EventGraph
from ..obs import get_telemetry, get_tracer
from ..pipeline import ExaTrkXPipeline, GraphConstructionStage
from ..pipeline.track_building import build_tracks, build_tracks_walkthrough
from ..tensor import row_stable_matmul
from .cache import CachedStages, StageCache, event_fingerprint

__all__ = ["ServeConfig", "ServeStats", "ServeRequest", "RequestQueue", "InferenceEngine"]


class _WallClock:
    """Minimal wall clock with the :class:`repro.faults.SimClock` shape."""

    @property
    def now(self) -> float:
        return time.perf_counter()


@dataclass(frozen=True)
class ServeConfig:
    """Serving engine knobs.

    Parameters
    ----------
    max_batch_events:
        Micro-batch flush threshold: a batch dispatches as soon as this
        many requests are queued.
    max_wait_ms:
        Micro-batch deadline: a batch also dispatches once its oldest
        request has waited this long, whatever the batch size — bounding
        the batching-induced latency at low load.
    max_queue_events:
        Admission bound.  A request arriving while this many are queued
        is shed immediately (``status == "shed"``).
    workers:
        ``0`` — synchronous engine: the caller drives batching through
        :meth:`InferenceEngine.pump` / :meth:`~InferenceEngine.flush`
        (deterministic; what the tests and the load generator use).
        ``>= 1`` — a background micro-batcher thread dispatches batches
        to a pool of this many worker threads.
    latency_budget_ms:
        Per-request latency budget.  If the oldest request of a batch
        has already waited longer than this at dispatch, the whole batch
        is served in degraded mode (GNN skipped, filter-score tracks);
        ``None`` disables degradation.
    degraded_threshold:
        Filter-score threshold used in place of the GNN threshold when
        serving degraded (the filter's threshold is tuned loose, so the
        degraded path re-cuts at this stricter value).
    cache_capacity:
        Stage-cache entries (events) retained; ``0`` disables caching.
    sim_service_time_s:
        Only meaningful on a simulated clock: each dispatched batch
        advances the clock by this many seconds (``None`` = advance by
        the measured wall-clock processing time).  A fixed value makes
        overload experiments fully deterministic.
    """

    max_batch_events: int = 8
    max_wait_ms: float = 5.0
    max_queue_events: int = 64
    workers: int = 0
    latency_budget_ms: Optional[float] = None
    degraded_threshold: float = 0.5
    cache_capacity: int = 128
    sim_service_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_events < 1:
            raise ValueError("max_batch_events must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_events < 1:
            raise ValueError("max_queue_events must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.latency_budget_ms is not None and self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if not 0.0 <= self.degraded_threshold <= 1.0:
            raise ValueError("degraded_threshold must be in [0, 1]")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")


@dataclass
class ServeRequest:
    """One reconstruction request and, eventually, its result.

    ``status`` moves ``"queued" → "done"`` (or is ``"shed"`` from the
    start); ``tracks`` holds the hit-index arrays once done.  Timestamps
    are engine-clock seconds.
    """

    event: Event
    t_submit: float
    status: str = "queued"
    tracks: Optional[List[np.ndarray]] = None
    degraded: bool = False
    cache_hit: bool = False
    t_dispatch: float = 0.0
    t_done: float = 0.0
    _completed: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def queue_wait_ms(self) -> float:
        return 1e3 * (self.t_dispatch - self.t_submit)

    @property
    def latency_ms(self) -> float:
        return 1e3 * (self.t_done - self.t_submit)

    def result(self, timeout: Optional[float] = None) -> List[np.ndarray]:
        """Block until the request completes; raises if it was shed."""
        if self.status == "shed":
            raise RuntimeError("request was shed by admission control")
        if not self._completed.wait(timeout):
            raise TimeoutError("request did not complete in time")
        assert self.tracks is not None
        return self.tracks


class RequestQueue:
    """Bounded FIFO of pending requests, safe for concurrent access.

    ``offer`` rejects (returns ``False``) when the queue is at capacity
    — the caller sheds the request; ``pop_batch`` removes up to
    ``max_n`` oldest requests atomically.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self.not_empty = threading.Condition(self._lock)
        self._items: Deque[ServeRequest] = deque()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, request: ServeRequest) -> bool:
        with self.not_empty:
            if len(self._items) >= self.capacity:
                return False
            self._items.append(request)
            self.not_empty.notify()
            return True

    def oldest_submit_time(self) -> Optional[float]:
        with self._lock:
            return self._items[0].t_submit if self._items else None

    def pop_batch(self, max_n: int) -> List[ServeRequest]:
        with self._lock:
            batch = []
            while self._items and len(batch) < max_n:
                batch.append(self._items.popleft())
            return batch


@dataclass
class ServeStats:
    """Engine-lifetime aggregates (also exported as ``serve.*`` metrics)."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    degraded: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class InferenceEngine:
    """Serve reconstruction requests over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.pipeline.ExaTrkXPipeline`.
    config:
        Engine knobs (:class:`ServeConfig`).
    clock:
        Any object with a ``now`` attribute in seconds
        (:class:`repro.faults.SimClock` compatible).  Defaults to the
        wall clock; inject a :class:`~repro.faults.SimClock` with
        ``workers=0`` for deterministic batching/shedding/degradation.

    Telemetry: every dispatched batch records a ``serve.batch`` span
    with nested ``serve.stage.construction`` / ``serve.stage.filter`` /
    ``serve.stage.gnn`` spans (the GNN span wraps the per-event
    ``pipeline.gnn`` / ``pipeline.track_building`` spans), and the run
    metrics gain ``serve.*`` counters, queue-depth gauges, and
    latency/batch-size histograms.
    """

    def __init__(
        self,
        pipeline: ExaTrkXPipeline,
        config: Optional[ServeConfig] = None,
        clock=None,
    ) -> None:
        if pipeline.construction is None:
            raise RuntimeError("pipeline not fitted")
        self.pipeline = pipeline
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else _WallClock()
        self.queue = RequestQueue(self.config.max_queue_events)
        self.cache: Optional[StageCache] = (
            StageCache(self.config.cache_capacity)
            if self.config.cache_capacity > 0
            else None
        )
        self.stats = ServeStats()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[threading.Thread] = None
        if self.config.workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers, thread_name_prefix="repro-serve"
            )
            self._batcher = threading.Thread(
                target=self._batcher_loop, name="repro-serve-batcher", daemon=True
            )
            self._batcher.start()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Drain queued requests, stop the batcher, and shut the pool."""
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None:
            with self.queue.not_empty:
                self.queue.not_empty.notify_all()
            self._batcher.join()
            self._batcher = None
        else:
            self.flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission / admission control --------------------------------
    def submit(self, event: Event) -> ServeRequest:
        """Enqueue one reconstruction request.

        Returns immediately; the request completes asynchronously
        (threaded mode) or on the next :meth:`pump` / :meth:`flush`
        (synchronous mode).  When the queue is full the request is shed:
        ``status == "shed"`` and no reconstruction ever runs for it.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        request = ServeRequest(event=event, t_submit=self.clock.now)
        with self._stats_lock:
            self.stats.submitted += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("serve.requests.submitted").add(1)
        if not self.queue.offer(request):
            request.status = "shed"
            with self._stats_lock:
                self.stats.shed += 1
            if telemetry is not None:
                telemetry.metrics.counter("serve.requests.shed").add(1)
            get_tracer().event(
                "serve.shed", category="serve", event=event.event_id
            )
            return request
        if telemetry is not None:
            telemetry.metrics.gauge("serve.queue_depth").set(len(self.queue))
        return request

    def process(self, events: Sequence[Event]) -> List[ServeRequest]:
        """Convenience: submit every event, flush, and return requests.

        In synchronous mode the returned requests are already complete
        (or shed); in threaded mode this blocks until they are.
        """
        requests = [self.submit(e) for e in events]
        if self.config.workers == 0:
            self.flush()
        else:
            for r in requests:
                if r.status != "shed":
                    r.result()
        return requests

    # -- synchronous pumping (workers == 0) ----------------------------
    def next_due_time(self) -> Optional[float]:
        """Earliest clock time at which a batch should dispatch.

        ``None`` when the queue is empty.  A full batch is due
        immediately (its oldest submit time); a partial batch is due
        when its oldest request's ``max_wait_ms`` deadline expires.
        """
        oldest = self.queue.oldest_submit_time()
        if oldest is None:
            return None
        if len(self.queue) >= self.config.max_batch_events:
            return oldest
        return oldest + 1e-3 * self.config.max_wait_ms

    def pump(self) -> int:
        """Dispatch ONE batch if one is due; returns its size (0 if not).

        Synchronous mode only.  "Due" means a full batch is waiting or
        the oldest request's batching deadline has expired at the
        current clock time.
        """
        due = self.next_due_time()
        if due is None or due > self.clock.now:
            return 0
        batch = self.queue.pop_batch(self.config.max_batch_events)
        if batch:
            self._process_batch(batch)
        return len(batch)

    def flush(self) -> int:
        """Dispatch everything queued, deadline or not; returns count."""
        total = 0
        while True:
            batch = self.queue.pop_batch(self.config.max_batch_events)
            if not batch:
                return total
            self._process_batch(batch)
            total += len(batch)

    # -- threaded micro-batcher (workers >= 1) -------------------------
    def _batcher_loop(self) -> None:
        cfg = self.config
        while True:
            with self.queue.not_empty:
                while len(self.queue._items) == 0 and not self._closed:
                    self.queue.not_empty.wait(timeout=0.05)
                if self._closed and not self.queue._items:
                    return
                # batch is dispatched when full, or when the oldest
                # request's deadline expires — whichever happens first
                while (
                    len(self.queue._items) < cfg.max_batch_events
                    and not self._closed
                ):
                    oldest = self.queue._items[0].t_submit if self.queue._items else None
                    if oldest is None:
                        break
                    remaining = oldest + 1e-3 * cfg.max_wait_ms - self.clock.now
                    if remaining <= 0:
                        break
                    self.queue.not_empty.wait(timeout=min(remaining, 0.05))
            batch = self.queue.pop_batch(cfg.max_batch_events)
            if batch:
                assert self._executor is not None
                self._executor.submit(self._process_batch, batch)

    # -- batch execution ------------------------------------------------
    def _process_batch(self, batch: List[ServeRequest]) -> None:
        """Run one micro-batch through the stages; fills in every request."""
        cfg = self.config
        tracer = get_tracer()
        t_dispatch = self.clock.now
        for request in batch:
            request.t_dispatch = t_dispatch
        oldest_wait_ms = 1e3 * (t_dispatch - batch[0].t_submit)
        degraded = (
            cfg.latency_budget_ms is not None
            and oldest_wait_ms > cfg.latency_budget_ms
        )
        t0_wall = time.perf_counter()
        with tracer.span(
            "serve.batch",
            category="serve",
            size=len(batch),
            degraded=degraded,
            oldest_wait_ms=oldest_wait_ms,
        ), row_stable_matmul():
            stages = self._upstream_stages(batch)
            with tracer.span("serve.stage.gnn", category="serve", degraded=degraded):
                for request, staged in zip(batch, stages):
                    if degraded:
                        request.tracks = self._degraded_tracks(staged)
                        request.degraded = True
                    else:
                        request.tracks = self.pipeline.finish_from_filtered(
                            staged.filtered
                        )
        service_wall_s = time.perf_counter() - t0_wall
        if not isinstance(self.clock, _WallClock):
            # simulated clock: model the service time explicitly so
            # queueing dynamics (and thus shedding/degradation) are
            # reproducible — fixed when configured, measured otherwise
            self.clock.now = t_dispatch + (
                cfg.sim_service_time_s
                if cfg.sim_service_time_s is not None
                else service_wall_s
            )
        t_done = self.clock.now
        for request in batch:
            request.t_done = t_done
            request.status = "done"
            request._completed.set()
        self._record_batch(batch, degraded)

    def _upstream_stages(self, batch: List[ServeRequest]) -> List[CachedStages]:
        """Construction + filter for a batch, through the stage cache.

        Cache misses are built with the fused batched stage paths
        (:meth:`GraphConstructionStage.build_many`,
        :meth:`FilterStage.prune_many`); hits skip both stages.
        """
        tracer = get_tracer()
        keys = [event_fingerprint(r.event) for r in batch]
        staged: List[Optional[CachedStages]] = [None] * len(batch)
        miss_idx: List[int] = []
        seen_in_batch: dict = {}
        for i, key in enumerate(keys):
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is not None:
                staged[i] = entry
                batch[i].cache_hit = True
            elif key in seen_in_batch:
                # duplicate within the batch: computed once, shared —
                # counts as a hit (the work is skipped either way)
                batch[i].cache_hit = True
            else:
                seen_in_batch[key] = i
                miss_idx.append(i)
        if miss_idx:
            miss_events = [batch[i].event for i in miss_idx]
            construction = self.pipeline.construction
            with tracer.span(
                "serve.stage.construction", category="serve", events=len(miss_events)
            ):
                if isinstance(construction, GraphConstructionStage):
                    graphs = construction.build_many(miss_events)
                else:  # module-map construction has no fused forward
                    graphs = [construction.build(e) for e in miss_events]
            with tracer.span(
                "serve.stage.filter", category="serve", graphs=len(graphs)
            ):
                pruned = self.pipeline.filter.prune_many(graphs)
            for i, graph, (filtered, keep, scores) in zip(miss_idx, graphs, pruned):
                entry = CachedStages(
                    graph=graph,
                    filtered=filtered,
                    filter_keep=keep,
                    filter_scores=scores,
                )
                staged[i] = entry
                if self.cache is not None:
                    self.cache.put(keys[i], entry)
        for i, key in enumerate(keys):  # resolve in-batch duplicates
            if staged[i] is None:
                staged[i] = staged[seen_in_batch[key]]
        hits = len(batch) - len(miss_idx)
        with self._stats_lock:
            self.stats.cache_hits += hits
            self.stats.cache_misses += len(miss_idx)
        telemetry = get_telemetry()
        if telemetry is not None:
            if hits:
                telemetry.metrics.counter("serve.cache.hits").add(hits)
            if miss_idx:
                telemetry.metrics.counter("serve.cache.misses").add(len(miss_idx))
        return [s for s in staged if s is not None]

    def _degraded_tracks(self, staged: CachedStages) -> List[np.ndarray]:
        """Budget-exceeded fallback: tracks from filter scores, no GNN.

        The filter-pruned graph is re-cut at ``degraded_threshold`` and
        handed to the configured track builder with filter scores
        standing in for GNN scores — a strictly cheaper approximation
        whose cost is independent of the GNN's depth.
        """
        config = self.pipeline.config
        filtered = staged.filtered
        kept_scores = staged.filter_scores[staged.filter_keep]
        if config.track_builder == "walkthrough":
            return build_tracks_walkthrough(
                filtered,
                kept_scores,
                min_hits=config.min_track_hits,
                min_score=self.config.degraded_threshold,
            )
        keep = kept_scores >= self.config.degraded_threshold
        graph: EventGraph = filtered.edge_mask_subgraph(keep)
        return build_tracks(graph, min_hits=config.min_track_hits)

    # -- accounting -----------------------------------------------------
    def _record_batch(self, batch: List[ServeRequest], degraded: bool) -> None:
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.completed += len(batch)
            if degraded:
                self.stats.degraded += len(batch)
        telemetry = get_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        with self._stats_lock:
            metrics.counter("serve.batches").add(1)
            metrics.counter("serve.requests.completed").add(len(batch))
            if degraded:
                metrics.counter("serve.requests.degraded").add(len(batch))
            metrics.histogram("serve.batch_size").observe(len(batch))
            for request in batch:
                metrics.histogram("serve.latency_ms").observe(request.latency_ms)
                metrics.histogram("serve.queue_wait_ms").observe(
                    request.queue_wait_ms
                )
            metrics.gauge("serve.queue_depth").set(len(self.queue))
