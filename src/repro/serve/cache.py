"""Keyed stage cache: event-content hash → upstream stage outputs.

Production tracking serves many *replayed* events — calibration reruns,
trigger-menu sweeps, A/B comparisons of downstream settings — where the
hits are byte-identical to a request already answered.  The expensive
upstream stages (embedding forward, FRNN search, feature attachment,
filter forward) are pure functions of the hit content, so their outputs
can be memoised under a content fingerprint and reused: a cache hit
enters the pipeline directly at the GNN stage.

The fingerprint hashes the raw hit arrays (positions, layer ids), NOT
``event_id`` — two events with the same hits share an entry whatever
they are called, and an event whose hits changed never matches a stale
entry.

The cache is a bounded LRU, safe for concurrent access from the serving
worker pool; graphs stored in it are treated as immutable by every
consumer (pruning produces new graphs via ``edge_mask_subgraph``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..detector import Event
from ..graph import EventGraph

__all__ = ["CachedStages", "StageCache", "event_fingerprint"]


def event_fingerprint(event: Event) -> str:
    """Content hash of one event's hits (positions + layer ids).

    The arrays are hashed in a fixed byte order, so the fingerprint is
    stable across processes and runs; particle ids and truth ordering
    are deliberately excluded — they do not influence reconstruction.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(event.positions, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(event.layer_ids, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class CachedStages:
    """Upstream stage outputs memoised for one event fingerprint.

    ``graph`` is the labelled candidate graph (construction output);
    ``filtered`` / ``filter_keep`` / ``filter_scores`` are the filter
    stage's pruned graph, keep mask, and pre-threshold scores.
    """

    graph: EventGraph
    filtered: EventGraph
    filter_keep: np.ndarray
    filter_scores: np.ndarray


class StageCache:
    """Bounded LRU over :class:`CachedStages`, keyed by event fingerprint.

    ``capacity`` is the maximum number of events retained; the least
    recently *used* entry is evicted first.  ``hits``/``misses`` count
    lookups over the cache lifetime (the serving engine additionally
    exports them as ``serve.cache.*`` counters).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CachedStages]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[CachedStages]:
        """Look up a fingerprint; refreshes recency on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CachedStages) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> Tuple[int, int]:
        """Return ``(hits, misses)``."""
        return self.hits, self.misses
