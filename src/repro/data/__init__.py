"""Asynchronous data pipeline: epoch planning and batch prefetching.

See :mod:`repro.data.prefetch` for the design and the determinism
contract, and ``docs/data_pipeline.md`` for the operator's view.
"""

from .prefetch import (
    EpochPlan,
    PlannedStep,
    PrefetchLoader,
    PrefetchStats,
    sample_step,
)

__all__ = [
    "EpochPlan",
    "PlannedStep",
    "PrefetchLoader",
    "PrefetchStats",
    "sample_step",
]
