"""Asynchronous prefetching batch pipeline.

The paper's Figure-3 breakdown splits epoch time into ShaDow sampling
and GNN compute; its bulk sampler (Eq. 1) shrinks the sampling term but
the trainer still ran the two phases strictly sequentially, leaving the
model idle while the ``Q^d A`` SpGEMMs run.  This module overlaps them:
a :class:`PrefetchLoader` wraps any :class:`~repro.sampling.base.Sampler`
and serves sampled bulk steps through a bounded queue fed by a
background thread pool (the samplers are numpy/scipy-bound, and SpGEMM
releases the GIL, so threads overlap genuinely with compute).

Determinism contract
--------------------
Batch contents are **bit-identical regardless of worker count or
scheduling order**:

* the epoch's batch schedule (:class:`EpochPlan`) is materialised
  up-front on the trainer thread, consuming the trainer RNG exactly
  once per epoch;
* each bulk step then samples from its own child generator, spawned via
  :class:`numpy.random.SeedSequence` from one entropy draw off the
  trainer RNG — step *i*'s subgraphs are a pure function of
  ``(plan, i, live ranks)``, never of which worker ran it when.

That purity is also what makes elastic recovery safe: a step prefetched
against a rank set that has since shrunk (a rank was evicted) is simply
recomputed against the survivors from the same child seed, and what
makes mid-epoch checkpoint/resume bit-exact: the loader's cursor (steps
consumed) plus the epoch-start RNG state fully reconstruct the pipeline.

``workers=0`` keeps today's synchronous behaviour exactly: every step is
sampled inline on the calling thread at the moment it is requested —
same child-seed scheme, no queue, no threads.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import EventGraph, shard_batch
from ..obs import get_telemetry, get_tracer
from ..sampling import SampledBatch, Sampler, epoch_batches, group_batches

__all__ = ["PlannedStep", "EpochPlan", "PrefetchLoader", "PrefetchStats", "sample_step"]

#: Exclusive upper bound for the per-epoch entropy draw (int64-safe).
_ENTROPY_BOUND = np.int64(2**62)


@dataclass(frozen=True)
class PlannedStep:
    """One bulk sampling step of an epoch plan.

    ``seed`` is the step's own :class:`~numpy.random.SeedSequence` child;
    sampling from it is a pure function, so the step can be executed on
    any thread, in any order, any number of times, with identical output.
    """

    index: int
    graph: EventGraph  # or a lazy handle (e.g. repro.store.StoredGraph)
    batches: Tuple[np.ndarray, ...]
    seed: np.random.SeedSequence


@dataclass(frozen=True)
class EpochPlan:
    """The complete, materialised batch schedule of one epoch.

    Built on the trainer thread from the trainer RNG (graph order and
    vertex permutations exactly as :func:`repro.sampling.epoch_batches`
    draws them), plus one entropy draw that seeds every step's child
    generator.  After construction the trainer RNG is not consumed again
    until the next epoch — which is what lets a mid-epoch resume rebuild
    the identical plan from the epoch-start RNG state.
    """

    steps: Tuple[PlannedStep, ...]

    @classmethod
    def build(
        cls,
        graphs: Sequence[EventGraph],
        batch_size: int,
        k: int,
        rng: np.random.Generator,
        drop_last: bool = True,
    ) -> "EpochPlan":
        """Materialise the epoch's ``k``-grouped batches and child seeds."""
        groups = [
            (graph, tuple(batches))
            for graph, batches in group_batches(
                epoch_batches(graphs, batch_size, rng, drop_last=drop_last), k
            )
        ]
        entropy = int(rng.integers(0, _ENTROPY_BOUND))
        children = np.random.SeedSequence(entropy).spawn(len(groups))
        return cls(
            steps=tuple(
                PlannedStep(index=i, graph=graph, batches=batches, seed=child)
                for i, ((graph, batches), child) in enumerate(zip(groups, children))
            )
        )

    def __len__(self) -> int:
        return len(self.steps)


def sample_step(
    sampler: Sampler, step: PlannedStep, ranks: Tuple[int, ...]
) -> Dict[int, List[SampledBatch]]:
    """Sample one planned step for every live rank (pure function).

    Each rank ``ranks[slot]`` samples its ``1/len(ranks)`` shard of every
    batch in the step's group, all drawn from the step's child generator
    in rank order — bit-identical however often and wherever it runs.

    ``step.graph`` may be a lazy out-of-core handle (anything with a
    ``materialize()`` method, e.g. :class:`repro.store.StoredGraph`):
    the plan then holds only metadata and the event's arrays are mapped
    here, at the moment the step is sampled — which is what keeps a
    streamed epoch's resident set bounded by the store's shard window
    instead of the epoch size.
    """
    graph = step.graph
    materialize = getattr(graph, "materialize", None)
    if materialize is not None:
        graph = materialize()
    rng = np.random.default_rng(step.seed)
    out: Dict[int, List[SampledBatch]] = {}
    for slot, grank in enumerate(ranks):
        shards = [shard_batch(b, slot, len(ranks)) for b in step.batches]
        out[grank] = sampler.sample_bulk(graph, shards, rng)
    return out


@dataclass
class PrefetchStats:
    """Aggregate pipeline health counters for one loader lifetime."""

    steps: int = 0
    stall_seconds: float = 0.0  # trainer-thread time spent waiting
    sample_seconds: float = 0.0  # total sampler time (worker or inline)
    recomputed_steps: int = 0  # prefetched with a stale rank set
    max_queue_depth: int = 0

    def overlap_efficiency(self) -> float:
        """Fraction of sampler time hidden behind compute (0 when
        synchronous, → 1 when prefetching hides sampling entirely)."""
        if self.sample_seconds <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.stall_seconds / self.sample_seconds)


class PrefetchLoader:
    """Serve sampled bulk steps, overlapping sampler work with training.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.sampling.base.Sampler`; bulk samplers fuse a
        step's group into one stacked pass, sequential samplers fall
        back to one call per batch — unchanged semantics either way.
    workers:
        Background sampling threads.  ``0`` (default) disables the
        pipeline: steps are sampled inline when requested, preserving
        the classic synchronous trainer behaviour exactly.
    depth:
        Bound on in-flight prefetched steps (the double-buffer depth).
        Larger values smooth variable step costs at the price of memory
        holding more sampled subgraphs alive.

    Telemetry: every consumed step emits a ``data.prefetch.next`` span
    (trainer-side stall), every sampled step a ``data.prefetch.sample``
    span (on the thread that ran it), and the run metrics gain
    ``data.prefetch.*`` counters/gauges/histograms (queue depth, stall
    time, recomputed steps).
    """

    def __init__(self, sampler: Sampler, workers: int = 0, depth: int = 2) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sampler = sampler
        self.workers = workers
        self.depth = depth
        self.stats = PrefetchStats()

    # ------------------------------------------------------------------
    def _sample(
        self, step: PlannedStep, ranks: Tuple[int, ...]
    ) -> Tuple[Dict[int, List[SampledBatch]], float]:
        """Run one step's sampling (any thread); returns (result, seconds)."""
        t0 = perf_counter()
        with get_tracer().span(
            "data.prefetch.sample",
            category="data",
            step=step.index,
            k=len(step.batches),
            ranks=len(ranks),
        ):
            result = sample_step(self.sampler, step, ranks)
        return result, perf_counter() - t0

    def _record_step(self, stall_s: float, sample_s: float, queue_depth: int) -> None:
        self.stats.steps += 1
        self.stats.stall_seconds += stall_s
        self.stats.sample_seconds += sample_s
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, queue_depth)
        telemetry = get_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        metrics.counter("data.prefetch.steps").add(1)
        metrics.counter("data.prefetch.stall_seconds").add(stall_s)
        metrics.counter("data.prefetch.sample_seconds").add(sample_s)
        metrics.gauge("data.prefetch.workers").set(self.workers)
        metrics.gauge("data.prefetch.queue_depth").set(queue_depth)
        metrics.histogram("data.prefetch.queue_depth_dist").observe(queue_depth)
        metrics.histogram("data.prefetch.stall_s").observe(stall_s)

    def _record_recompute(self) -> None:
        self.stats.recomputed_steps += 1
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("data.prefetch.recomputed_steps").add(1)

    # ------------------------------------------------------------------
    def iter_epoch(
        self,
        plan: EpochPlan,
        ranks_fn: Callable[[], Tuple[int, ...]],
        start: int = 0,
    ) -> Iterator[Tuple[PlannedStep, Dict[int, List[SampledBatch]]]]:
        """Yield ``(step, per-rank sampled batches)`` for ``plan.steps[start:]``.

        ``ranks_fn`` is polled at submission and again at consumption;
        if the live rank set changed while a step sat in the queue (an
        elastic eviction), the step is recomputed against the current
        ranks from its child seed — results therefore never depend on
        prefetch timing.
        """
        if self.workers == 0:
            yield from self._iter_sync(plan, ranks_fn, start)
        else:
            yield from self._iter_prefetch(plan, ranks_fn, start)

    # -- workers=0: classic synchronous path ---------------------------
    def _iter_sync(self, plan, ranks_fn, start):
        tracer = get_tracer()
        for step in plan.steps[start:]:
            with tracer.span(
                "data.prefetch.next", category="data", step=step.index, mode="sync"
            ):
                result, sample_s = self._sample(step, tuple(ranks_fn()))
            self._record_step(stall_s=sample_s, sample_s=sample_s, queue_depth=0)
            yield step, result

    # -- workers>0: bounded background pipeline ------------------------
    def _iter_prefetch(self, plan, ranks_fn, start):
        tracer = get_tracer()
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-prefetch"
        )
        pending: deque = deque()  # (step, ranks_at_submit, future)
        try:
            def submit(i: int) -> None:
                step = plan.steps[i]
                ranks = tuple(ranks_fn())
                pending.append((step, ranks, executor.submit(self._sample, step, ranks)))

            total = len(plan.steps)
            next_up = min(start + self.depth, total)
            for i in range(start, next_up):
                submit(i)
            while pending:
                step, ranks, future = pending.popleft()
                queue_depth = len(pending) + 1
                t0 = perf_counter()
                with tracer.span(
                    "data.prefetch.next",
                    category="data",
                    step=step.index,
                    mode="prefetch",
                ) as span:
                    result, sample_s = future.result()
                    stall_s = perf_counter() - t0
                    live = tuple(ranks_fn())
                    if live != ranks:
                        # rank set changed while queued (elastic eviction):
                        # recompute from the same child seed — bit-exact
                        # with a run that never prefetched.
                        self._record_recompute()
                        span.set(recomputed=True)
                        result, resample_s = self._sample(step, live)
                        stall_s += resample_s
                        sample_s += resample_s
                    span.set(stall_s=stall_s, queue_depth=queue_depth)
                if next_up < total:
                    submit(next_up)
                    next_up += 1
                self._record_step(stall_s, sample_s, queue_depth)
                yield step, result
        finally:
            for _, _, future in pending:
                future.cancel()
            executor.shutdown(wait=True)
