"""Pluggable communication backends.

:class:`repro.distributed.DistributedDataParallel` talks to its
communicator exclusively through this interface, so the *same* gradient
synchronisation, retry, and elastic-eviction logic runs against:

* ``"sim"`` — :class:`repro.distributed.SimCommunicator`: ``P`` logical
  ranks in one process, deterministic, fault injection by raised
  exceptions, communication *time* from the α–β cost model.  The test
  and replay backend.
* ``"proc"`` — :class:`repro.distributed.ProcCommunicator`: one
  ``multiprocessing`` worker per rank, ring all-reduce over
  ``shared_memory`` segments, heartbeat-based failure detection, and
  crash tolerance against real process death (SIGKILL, hangs,
  stragglers).  The genuine-parallelism backend; bit-exact with ``sim``
  on the same seeded run.

Both backends accumulate the same :class:`repro.distributed.CommStats`,
so modeled α–β time and (for ``proc``) measured wall-clock land in the
same telemetry sink and benchmarks can validate the cost model against
reality (``benchmarks/bench_allreduce.py``).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["CommBackend", "COMM_BACKENDS", "create_communicator"]

#: Registered backend names accepted by :func:`create_communicator` and
#: the CLI's ``--backend`` flag.
COMM_BACKENDS = ("sim", "proc")


class CommBackend(abc.ABC):
    """Collective-communication contract required by the DDP layer.

    Implementations own a set of *global* rank ids (:attr:`ranks`); the
    world shrinks through :meth:`remove_rank` when a rank permanently
    fails (elastic recovery).  Collectives raise
    :class:`repro.faults.CommError` subtypes on failure — transient ones
    (:class:`~repro.faults.CommTimeoutError`) are retried by the DDP
    layer, permanent ones (:class:`~repro.faults.RankDeadError`) trigger
    eviction.
    """

    #: Whether the DDP layer must re-broadcast parameters over the
    #: survivors after an eviction.  ``False`` for the in-process
    #: simulator (replicas are bit-identical by construction); ``True``
    #: for real multi-process backends, where the post-eviction resync
    #: (membership-epoch bump + broadcast from the lowest live rank) is
    #: part of the recovery protocol.
    requires_resync: bool = False

    #: Live global rank ids, ascending (set by implementations; shrinks
    #: through :meth:`remove_rank`).
    ranks: List[int]

    @property
    def world_size(self) -> int:
        """Number of *live* ranks."""
        return len(self.ranks)

    @abc.abstractmethod
    def allreduce(
        self, buffers: Sequence[np.ndarray], average: bool = True
    ) -> List[np.ndarray]:
        """All-reduce one buffer per live rank; returns the reduced copies."""

    @abc.abstractmethod
    def broadcast(self, buffer: np.ndarray) -> List[np.ndarray]:
        """Broadcast the lowest live rank's buffer to every live rank."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every live rank reaches the barrier."""

    @abc.abstractmethod
    def remove_rank(self, rank: int) -> int:
        """Evict a permanently failed global rank; returns its local index."""

    def close(self) -> None:
        """Release backend resources (processes, shared memory); idempotent."""

    # context-manager sugar so trainers/benches can ``with create_communicator(...)``
    def __enter__(self) -> "CommBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_communicator(
    backend: str,
    world_size: int,
    *,
    cost_model=None,
    algorithm: str = "ring",
    fault_plan=None,
    collective_timeout: Optional[float] = None,
    heartbeat_interval: Optional[float] = None,
    heartbeat_deadline: Optional[float] = None,
) -> CommBackend:
    """Build a communicator by backend name (``"sim"`` or ``"proc"``).

    The timeout/heartbeat knobs apply to the ``proc`` backend only
    (``None`` keeps its defaults); ``sim`` ignores them — its failure
    detector is the injected-exception fault plan.
    """
    if backend not in COMM_BACKENDS:
        raise ValueError(
            f"unknown comm backend {backend!r}; choose from {COMM_BACKENDS}"
        )
    from .costmodel import NVLINK_A100

    if cost_model is None:
        cost_model = NVLINK_A100
    if backend == "sim":
        from .comm import SimCommunicator

        return SimCommunicator(
            world_size,
            cost_model=cost_model,
            algorithm=algorithm,
            fault_plan=fault_plan,
        )
    from .proc_backend import ProcCommunicator

    kwargs = {}
    if collective_timeout is not None:
        kwargs["collective_timeout"] = collective_timeout
    if heartbeat_interval is not None:
        kwargs["heartbeat_interval"] = heartbeat_interval
    if heartbeat_deadline is not None:
        kwargs["heartbeat_deadline"] = heartbeat_deadline
    return ProcCommunicator(
        world_size,
        cost_model=cost_model,
        algorithm=algorithm,
        fault_plan=fault_plan,
        **kwargs,
    )
