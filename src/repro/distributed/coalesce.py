"""Gradient flattening for the coalesced all-reduce (Section III-D).

An Interaction GNN holds many separate parameter matrices (every layer's
message and node MLPs, each with several ``f × f`` weights).  Synchronising
them with one all-reduce per matrix pays the latency term α once *per
matrix*; stacking all gradients into a single flat buffer pays it once per
*step*.  These helpers pack/unpack that buffer deterministically, using
the module's parameter traversal order (identical across ranks by
construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..nn import Module

__all__ = ["FlatSpec", "flatten_arrays", "unflatten_array", "gradient_arrays"]


@dataclass(frozen=True)
class FlatSpec:
    """Layout of one tensor inside a flat buffer."""

    offset: int
    size: int
    shape: Tuple[int, ...]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[FlatSpec]]:
    """Concatenate arrays into one 1-D float32 buffer plus layout specs."""
    specs: List[FlatSpec] = []
    offset = 0
    for a in arrays:
        specs.append(FlatSpec(offset=offset, size=a.size, shape=a.shape))
        offset += a.size
    flat = np.empty(offset, dtype=np.float32)
    for a, spec in zip(arrays, specs):
        flat[spec.offset : spec.offset + spec.size] = a.reshape(-1)
    return flat, specs


def unflatten_array(flat: np.ndarray, specs: Sequence[FlatSpec]) -> List[np.ndarray]:
    """Split a flat buffer back into tensors per ``specs``."""
    total = specs[-1].offset + specs[-1].size if specs else 0
    if flat.size != total:
        raise ValueError(f"flat buffer has {flat.size} elements, specs expect {total}")
    return [
        flat[s.offset : s.offset + s.size].reshape(s.shape) for s in specs
    ]


def gradient_arrays(model: Module) -> List[np.ndarray]:
    """Collect parameter gradients in deterministic traversal order.

    Parameters with no gradient contribute zeros (they did not participate
    in this step's subgraph), keeping the flat layout rank-invariant.
    """
    grads = []
    for _, p in model.named_parameters():
        if p.grad is None:
            grads.append(np.zeros_like(p.data))
        else:
            grads.append(p.grad)
    return grads
