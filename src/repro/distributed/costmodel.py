"""α–β communication cost model for collective operations.

The coalesced all-reduce optimisation (Section III-D) trades many
small-message latency terms for a single large transfer; the standard
latency–bandwidth (α–β) model of a ring all-reduce makes that trade
quantitative:

    T_allreduce(bytes, P) = 2 (P-1) α  +  2 (P-1)/P · bytes · β

(one reduce-scatter plus one all-gather, each P-1 steps).  Running one
all-reduce per parameter matrix multiplies the α term by the parameter
count; stacking them into one buffer pays it once.

Defaults are calibrated to the paper's hardware: NVLink 3.0 at 100 GB/s
unidirectional between GPU pairs, and a ~10 µs per-call launch+latency
cost typical of NCCL collectives on A100 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CommCostModel", "NVLINK_A100"]


@dataclass(frozen=True)
class CommCostModel:
    """Latency–bandwidth model of ring collectives.

    Parameters
    ----------
    alpha:
        Per-message latency [s] (launch + link latency per ring step pair).
    beta:
        Inverse bandwidth [s/byte].
    """

    alpha: float = 10e-6
    beta: float = 1.0 / 100e9

    def allreduce_time(self, nbytes: int, world_size: int) -> float:
        """Modeled time of one ring all-reduce of ``nbytes`` over ``P`` ranks."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if world_size == 1:
            return 0.0
        p = world_size
        return 2.0 * (p - 1) * self.alpha + 2.0 * (p - 1) / p * nbytes * self.beta

    def broadcast_time(self, nbytes: int, world_size: int) -> float:
        """Modeled time of a binomial-tree broadcast of ``nbytes``.

        Rank 0's buffer reaches all ``P`` ranks in ``ceil(log2 P)``
        rounds, each forwarding the full payload:
        ``T = ceil(log2 P) (α + nbytes β)`` — the standard tree form
        NCCL uses for small/medium broadcasts.
        """
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if world_size == 1:
            return 0.0
        rounds = (world_size - 1).bit_length()
        return rounds * (self.alpha + nbytes * self.beta)

    def barrier_time(self, world_size: int) -> float:
        """Modeled time of a dissemination barrier over ``P`` ranks.

        ``ceil(log2 P)`` rounds of zero-payload messages:
        ``T = ceil(log2 P) · α`` — the latency-only collective, which is
        why barrier-heavy schedules are α-dominated.
        """
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if world_size == 1:
            return 0.0
        rounds = (world_size - 1).bit_length()
        return rounds * self.alpha

    def allreduce_sequence_time(self, sizes: Sequence[int], world_size: int) -> float:
        """Modeled time of one all-reduce call per buffer in ``sizes``
        (the naive per-parameter strategy)."""
        return sum(self.allreduce_time(s, world_size) for s in sizes)

    def coalesced_time(self, sizes: Sequence[int], world_size: int) -> float:
        """Modeled time of a single all-reduce over the stacked buffer
        (the paper's optimisation)."""
        return self.allreduce_time(sum(sizes), world_size)

    def coalescing_speedup(self, sizes: Sequence[int], world_size: int) -> float:
        """Ratio naive / coalesced (≥ 1 whenever there are ≥ 2 buffers)."""
        coal = self.coalesced_time(sizes, world_size)
        if coal == 0.0:
            return 1.0
        return self.allreduce_sequence_time(sizes, world_size) / coal


#: The paper's interconnect: NVLink 3.0, 100 GB/s unidirectional.
NVLINK_A100 = CommCostModel(alpha=10e-6, beta=1.0 / 100e9)
