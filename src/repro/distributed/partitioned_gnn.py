"""1-D vertex-partitioned full-graph message passing.

The paper's group (CAGNET) scales *full-graph* GNN work by partitioning
the adjacency across ranks; the minibatch pipeline of this paper is the
alternative.  This module implements the 1-D scheme for the Interaction
GNN so the repository can quantify the comparison:

* vertices are block-partitioned: rank ``r`` owns rows
  ``[cuts[r], cuts[r+1])`` of ``X`` and every edge whose *source* vertex
  it owns;
* the message step needs ``X[cols]`` for destination endpoints that live
  on other ranks — the **halo exchange**: each rank requests the remote
  rows its edges touch, and the per-rank sent bytes are accounted;
* the aggregation of ``M_dst`` (messages grouped by destination) produces
  partial sums for remote vertices, which are pushed back to their owners
  — the reverse halo.

The forward result is bit-comparable to the single-rank IGNN (the tests
check exact agreement), and :class:`HaloStats` feeds the α–β model to
price a full-graph distributed epoch against the minibatch pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..graph import EventGraph
from ..models import InteractionGNN
from ..tensor import Tensor, no_grad, ops
from ..tensor.kernels import scatter_add_rows
from .costmodel import CommCostModel, NVLINK_A100

__all__ = ["HaloStats", "VertexPartition", "PartitionedIGNNForward"]


@dataclass
class HaloStats:
    """Communication accounting of one partitioned forward pass."""

    halo_rows_pulled: int = 0      # remote X rows fetched (gather side)
    partial_rows_pushed: int = 0   # remote partial aggregates returned
    bytes_total: int = 0
    exchanges: int = 0

    def modeled_seconds(
        self, world_size: int, model: CommCostModel = NVLINK_A100
    ) -> float:
        """Price the halo traffic as `exchanges` collectives of the mean
        size (all-to-all ≈ all-reduce of equal volume in the α–β model)."""
        if self.exchanges == 0 or world_size <= 1:
            return 0.0
        per = self.bytes_total / self.exchanges
        return sum(
            model.allreduce_time(int(per), world_size) for _ in range(self.exchanges)
        )


@dataclass(frozen=True)
class VertexPartition:
    """Block partition of a graph's vertices across ``world_size`` ranks."""

    cuts: Tuple[int, ...]  # length world_size + 1, cuts[0]=0, cuts[-1]=n

    @staticmethod
    def balanced(num_nodes: int, world_size: int) -> "VertexPartition":
        """Equal-sized contiguous blocks (±1)."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        cuts = np.linspace(0, num_nodes, world_size + 1).astype(np.int64)
        return VertexPartition(cuts=tuple(int(c) for c in cuts))

    @property
    def world_size(self) -> int:
        return len(self.cuts) - 1

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning rank per vertex id."""
        return np.searchsorted(np.asarray(self.cuts[1:]), vertices, side="right")

    def rows_of(self, rank: int) -> Tuple[int, int]:
        return self.cuts[rank], self.cuts[rank + 1]


class PartitionedIGNNForward:
    """Run an IGNN forward pass under 1-D vertex partitioning.

    The computation is executed rank by rank in-process (as with the DDP
    simulation) with explicit halo gathers/pushes, so the communication
    *volume* is the real one while the wall-clock is serial.

    Parameters
    ----------
    model:
        A (trained) :class:`repro.models.InteractionGNN`.
    partition:
        Vertex ownership.
    """

    def __init__(self, model: InteractionGNN, partition: VertexPartition) -> None:
        self.model = model
        self.partition = partition
        self.stats = HaloStats()

    # ------------------------------------------------------------------
    def forward(self, graph: EventGraph) -> np.ndarray:
        """Distributed inference: returns the ``(m,)`` edge logits.

        Edges are owned by the rank owning their source vertex; logits are
        assembled in the parent edge order.
        """
        model = self.model
        part = self.partition
        world = part.world_size
        n = graph.num_nodes
        rows, cols = graph.rows, graph.cols
        owner_edge = part.owner_of(rows)

        with no_grad():
            # encoders are pointwise: each rank encodes its own rows; we
            # evaluate them once globally (identical math).
            x_state = model.node_encoder(Tensor(graph.x)).numpy()
            y_state = model.edge_encoder(Tensor(graph.y)).numpy()
            x0, y0 = x_state.copy(), y_state.copy()

            for l in range(model.config.num_layers):
                layer = getattr(model, f"layer{l}")
                x_res = np.concatenate([x_state, x0], axis=1)
                y_res = np.concatenate([y_state, y0], axis=1)

                new_y = np.empty((graph.num_edges, model.config.hidden), dtype=np.float32)
                m_src = np.zeros((n, model.config.hidden), dtype=np.float32)
                m_dst = np.zeros((n, model.config.hidden), dtype=np.float32)

                for rank in range(world):
                    mask = owner_edge == rank
                    if not mask.any():
                        continue
                    e_rows = rows[mask]
                    e_cols = cols[mask]
                    lo, hi = part.rows_of(rank)

                    # --- halo gather: destination rows on other ranks
                    remote = np.unique(e_cols[(e_cols < lo) | (e_cols >= hi)])
                    self.stats.halo_rows_pulled += int(remote.size)
                    self.stats.bytes_total += int(remote.size) * x_res.shape[1] * 4
                    self.stats.exchanges += 1

                    msg_in = np.concatenate(
                        [y_res[mask], x_res[e_rows], x_res[e_cols]], axis=1
                    )
                    msg = layer.edge_mlp(Tensor(msg_in)).numpy()
                    new_y[mask] = msg

                    # local source aggregation (sources are owned)
                    scatter_add_rows(msg, e_rows, n, out=m_src, accumulate=True)
                    # destination aggregation produces partial sums for
                    # remote vertices → reverse halo push
                    scatter_add_rows(msg, e_cols, n, out=m_dst, accumulate=True)
                    remote_partials = np.unique(e_cols[(e_cols < lo) | (e_cols >= hi)])
                    self.stats.partial_rows_pushed += int(remote_partials.size)
                    self.stats.bytes_total += (
                        int(remote_partials.size) * model.config.hidden * 4
                    )
                    self.stats.exchanges += 1

                upd_in = np.concatenate([m_src, m_dst, x_res], axis=1)
                # vertex update is row-wise: each rank updates its block
                x_state = layer.node_mlp(Tensor(upd_in)).numpy()
                y_state = new_y

            logits = model.output_mlp(Tensor(y_state)).numpy().reshape(-1)
        return logits
