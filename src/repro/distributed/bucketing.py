"""Bucketed gradient synchronisation — the middle ground between the
paper's two strategies.

PyTorch DDP neither reduces one tensor at a time nor one giant buffer: it
packs gradients into fixed-size *buckets* (25 MB by default) so that the
all-reduce of earlier buckets can overlap the backward computation of
later ones.  The paper's coalescing (Section III-D) is the
``bucket_bytes = ∞`` limit; per-parameter is the ``bucket_bytes → 0``
limit.  This module provides the general mechanism plus an overlap-aware
cost model, so the ablation bench can sweep the bucket size and show where
each regime wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..nn import Module
from .coalesce import FlatSpec, flatten_arrays, gradient_arrays, unflatten_array
from .comm import SimCommunicator
from .costmodel import CommCostModel

__all__ = ["Bucket", "partition_buckets", "BucketedSynchronizer", "overlapped_sync_time"]


@dataclass(frozen=True)
class Bucket:
    """A contiguous group of parameter indices reduced in one call."""

    param_indices: Tuple[int, ...]
    nbytes: int


def partition_buckets(sizes_bytes: Sequence[int], bucket_bytes: int) -> List[Bucket]:
    """Greedily pack parameters (in traversal order) into buckets.

    Mirrors PyTorch DDP: parameters are assigned in order; a bucket closes
    once it reaches ``bucket_bytes``.  Every bucket holds at least one
    parameter, so single tensors larger than the cap get their own bucket.
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    buckets: List[Bucket] = []
    current: List[int] = []
    current_bytes = 0
    for i, size in enumerate(sizes_bytes):
        if current and current_bytes + size > bucket_bytes:
            buckets.append(Bucket(tuple(current), current_bytes))
            current, current_bytes = [], 0
        current.append(i)
        current_bytes += size
    if current:
        buckets.append(Bucket(tuple(current), current_bytes))
    return buckets


class BucketedSynchronizer:
    """Gradient sync in fixed-size buckets across simulated ranks.

    Functionally identical to the coalesced strategy (same averaged
    gradients — the tests check this); differs only in how many collective
    calls are issued, which is what the cost model prices.
    """

    def __init__(
        self,
        models: Sequence[Module],
        comm: SimCommunicator,
        bucket_bytes: int = 25 * 1024 * 1024,
    ) -> None:
        if len(models) != comm.world_size:
            raise ValueError(
                f"{len(models)} replicas for a world of {comm.world_size}"
            )
        self.models = list(models)
        self.comm = comm
        sizes = [p.size * 4 for p in self.models[0].parameters()]
        self.buckets = partition_buckets(sizes, bucket_bytes)

    def synchronize_gradients(self) -> None:
        """Average gradients bucket by bucket."""
        grads_per_rank = [gradient_arrays(m) for m in self.models]
        params_per_rank = [list(m.parameters()) for m in self.models]
        for bucket in self.buckets:
            flats = []
            specs = None
            for rank in range(self.comm.world_size):
                arrays = [grads_per_rank[rank][i] for i in bucket.param_indices]
                flat, specs = flatten_arrays(arrays)
                flats.append(flat)
            reduced = self.comm.allreduce(flats, average=True)
            for rank in range(self.comm.world_size):
                for i, g in zip(
                    bucket.param_indices, unflatten_array(reduced[rank], specs)
                ):
                    p = params_per_rank[rank][i]
                    p.grad = g.astype(p.data.dtype, copy=False)


def overlapped_sync_time(
    sizes_bytes: Sequence[int],
    bucket_bytes: int,
    world_size: int,
    backward_seconds: float,
    model: CommCostModel,
) -> float:
    """Modeled gradient-sync *exposed* time with compute overlap.

    Buckets become ready as backward proceeds (modeled as uniformly spread
    over ``backward_seconds``, last bucket first — gradients arrive in
    reverse parameter order).  Each bucket's all-reduce starts when both
    the bucket is ready and the previous all-reduce finished; the exposed
    communication time is how far the final all-reduce finishes *after*
    backward ends.

    This is the quantity PyTorch's bucketing optimises: one giant bucket
    cannot start until backward completes (zero overlap), tiny buckets pay
    α per call; the sweet spot sits in between.
    """
    buckets = partition_buckets(sizes_bytes, bucket_bytes)
    k = len(buckets)
    clock = 0.0
    for j, bucket in enumerate(buckets):
        ready = backward_seconds * (j + 1) / k
        start = max(ready, clock)
        clock = start + model.allreduce_time(bucket.nbytes, world_size)
    return max(0.0, clock - backward_seconds)
