"""Ring all-reduce over simulated ranks.

A faithful implementation of the NCCL-style ring algorithm: each rank's
buffer is split into ``P`` chunks; ``P-1`` reduce-scatter steps circulate
and accumulate chunks around the ring, then ``P-1`` all-gather steps
circulate the finished chunks.  The per-rank buffers live in one process
(there is no GPU fabric here), but every send/receive is performed
explicitly so the algorithm — and its step/byte counts, which feed the
α–β cost model — is the real one, not a shortcut ``np.sum``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["RingAllReduceStats", "ring_allreduce"]


@dataclass
class RingAllReduceStats:
    """Byte/step accounting of one ring all-reduce."""

    world_size: int = 0
    steps: int = 0
    bytes_sent_per_rank: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent_per_rank * self.world_size


def ring_allreduce(
    buffers: Sequence[np.ndarray],
    average: bool = False,
    stats: RingAllReduceStats | None = None,
) -> List[np.ndarray]:
    """All-reduce ``buffers`` (one per rank) with the ring algorithm.

    Parameters
    ----------
    buffers:
        One equally-shaped float array per rank.  Inputs are not modified.
    average:
        Divide the result by the rank count (DDP averages gradients).
    stats:
        Optional accounting sink.

    Returns
    -------
    list of np.ndarray
        The reduced (identical) buffer per rank.
    """
    p = len(buffers)
    if p == 0:
        raise ValueError("need at least one rank")
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise ValueError("all rank buffers must share a shape")
    if p == 1:
        out = buffers[0].astype(np.float64, copy=True)
        if average:
            pass  # /1
        return [out.astype(buffers[0].dtype)]

    # Work in float64 so the ring accumulation order cannot drift from the
    # direct sum beyond normal rounding.
    work = [b.astype(np.float64).reshape(-1).copy() for b in buffers]
    n = work[0].shape[0]
    # chunk boundaries (chunk c = [bounds[c], bounds[c+1]))
    bounds = np.linspace(0, n, p + 1).astype(np.int64)

    def chunk(rank: int, c: int) -> slice:
        c = c % p
        return slice(bounds[c], bounds[c + 1])

    steps = 0
    bytes_per_rank = 0
    # --- reduce-scatter: after step s, rank r has accumulated chunk
    # (r - s) into a running partial sum received from its left neighbour.
    for s in range(p - 1):
        sends = []
        for r in range(p):
            c = (r - s) % p
            sends.append((r, c, work[r][chunk(r, c)].copy()))
        for r, c, payload in sends:
            dst = (r + 1) % p
            work[dst][chunk(dst, c)] += payload
            bytes_per_rank += payload.nbytes
        steps += 1
    # now rank r holds the fully-reduced chunk (r + 1) % p
    # --- all-gather: circulate finished chunks around the ring.
    for s in range(p - 1):
        sends = []
        for r in range(p):
            c = (r + 1 - s) % p
            sends.append((r, c, work[r][chunk(r, c)].copy()))
        for r, c, payload in sends:
            dst = (r + 1) % p
            work[dst][chunk(dst, c)] = payload
            bytes_per_rank += payload.nbytes
        steps += 1

    if stats is not None:
        stats.world_size = p
        stats.steps = steps
        stats.bytes_sent_per_rank = bytes_per_rank // p  # per-rank average

    scale = 1.0 / p if average else 1.0
    dtype = buffers[0].dtype
    return [(w * scale).reshape(shape).astype(dtype) for w in work]
