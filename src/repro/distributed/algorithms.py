"""Alternative all-reduce algorithms and their cost models.

NCCL picks between algorithms (ring, tree, ...) by message size and
topology; the paper's coalescing optimisation changes *which regime* the
gradient messages fall into, so the algorithm ablation bench compares the
regimes under each algorithm:

* **ring** (:mod:`repro.distributed.ring`) — bandwidth-optimal,
  latency 2(P-1)α;
* **recursive halving–doubling** — a reduce-scatter by recursive halving
  followed by an all-gather by recursive doubling; latency 2 log₂P α,
  bandwidth-optimal for power-of-two rank counts;
* **binary tree** — reduce up a tree then broadcast down; latency
  2 log₂P α but bandwidth 2 n β log₂P-ish for small trees (modeled here
  with the standard 2 log₂P (α + n β) form).

All implementations operate on one buffer per simulated rank and are
verified against the direct sum in the property tests.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

__all__ = [
    "halving_doubling_allreduce",
    "tree_allreduce",
    "halving_doubling_time",
    "tree_time",
    "ALLREDUCE_ALGORITHMS",
]


def _validate(buffers: Sequence[np.ndarray]) -> int:
    p = len(buffers)
    if p == 0:
        raise ValueError("need at least one rank")
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise ValueError("all rank buffers must share a shape")
    return p


def halving_doubling_allreduce(
    buffers: Sequence[np.ndarray], average: bool = False
) -> List[np.ndarray]:
    """Recursive halving–doubling all-reduce.

    Requires a power-of-two rank count (as the classical algorithm does;
    NCCL pads otherwise).  Works in float64 internally.
    """
    p = _validate(buffers)
    if p & (p - 1):
        raise ValueError(f"halving-doubling requires power-of-two ranks, got {p}")
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    work = [b.astype(np.float64).reshape(-1).copy() for b in buffers]
    n = work[0].shape[0]

    # reduce-scatter by recursive halving: at step s, partner is r ^ 2^s
    # and each pair exchanges half of its currently-owned range.
    ranges = [(0, n)] * p
    step = 1
    while step < p:
        new_work = [w.copy() for w in work]
        new_ranges = list(ranges)
        for r in range(p):
            partner = r ^ step
            lo, hi = ranges[r]
            mid = (lo + hi) // 2
            if r < partner:
                keep = (lo, mid)
                send = (mid, hi)
            else:
                keep = (mid, hi)
                send = (lo, mid)
            # receive the partner's contribution for our kept half
            klo, khi = keep
            new_work[r][klo:khi] = work[r][klo:khi] + work[partner][klo:khi]
            new_ranges[r] = keep
        work, ranges = new_work, new_ranges
        step *= 2

    # all-gather by recursive doubling: reverse the exchange pattern.
    step = p // 2
    while step >= 1:
        new_work = [w.copy() for w in work]
        new_ranges = list(ranges)
        for r in range(p):
            partner = r ^ step
            plo, phi = ranges[partner]
            new_work[r][plo:phi] = work[partner][plo:phi]
            lo, hi = ranges[r]
            new_ranges[r] = (min(lo, plo), max(hi, phi))
        work, ranges = new_work, new_ranges
        step //= 2

    scale = 1.0 / p if average else 1.0
    return [(w * scale).reshape(shape).astype(dtype) for w in work]


def tree_allreduce(
    buffers: Sequence[np.ndarray], average: bool = False
) -> List[np.ndarray]:
    """Binary-tree all-reduce: reduce to rank 0 up a binomial tree, then
    broadcast back down.  Works for any rank count."""
    p = _validate(buffers)
    shape = buffers[0].shape
    dtype = buffers[0].dtype
    work = [b.astype(np.float64).reshape(-1).copy() for b in buffers]

    # reduce up: at step s, ranks with (r % 2^{s+1}) == 2^s send to r - 2^s
    step = 1
    while step < p:
        for r in range(0, p, 2 * step):
            src = r + step
            if src < p:
                work[r] += work[src]
        step *= 2
    # broadcast down
    step //= 2
    while step >= 1:
        for r in range(0, p, 2 * step):
            dst = r + step
            if dst < p:
                work[dst][:] = work[r]
        step //= 2

    scale = 1.0 / p if average else 1.0
    return [(w * scale).reshape(shape).astype(dtype) for w in work]


def halving_doubling_time(nbytes: int, world_size: int, alpha: float, beta: float) -> float:
    """α–β model: 2 log₂P α + 2 (P-1)/P n β (bandwidth-optimal)."""
    if world_size <= 1:
        return 0.0
    logp = math.log2(world_size)
    return 2.0 * logp * alpha + 2.0 * (world_size - 1) / world_size * nbytes * beta


def tree_time(nbytes: int, world_size: int, alpha: float, beta: float) -> float:
    """α–β model: 2 log₂P (α + n β) — the full buffer moves at each level."""
    if world_size <= 1:
        return 0.0
    logp = math.ceil(math.log2(world_size))
    return 2.0 * logp * (alpha + nbytes * beta)


ALLREDUCE_ALGORITHMS = ("ring", "halving_doubling", "tree")
