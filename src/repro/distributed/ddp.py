"""Distributed data parallelism over simulated ranks.

Each simulated rank holds a full model replica; a batch is split into
``P`` shards (Section IV-C: local batch size 256/P), every rank runs
forward/backward on its shard, and gradients are synchronised with an
all-reduce before the (identical) optimiser step.  Two synchronisation
strategies are provided:

* ``"per_parameter"`` — one all-reduce call per parameter matrix (the
  baseline whose latency the paper attacks);
* ``"coalesced"`` — gradients stacked into a single flat buffer, one
  all-reduce per step (Section III-D).

Because the ranks run in one process, wall-clock here measures algorithmic
work; communication *time* comes from the α–β cost model accumulated in
the communicator's stats.  Gradient math is bit-comparable to true DDP:
the property tests check that P-rank training equals single-rank training
on the union batch.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..faults import CommError, RetryPolicy, SimClock
from ..nn import Module
from ..obs import get_tracer
from .backend import CommBackend
from .coalesce import flatten_arrays, gradient_arrays, unflatten_array
from .supervisor import record_supervisor_event

__all__ = ["DistributedDataParallel", "replicate_model"]

_STRATEGIES = ("per_parameter", "coalesced")


def replicate_model(factory: Callable[[], Module], world_size: int) -> List[Module]:
    """Build ``world_size`` identical replicas.

    The factory must be deterministic (seeded); replica 0's weights are
    broadcast over the others to guarantee bit-identical starting points
    even if the factory were not.
    """
    models = [factory() for _ in range(world_size)]
    reference = models[0].state_dict()
    for m in models[1:]:
        m.load_state_dict(reference)
    return models


class DistributedDataParallel:
    """Gradient synchronisation across model replicas.

    Parameters
    ----------
    models:
        One replica per rank, identically initialised.
    comm:
        Any :class:`~repro.distributed.backend.CommBackend` — the
        in-process simulator or the multi-process ``proc`` backend
        (both accumulate call/byte/modeled-time stats).
    strategy:
        ``"coalesced"`` (default, the paper's optimisation) or
        ``"per_parameter"`` (the baseline).
    retry_policy:
        Backoff schedule for *transient* collective faults
        (:class:`repro.faults.CommError` with ``transient=True``).
        Retries run on a deterministic simulated clock; exhaustion
        re-raises the original error.
    clock:
        Simulated clock charged by retry backoff (defaults to a fresh
        :class:`repro.faults.SimClock`).

    Fault tolerance: a *permanent* rank failure during a collective
    triggers **elastic degradation** — the dead rank's replica is
    dropped, the communicator shrinks to the survivors, the gradient
    average rescales to the new world size, and the synchronisation is
    retried over the survivors.  :attr:`global_ranks` preserves the
    original rank ids of the live replicas.
    """

    def __init__(
        self,
        models: Sequence[Module],
        comm: CommBackend,
        strategy: str = "coalesced",
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        if len(models) != comm.world_size:
            raise ValueError(
                f"{len(models)} replicas for a world of {comm.world_size}"
            )
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        names = [tuple(name for name, _ in m.named_parameters()) for m in models]
        if any(n != names[0] for n in names[1:]):
            raise ValueError("replicas disagree on parameter names/order")
        self.models = list(models)
        self.comm = comm
        self.strategy = strategy
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else SimClock()
        self.global_ranks: List[int] = list(comm.ranks)

    @property
    def world_size(self) -> int:
        """Number of *live* replicas."""
        return self.comm.world_size

    # ------------------------------------------------------------------
    def synchronize_gradients(self) -> None:
        """Average gradients across live ranks, in place.

        After this call every surviving replica's ``param.grad`` holds
        the mean gradient over the survivors, exactly as after
        ``torch.nn.parallel.DDP`` backward.  Transient collective faults
        are retried with backoff; a permanent rank failure evicts the
        rank (see :meth:`drop_rank`) and re-synchronises the survivors.
        """
        retries_left = self.retry_policy.max_retries
        stale_budget = len(self.global_ranks)
        need_resync = False
        while True:
            try:
                if need_resync:
                    self._resync_parameters()
                    need_resync = False
                self._sync_once()
                return
            except CommError as err:
                if err.transient:
                    if retries_left <= 0:
                        raise  # budget exhausted: surface the original fault
                    retry_index = self.retry_policy.max_retries - retries_left
                    delay = self.retry_policy.delay(retry_index)
                    self.clock.sleep(delay)
                    self.comm.stats.num_retries += 1
                    self.comm.stats.retry_backoff_seconds += delay
                    get_tracer().event(
                        "comm.retry",
                        category="fault",
                        rank=err.rank,
                        retry_index=retry_index,
                        backoff_s=delay,
                    )
                    retries_left -= 1
                elif (
                    err.rank is not None and err.rank not in self.global_ranks
                ):
                    # A permanent failure naming an already-evicted rank: a
                    # stale/duplicate report (e.g. a late failure detection
                    # for a rank a previous collective dropped).  The rank
                    # is already gone, so the failure is already handled —
                    # re-evicting would crash on remove_rank.  A small
                    # budget guards against a reporter wedged on the same
                    # stale rank forever.
                    if stale_budget <= 0:
                        raise
                    stale_budget -= 1
                    self.comm.stats.record_event(
                        f"ignoring stale failure report for already-evicted "
                        f"rank {err.rank}"
                    )
                    get_tracer().event(
                        "comm.stale_failure_ignored",
                        category="fault",
                        rank=err.rank,
                    )
                    retries_left = self.retry_policy.max_retries
                else:
                    failed = err.rank if err.rank is not None else self.global_ranks[-1]
                    self.drop_rank(failed)
                    get_tracer().event(
                        "comm.rank_evicted",
                        category="fault",
                        rank=failed,
                        survivors=len(self.global_ranks),
                    )
                    retries_left = self.retry_policy.max_retries
                    need_resync = getattr(self.comm, "requires_resync", False)

    def _sync_once(self) -> None:
        if self.strategy == "coalesced":
            self._sync_coalesced()
        else:
            self._sync_per_parameter()

    def _resync_parameters(self) -> None:
        """Re-align survivor replicas after an eviction (proc backend).

        On a real multi-process backend an eviction interrupts a
        collective mid-flight, so the supervisor re-establishes a known
        state by broadcasting the lowest live rank's parameters to every
        survivor.  Replicas are identical before the failed collective
        (they only drift *within* one), so the broadcast is numerically
        a no-op — which is what keeps a proc-backend chaos run bit-exact
        with its sim-backend eviction replay.
        """
        source = self.models[0]
        arrays = [p.data for _, p in source.named_parameters()]
        if not arrays:
            return
        # float64 wire format: exact for float64 *and* float32 parameters
        # (unlike the float32 gradient-coalescing layout)
        flat = np.concatenate([a.reshape(-1).astype(np.float64) for a in arrays])
        synced = self.comm.broadcast(flat)
        for m, vec in zip(self.models, synced):
            offset = 0
            for _, p in m.named_parameters():
                size = p.data.size
                chunk = vec[offset : offset + size]
                p.data[...] = chunk.reshape(p.data.shape).astype(
                    p.data.dtype, copy=False
                )
                offset += size
        get_tracer().event(
            "comm.resync",
            category="fault",
            root=self.global_ranks[0],
            survivors=len(self.global_ranks),
        )
        record_supervisor_event(
            "resync_broadcast",
            root=self.global_ranks[0],
            survivors=len(self.global_ranks),
        )

    # ------------------------------------------------------------------
    def drop_rank(self, global_rank: int) -> Module:
        """Evict a permanently failed rank; returns the dead replica.

        The communicator shrinks to the survivors and subsequent
        all-reduces divide by the new world size — the elastic
        degradation path of a production job losing a node mid-run.
        """
        index = self.comm.remove_rank(global_rank)
        self.global_ranks.pop(index)
        return self.models.pop(index)

    def _sync_per_parameter(self) -> None:
        params_per_rank = [list(m.parameters()) for m in self.models]
        num_params = len(params_per_rank[0])
        for i in range(num_params):
            buffers = []
            for rank in range(self.world_size):
                p = params_per_rank[rank][i]
                buffers.append(
                    p.grad if p.grad is not None else np.zeros_like(p.data)
                )
            reduced = self.comm.allreduce(buffers, average=True)
            for rank in range(self.world_size):
                params_per_rank[rank][i].grad = reduced[rank]

    def _sync_coalesced(self) -> None:
        flats = []
        specs = None
        for m in self.models:
            flat, specs = flatten_arrays(gradient_arrays(m))
            flats.append(flat)
        reduced = self.comm.allreduce(flats, average=True)
        for m, flat in zip(self.models, reduced):
            grads = unflatten_array(flat, specs)
            for (_, p), g in zip(m.named_parameters(), grads):
                p.grad = g.astype(p.data.dtype, copy=False)

    # ------------------------------------------------------------------
    def assert_in_sync(self, atol: float = 0.0) -> None:
        """Raise if replicas' weights have drifted apart (test helper)."""
        reference = self.models[0].state_dict()
        for rank, m in enumerate(self.models[1:], start=1):
            for name, arr in m.state_dict().items():
                if not np.allclose(arr, reference[name], atol=atol, rtol=0.0):
                    raise AssertionError(
                        f"rank {rank} parameter {name!r} diverged from rank 0"
                    )
