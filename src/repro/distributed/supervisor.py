"""Worker supervision for the multi-process comm backend.

The ``proc`` backend (:mod:`repro.distributed.proc_backend`) runs one
worker process per rank; this module owns everything about *keeping those
processes honest*:

* :class:`ControlBlock` — a small ``shared_memory`` segment mapping the
  coordination state every participant needs: per-rank heartbeat
  timestamps, barrier arrival counters, the live-rank mask, the abort
  generation (bumped by the driver to cancel an in-flight collective),
  the membership epoch (bumped on eviction), and per-rank injected-delay
  slots for the ``slow`` chaos fault.
* :class:`HeartbeatMonitor` — the deadline-based failure detector: a
  rank whose heartbeat is older than ``deadline`` seconds is declared
  dead (covers SIGKILL *and* SIGSTOP/wedged processes, which keep their
  process object alive but stop beating).
* :class:`WorkerHandle` / :class:`Supervisor` — spawn, message, abort,
  drain, kill, and gracefully shut down the worker fleet.  The
  supervisor classifies collective failures into the typed errors the
  DDP layer understands: :class:`repro.faults.RankDeadError` (permanent
  → elastic eviction) vs :class:`repro.faults.CommTimeoutError`
  (transient → retry with backoff).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..faults import CommTimeoutError, RankDeadError
from ..obs import get_telemetry, get_tracer

__all__ = [
    "ControlBlock",
    "HeartbeatMonitor",
    "WorkerHandle",
    "Supervisor",
    "attach_shared_memory",
    "record_supervisor_event",
]

#: Indices into :attr:`ControlBlock.flags`.
FLAG_ABORT = 0
FLAG_EPOCH = 1


def record_supervisor_event(name: str, **attrs: Any) -> None:
    """Emit a supervision event into the installed telemetry (if any).

    Every failure-detector decision (stale heartbeat, rank death,
    collective timeout, abort/drain, eviction, resync broadcast) lands
    twice: as an instantaneous tracer event named
    ``comm.supervisor.<name>`` — visible at the exact timestamp in the
    merged trace next to the per-rank lanes — and as a
    ``comm.supervisor.<name>`` counter, so live ``/metrics`` scrapes and
    post-run snapshots can alert on supervision activity.  No-op when
    telemetry is not installed.
    """
    get_tracer().event(f"comm.supervisor.{name}", category="supervisor", **attrs)
    telemetry = get_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter(f"comm.supervisor.{name}").add(1)


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* resource-tracker tracking.

    Workers only ever attach to segments the driver created and will
    unlink.  Letting the worker's resource tracker register them too
    triggers spurious "leaked shared_memory" cleanup at exit (bpo-38119);
    Python 3.13 added ``track=False`` for exactly this, which we use when
    available and emulate otherwise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class ControlBlock:
    """Shared coordination state for ``world0`` ranks.

    Layout (all 8-byte aligned, fixed at creation):

    ========== ======== =======================================================
    field      dtype    meaning
    ========== ======== =======================================================
    heartbeats float64  per-rank ``time.monotonic()`` of the last beat
    slow       float64  per-rank injected pre-collective delay [s] (chaos)
    arrive     int64    per-rank highest barrier sequence reached (monotonic)
    live       int64    per-rank liveness mask (1 = live, 0 = evicted)
    flags      int64[2] ``[abort generation, membership epoch]``
    ========== ======== =======================================================

    Plain aligned 8-byte loads/stores are used for cross-process
    signalling; barrier waits poll ``arrive`` with a deadline rather than
    blocking on OS primitives, so an abort or a dead neighbour can never
    wedge a survivor forever.
    """

    def __init__(self, shm: shared_memory.SharedMemory, world0: int, owner: bool):
        self._shm = shm
        self._owner = owner
        self.world0 = world0
        self.name = shm.name
        p = world0
        self.heartbeats = np.ndarray((p,), dtype=np.float64, buffer=shm.buf, offset=0)
        self.slow = np.ndarray((p,), dtype=np.float64, buffer=shm.buf, offset=8 * p)
        self.arrive = np.ndarray((p,), dtype=np.int64, buffer=shm.buf, offset=16 * p)
        self.live = np.ndarray((p,), dtype=np.int64, buffer=shm.buf, offset=24 * p)
        self.flags = np.ndarray((2,), dtype=np.int64, buffer=shm.buf, offset=32 * p)

    @classmethod
    def nbytes(cls, world0: int) -> int:
        return 8 * (4 * world0 + 2)

    @classmethod
    def create(cls, world0: int) -> "ControlBlock":
        shm = shared_memory.SharedMemory(create=True, size=cls.nbytes(world0))
        block = cls(shm, world0, owner=True)
        now = time.monotonic()
        block.heartbeats[:] = now  # freshly spawned ranks are not stale
        block.slow[:] = 0.0
        block.arrive[:] = 0
        block.live[:] = 1
        block.flags[:] = 0
        return block

    @classmethod
    def attach(cls, name: str, world0: int) -> "ControlBlock":
        return cls(attach_shared_memory(name), world0, owner=False)

    # ------------------------------------------------------------------
    def beat(self, rank: int) -> None:
        self.heartbeats[rank] = time.monotonic()

    def bump_abort(self) -> int:
        self.flags[FLAG_ABORT] += 1
        return int(self.flags[FLAG_ABORT])

    @property
    def abort_generation(self) -> int:
        return int(self.flags[FLAG_ABORT])

    def bump_epoch(self) -> int:
        """Advance the membership epoch (called on every eviction)."""
        self.flags[FLAG_EPOCH] += 1
        return int(self.flags[FLAG_EPOCH])

    @property
    def epoch(self) -> int:
        return int(self.flags[FLAG_EPOCH])

    def close(self) -> None:
        # numpy views hold pointers into shm.buf; release them before
        # closing or SharedMemory.close() raises BufferError
        self.heartbeats = self.slow = self.arrive = self.live = self.flags = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass
class HeartbeatMonitor:
    """Deadline-based failure detector over the control block."""

    control: ControlBlock
    deadline: float

    def is_stale(self, rank: int, now: Optional[float] = None) -> bool:
        if now is None:
            now = time.monotonic()
        return (now - float(self.control.heartbeats[rank])) > self.deadline

    def stale_ranks(self, ranks: Iterable[int]) -> List[int]:
        now = time.monotonic()
        return [r for r in ranks if self.is_stale(r, now)]


@dataclass
class WorkerHandle:
    """One rank's worker process plus its command pipe."""

    rank: int
    process: Any  # multiprocessing.Process (context-specific class)
    conn: Any  # multiprocessing.connection.Connection

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()


class Supervisor:
    """Spawns and polices the per-rank worker fleet.

    The supervisor is deliberately mechanism-only: *when* to abort or
    evict is the communicator/DDP layer's decision; the supervisor
    detects failures, classifies them, and executes process-level actions
    (abort, drain, kill, graceful shutdown).
    """

    def __init__(
        self,
        control: ControlBlock,
        heartbeat_deadline: float,
        poll_interval: float = 0.005,
    ) -> None:
        self.control = control
        self.monitor = HeartbeatMonitor(control, heartbeat_deadline)
        self.poll_interval = poll_interval
        self.handles: Dict[int, WorkerHandle] = {}

    # -- lifecycle -----------------------------------------------------
    def spawn(self, ctx, target, ranks: Sequence[int], extra_args: tuple) -> None:
        """Start one worker per rank: ``target(rank, conn, *extra_args)``."""
        for rank in ranks:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=target,
                args=(rank, child_conn) + tuple(extra_args),
                daemon=True,
                name=f"repro-comm-rank{rank}",
            )
            proc.start()
            child_conn.close()
            self.handles[rank] = WorkerHandle(rank=rank, process=proc, conn=parent_conn)

    def wait_ready(self, ranks: Sequence[int], timeout: float) -> None:
        """Block until every worker has attached and reported ready."""
        deadline = time.monotonic() + timeout
        for rank in ranks:
            handle = self.handles[rank]
            remaining = max(deadline - time.monotonic(), 0.0)
            if not handle.conn.poll(remaining):
                raise RankDeadError(
                    f"rank {rank} worker did not come up within {timeout}s",
                    rank=rank,
                )
            msg = handle.conn.recv()
            if msg.get("status") != "ready":  # pragma: no cover - defensive
                raise RankDeadError(
                    f"rank {rank} worker failed during startup: {msg}", rank=rank
                )

    # -- messaging -----------------------------------------------------
    def send(self, rank: int, message: dict) -> None:
        """Send a command; a broken pipe means the worker is already gone."""
        try:
            self.handles[rank].conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            record_supervisor_event("rank_death", rank=rank, cause="pipe_broken")
            raise RankDeadError(
                f"rank {rank} worker is gone (command pipe broken)", rank=rank
            ) from exc

    def gather(self, seq: int, ranks: Sequence[int], timeout: float) -> None:
        """Wait for every rank's ``ok`` response to collective ``seq``.

        Raises :class:`RankDeadError` as soon as a pending rank's process
        exits or its heartbeat goes stale past the deadline, and
        :class:`CommTimeoutError` when the collective overruns ``timeout``
        with all participants still apparently alive.  Responses from
        earlier (aborted) collectives are drained and discarded.
        """
        from multiprocessing.connection import wait as conn_wait

        pending = set(ranks)
        deadline = time.monotonic() + timeout
        while pending:
            conn_by_obj = {}
            objects = []
            for rank in pending:
                handle = self.handles[rank]
                conn_by_obj[handle.conn] = rank
                conn_by_obj[handle.process.sentinel] = rank
                objects.append(handle.conn)
                objects.append(handle.process.sentinel)
            ready = conn_wait(objects, timeout=self.poll_interval)
            for obj in ready:
                rank = conn_by_obj[obj]
                if rank not in pending:
                    continue
                handle = self.handles[rank]
                if obj is handle.conn:
                    try:
                        msg = handle.conn.recv()
                    except (EOFError, OSError):
                        record_supervisor_event("rank_death", rank=rank, seq=seq,
                                                cause="pipe_eof")
                        raise RankDeadError(
                            f"rank {rank} worker closed its pipe mid-collective",
                            rank=rank,
                        )
                    if msg.get("seq") != seq:
                        continue  # stale response from an aborted collective
                    status = msg.get("status")
                    if status == "ok":
                        pending.discard(rank)
                    elif status == "aborted":
                        # the worker's own barrier deadline expired —
                        # usually because a neighbour stopped participating.
                        # Blame a dead/stale rank when there is one, else
                        # report a (transient) timeout.
                        dead = [r for r in ranks if not self.handles[r].is_alive()]
                        stale = self.monitor.stale_ranks(
                            r for r in ranks if r != rank
                        )
                        culprit = (dead or stale or [None])[0]
                        if culprit is not None:
                            record_supervisor_event(
                                "rank_death", rank=culprit, seq=seq,
                                cause="dead_process" if dead else "stale_heartbeat",
                            )
                            raise RankDeadError(
                                f"rank {culprit} stopped participating in "
                                f"collective {seq} (rank {rank} aborted its "
                                "barrier wait)",
                                rank=culprit,
                            )
                        record_supervisor_event(
                            "collective_timeout", rank=rank, seq=seq,
                            cause="worker_barrier_deadline",
                        )
                        raise CommTimeoutError(
                            f"rank {rank} aborted collective {seq} after its "
                            "barrier deadline",
                            rank=rank,
                        )
                    else:
                        record_supervisor_event("rank_death", rank=rank, seq=seq,
                                                cause="worker_error")
                        raise RankDeadError(
                            f"rank {rank} worker failed in collective {seq}: "
                            f"{msg.get('error', status)}",
                            rank=rank,
                        )
                else:  # sentinel: the process exited
                    record_supervisor_event("rank_death", rank=rank, seq=seq,
                                            cause="process_exit")
                    raise RankDeadError(
                        f"rank {rank} worker process died mid-collective "
                        f"(exitcode {handle.process.exitcode})",
                        rank=rank,
                    )
            stale = self.monitor.stale_ranks(pending)
            if stale:
                record_supervisor_event("stale_heartbeat", rank=stale[0], seq=seq)
                raise RankDeadError(
                    f"rank {stale[0]} heartbeat silent for more than "
                    f"{self.monitor.deadline}s (hung or wedged worker)",
                    rank=stale[0],
                )
            if time.monotonic() > deadline:
                slowest = min(pending)
                record_supervisor_event(
                    "collective_timeout", rank=slowest, seq=seq,
                    cause="driver_deadline",
                )
                raise CommTimeoutError(
                    f"collective {seq} timed out after {timeout}s waiting on "
                    f"rank(s) {sorted(pending)}",
                    rank=slowest,
                )

    # -- failure handling ----------------------------------------------
    def abort_and_drain(
        self, seq: int, ranks: Sequence[int], exclude: Sequence[int], timeout: float
    ) -> None:
        """Cancel an in-flight collective and wait for survivors to bail.

        Bumps the abort generation (waking workers parked in barrier
        loops), then collects one response per surviving rank so no
        worker is still touching its buffers when the caller retries.
        Ranks in ``exclude`` (the dead) are not waited for.
        """
        record_supervisor_event(
            "abort_drain", seq=seq, excluded=list(exclude)
        )
        self.control.bump_abort()
        deadline = time.monotonic() + timeout
        for rank in ranks:
            if rank in exclude:
                continue
            handle = self.handles[rank]
            while time.monotonic() < deadline:
                if handle.conn.poll(self.poll_interval):
                    try:
                        msg = handle.conn.recv()
                    except (EOFError, OSError):
                        break  # died while draining; eviction will follow
                    if msg.get("seq") == seq:
                        break  # ok or aborted — either way it is out
                elif not handle.is_alive():
                    break

    def kill(self, rank: int) -> None:
        """Forcibly terminate a rank's worker (idempotent).

        SIGKILL rather than terminate(): the target may be SIGSTOPped
        (the ``hang`` chaos fault), and only SIGKILL removes a stopped
        process.
        """
        handle = self.handles.get(rank)
        if handle is None:
            return
        if handle.process.pid is not None and handle.is_alive():
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass
        handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def shutdown(self, ranks: Sequence[int], timeout: float = 5.0) -> None:
        """Graceful drain: ask workers to exit, escalate to SIGKILL."""
        for rank in ranks:
            handle = self.handles.get(rank)
            if handle is None or not handle.is_alive():
                continue
            try:
                handle.conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for rank in ranks:
            handle = self.handles.get(rank)
            if handle is None:
                continue
            handle.process.join(timeout=max(deadline - time.monotonic(), 0.1))
        for rank in ranks:
            self.kill(rank)
