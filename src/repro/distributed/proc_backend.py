"""Real multi-process communication backend (``--backend proc``).

One ``multiprocessing`` worker per rank executes the *same* ring
all-reduce schedule as :func:`repro.distributed.ring.ring_allreduce`,
but over ``shared_memory`` segments with genuine inter-process barriers
— so collectives run under true parallelism, with real wall-clock, real
crashes, and real stragglers.  The backend is deliberately **bit-exact**
with the in-process simulator: chunk boundaries, accumulation order, and
the float64 working precision are identical, so a seeded ``proc`` run
reproduces a ``sim`` run to the last bit (the elastic-recovery
validation in ``scripts/validate_elastic.py`` depends on this).

Crash tolerance
---------------
The driver never blocks indefinitely on a worker: every collective has a
deadline, every worker beats a heartbeat slot in the shared
:class:`~repro.distributed.supervisor.ControlBlock`, and the
:class:`~repro.distributed.supervisor.Supervisor` classifies failures:

* worker process exited (SIGKILL, crash) → process sentinel fires →
  :class:`repro.faults.RankDeadError` (permanent);
* worker wedged (SIGSTOP, livelock) → heartbeat silent past the deadline
  → :class:`RankDeadError` (permanent);
* collective overran its deadline with everyone still alive (straggler)
  → :class:`repro.faults.CommTimeoutError` (transient).

Both map onto the existing :class:`repro.faults.CommError`
transient/permanent split, so
:meth:`repro.distributed.DistributedDataParallel.synchronize_gradients`
retries or evicts without backend-specific code.  On eviction the driver
bumps the membership epoch, SIGKILLs the dead worker, shrinks the ring
to the survivors, and the DDP layer re-broadcasts parameters from the
lowest live rank (``requires_resync``).

Chaos harness
-------------
A :class:`repro.faults.FaultPlan` carrying
:class:`~repro.faults.ProcessFault` entries physically disturbs workers
at chosen collective attempts — SIGKILL, SIGSTOP ("hang"), or injected
delay ("slow") — using the same attempt counter as ``CommFault``, which
is what makes a proc-backend chaos run replayable on the simulator.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import signal
import threading
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..faults import CommTimeoutError, ProcessFault, RankDeadError
from ..obs import RunTelemetry, get_telemetry, get_tracer, set_telemetry
from .backend import CommBackend
from .comm import CommStats
from .costmodel import CommCostModel, NVLINK_A100
from .supervisor import (
    FLAG_ABORT,
    ControlBlock,
    Supervisor,
    attach_shared_memory,
    record_supervisor_event,
)

__all__ = ["ProcCommunicator"]


class _Aborted(Exception):
    """Internal: the in-flight collective was cancelled (or timed out)."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _segment_view(segments: Dict[str, shared_memory.SharedMemory], name: str):
    shm = segments.get(name)
    if shm is None:
        shm = attach_shared_memory(name)
        segments[name] = shm
    return shm


def _prune_segments(
    segments: Dict[str, shared_memory.SharedMemory], keep: Sequence[str]
) -> None:
    for name in list(segments):
        if name not in keep:
            try:
                segments[name].close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
            del segments[name]


def _barrier_wait(
    ctrl: ControlBlock,
    rank: int,
    seq: int,
    live: Sequence[int],
    abort0: int,
    timeout: float,
) -> None:
    """Arrive at barrier ``seq`` and wait for every live rank.

    Polls shared arrival counters (no OS primitives a dead neighbour
    could hold), refreshing this rank's heartbeat on every iteration,
    and bails out via :class:`_Aborted` on an abort-generation bump or
    deadline overrun — a survivor can never be wedged by a dead peer.
    """
    with get_tracer().span(
        "comm.worker.barrier_wait", category="comm.worker", seq=seq
    ) as span:
        ctrl.arrive[rank] = seq
        t0 = time.monotonic()
        deadline = t0 + timeout
        spins = 0
        try:
            while True:
                now = time.monotonic()
                ctrl.heartbeats[rank] = now
                arrived = True
                for r in live:
                    if ctrl.arrive[r] < seq:
                        arrived = False
                        break
                if arrived:
                    return
                if int(ctrl.flags[FLAG_ABORT]) != abort0:
                    raise _Aborted()
                if now > deadline:
                    raise _Aborted()
                spins += 1
                if spins > 2000:
                    time.sleep(5e-5)
        finally:
            span.set(spins=spins)
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.metrics.histogram("comm.worker.barrier_wait_ms").observe(
                    (time.monotonic() - t0) * 1e3
                )


def _consume_injected_delay(ctrl: ControlBlock, rank: int) -> None:
    """Apply (and clear) a pending ``slow`` chaos fault for this rank."""
    delay = float(ctrl.slow[rank])
    if delay > 0.0:
        ctrl.slow[rank] = 0.0
        time.sleep(delay)


def _check_abort(ctrl: ControlBlock, abort0: int) -> None:
    if int(ctrl.flags[FLAG_ABORT]) != abort0:
        raise _Aborted()


def _op_allreduce(ctrl: ControlBlock, rank: int, cmd: dict, segments: dict) -> None:
    """Worker's share of one ring all-reduce.

    Identical schedule and accumulation order to
    :func:`repro.distributed.ring.ring_allreduce`: P-1 reduce-scatter
    steps (each rank adds its left neighbour's travelling chunk into its
    own float64 buffer), then P-1 all-gather steps circulating the
    finished chunks.  A shared barrier separates consecutive steps —
    within a step every rank reads a region nobody writes, so steps are
    data-race-free and the per-chunk accumulation order matches the
    sequential reference exactly (bit-exactness).
    """
    live: List[int] = cmd["live"]
    names: Dict[int, str] = cmd["names"]
    n: int = cmd["nelems"]
    abort0: int = cmd["abort0"]
    seq0: int = cmd["seq0"]
    timeout: float = cmd["timeout"]

    tracer = get_tracer()
    with tracer.span(
        "comm.worker.allreduce",
        category="comm.worker",
        seq=cmd["seq"],
        nelems=n,
        world_size=len(live),
    ):
        _consume_injected_delay(ctrl, rank)
        _check_abort(ctrl, abort0)
        _prune_segments(segments, list(names.values()))
        p = len(live)
        pos = live.index(rank)
        left = live[(pos - 1) % p]
        mine = np.ndarray(
            (n,), np.float64, buffer=_segment_view(segments, names[rank]).buf
        )
        theirs = np.ndarray(
            (n,), np.float64, buffer=_segment_view(segments, names[left]).buf
        )
        bounds = np.linspace(0, n, p + 1).astype(np.int64)

        b = 0
        # reduce-scatter: at step s this rank receives chunk (pos - 1 - s)
        for s in range(p - 1):
            if s > 0:
                _barrier_wait(ctrl, rank, seq0 + b, live, abort0, timeout)
                b += 1
            c = (pos - 1 - s) % p
            sl = slice(bounds[c], bounds[c + 1])
            with tracer.span("comm.worker.reduce", category="comm.worker",
                             step=s, chunk=int(c)):
                mine[sl] += theirs[sl]
        # all-gather: at step s this rank receives finished chunk (pos - s);
        # every step reads what the left neighbour wrote in the previous one,
        # so each needs a leading barrier
        for s in range(p - 1):
            _barrier_wait(ctrl, rank, seq0 + b, live, abort0, timeout)
            b += 1
            c = (pos - s) % p
            sl = slice(bounds[c], bounds[c + 1])
            with tracer.span("comm.worker.copy", category="comm.worker",
                             step=s, chunk=int(c)):
                mine[sl] = theirs[sl]


def _op_broadcast(ctrl: ControlBlock, rank: int, cmd: dict, segments: dict) -> None:
    """Copy the root rank's raw bytes into this rank's segment."""
    live: List[int] = cmd["live"]
    names: Dict[int, str] = cmd["names"]
    nbytes: int = cmd["nbytes"]
    root: int = cmd["root"]
    abort0: int = cmd["abort0"]

    tracer = get_tracer()
    with tracer.span(
        "comm.worker.broadcast",
        category="comm.worker",
        seq=cmd["seq"],
        nbytes=nbytes,
        world_size=len(live),
    ):
        _consume_injected_delay(ctrl, rank)
        _check_abort(ctrl, abort0)
        _prune_segments(segments, list(names.values()))
        if rank != root:
            dst = np.ndarray(
                (nbytes,), np.uint8, buffer=_segment_view(segments, names[rank]).buf
            )
            src = np.ndarray(
                (nbytes,), np.uint8, buffer=_segment_view(segments, names[root]).buf
            )
            with tracer.span("comm.worker.copy", category="comm.worker",
                             nbytes=nbytes):
                dst[:] = src
        _barrier_wait(ctrl, rank, cmd["seq0"], live, abort0, cmd["timeout"])


def _op_barrier(ctrl: ControlBlock, rank: int, cmd: dict) -> None:
    with get_tracer().span(
        "comm.worker.barrier", category="comm.worker", seq=cmd["seq"]
    ):
        _consume_injected_delay(ctrl, rank)
        _barrier_wait(
            ctrl, rank, cmd["seq0"], cmd["live"], cmd["abort0"], cmd["timeout"]
        )


def _telemetry_payload(rank: int) -> Optional[dict]:
    """Drain this worker's span/metric buffers into a picklable delta."""
    telemetry = get_telemetry()
    if telemetry is None:
        return None
    spans, events = telemetry.tracer.drain_records()
    return {
        "rank": rank,
        "origin": telemetry.tracer.origin,
        "spans": spans,
        "events": events,
        "metrics": telemetry.metrics.drain_state(),
    }


def _worker_main(
    rank: int,
    conn,
    ctrl_name: str,
    world0: int,
    heartbeat_interval: float,
    trace: bool = False,
) -> None:
    """Per-rank worker: heartbeat + command loop (runs until shutdown).

    SIGTERM requests a graceful drain: the current command finishes and
    the loop exits at the next poll instead of mid-collective.

    With ``trace=True`` the worker installs its *own*
    :class:`~repro.obs.RunTelemetry` (the driver's inherited-via-fork
    install is cleared first — a forked copy of the driver's buffers
    would double-record and never reach the merged trace) and answers
    ``telemetry`` commands with drained span/metric deltas.
    """
    # Under the fork start method this process inherits the driver's
    # installed telemetry; always clear it so worker spans never land in
    # a dead copy of the driver's buffers.
    set_telemetry(None)
    if trace:
        set_telemetry(RunTelemetry(metadata={"rank": rank}))

    draining = {"flag": False}

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        draining["flag"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    ctrl = ControlBlock.attach(ctrl_name, world0)
    segments: Dict[str, shared_memory.SharedMemory] = {}
    stop = threading.Event()

    def _beat() -> None:
        last = time.monotonic()
        while not stop.is_set():
            now = time.monotonic()
            ctrl.heartbeats[rank] = now
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.metrics.counter("comm.worker.heartbeats").add(1)
                telemetry.metrics.histogram(
                    "comm.worker.heartbeat_interval_ms"
                ).observe((now - last) * 1e3)
            last = now
            stop.wait(heartbeat_interval)

    beater = threading.Thread(target=_beat, daemon=True, name=f"hb-rank{rank}")
    beater.start()
    try:
        conn.send({"status": "ready", "rank": rank})
        while not draining["flag"]:
            if not conn.poll(0.05):
                continue
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break  # driver went away
            op = cmd.get("op")
            if op == "shutdown":
                break
            if op == "telemetry":
                status = {
                    "seq": cmd["seq"],
                    "status": "ok",
                    "rank": rank,
                    "telemetry": _telemetry_payload(rank),
                }
                try:
                    conn.send(status)
                except (BrokenPipeError, OSError):
                    break
                continue
            telemetry = get_telemetry()
            try:
                if op == "allreduce":
                    _op_allreduce(ctrl, rank, cmd, segments)
                elif op == "broadcast":
                    _op_broadcast(ctrl, rank, cmd, segments)
                elif op == "barrier":
                    _op_barrier(ctrl, rank, cmd)
                else:
                    raise ValueError(f"unknown worker op {op!r}")
                if telemetry is not None:
                    telemetry.metrics.counter("comm.worker.collectives").add(1)
                status = {"seq": cmd["seq"], "status": "ok", "rank": rank}
            except _Aborted:
                if telemetry is not None:
                    telemetry.tracer.event(
                        "comm.worker.aborted", category="comm.worker",
                        seq=cmd.get("seq"), op=op,
                    )
                    telemetry.metrics.counter("comm.worker.aborts").add(1)
                status = {"seq": cmd["seq"], "status": "aborted", "rank": rank}
            except Exception as exc:  # surfaced as a rank failure driver-side
                status = {
                    "seq": cmd["seq"],
                    "status": "error",
                    "error": repr(exc),
                    "rank": rank,
                }
            try:
                conn.send(status)
            except (BrokenPipeError, OSError):
                break
    finally:
        stop.set()
        _prune_segments(segments, [])
        ctrl.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
class ProcCommunicator(CommBackend):
    """Driver for the multi-process ring backend.

    Parameters
    ----------
    world_size:
        Number of worker processes (one per rank).
    cost_model, algorithm:
        The α–β model is still charged per collective (``modeled_s``) so
        measured wall-clock can be validated against it; only the
        ``"ring"`` algorithm is implemented by the workers.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`.  ``comm_faults`` raise
        exactly as on the simulator; ``process_faults`` are *executed*
        against live workers (SIGKILL / SIGSTOP / injected delay).
    collective_timeout:
        Deadline per collective; overrun with all workers alive raises a
        transient :class:`~repro.faults.CommTimeoutError`.
    heartbeat_interval / heartbeat_deadline:
        Worker beat cadence and the failure detector's staleness bound;
        a silent rank raises a permanent
        :class:`~repro.faults.RankDeadError`.
    start_method:
        ``multiprocessing`` start method (default ``"fork"`` where
        available — workers need no re-import — else ``"spawn"``).
    """

    requires_resync = True

    def __init__(
        self,
        world_size: int,
        cost_model: CommCostModel = NVLINK_A100,
        algorithm: str = "ring",
        fault_plan=None,
        collective_timeout: float = 30.0,
        heartbeat_interval: float = 0.05,
        heartbeat_deadline: float = 2.0,
        start_method: Optional[str] = None,
        startup_timeout: float = 30.0,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if algorithm != "ring":
            raise ValueError(
                "the proc backend implements the ring algorithm only "
                f"(got {algorithm!r}); use the sim backend for others"
            )
        if collective_timeout <= 0 or heartbeat_deadline <= 0:
            raise ValueError("timeouts must be positive")
        self.ranks: List[int] = list(range(world_size))
        self.cost_model = cost_model
        self.algorithm = algorithm
        self.fault_plan = fault_plan
        self.collective_timeout = collective_timeout
        self.heartbeat_deadline = heartbeat_deadline
        self.stats = CommStats()
        self._closed = False
        self._seq = 0  # collective id (response matching)
        self._barrier_seq = 1  # barrier sequence allocator (arrive starts at 0)

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._control = ControlBlock.create(world_size)
        self._supervisor = Supervisor(self._control, heartbeat_deadline)
        self._segments: Dict[int, shared_memory.SharedMemory] = {}
        # Workers trace iff the driver does: each rank then runs its own
        # tracer/metrics and ships deltas back on collect_worker_telemetry().
        self._trace_workers = get_telemetry() is not None
        try:
            self._supervisor.spawn(
                self._ctx,
                _worker_main,
                self.ranks,
                (
                    self._control.name,
                    world_size,
                    heartbeat_interval,
                    self._trace_workers,
                ),
            )
            self._supervisor.wait_ready(self.ranks, timeout=startup_timeout)
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        """Number of *live* ranks."""
        return len(self.ranks)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _alloc_barriers(self, count: int) -> int:
        seq0 = self._barrier_seq
        self._barrier_seq += count
        return seq0

    def _ensure_segment(self, rank: int, nbytes: int) -> shared_memory.SharedMemory:
        seg = self._segments.get(rank)
        if seg is not None and seg.size >= nbytes:
            return seg
        size = max(nbytes, 4096, 2 * seg.size if seg is not None else 0)
        if seg is not None:
            seg.close()
            seg.unlink()
        seg = shared_memory.SharedMemory(create=True, size=size)
        self._segments[rank] = seg
        return seg

    # -- chaos execution ----------------------------------------------
    def _execute_process_fault(self, fault: ProcessFault) -> None:
        handle = self._supervisor.handles.get(fault.rank)
        if handle is None or handle.pid is None:
            return
        if fault.kind == "sigkill":
            self.stats.record_event(
                f"chaos: SIGKILL rank {fault.rank} (attempt {fault.at_call})"
            )
            try:
                os.kill(handle.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - already dead
                pass
        elif fault.kind == "hang":
            self.stats.record_event(
                f"chaos: SIGSTOP (hang) rank {fault.rank} (attempt {fault.at_call})"
            )
            try:
                os.kill(handle.pid, signal.SIGSTOP)
            except ProcessLookupError:  # pragma: no cover - already dead
                pass
        else:  # slow
            self.stats.record_event(
                f"chaos: slow rank {fault.rank} by {fault.duration}s "
                f"(attempt {fault.at_call})"
            )
            self._control.slow[fault.rank] = fault.duration

    def _before_attempt(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.before_collective(
                self.ranks, process_fault_executor=self._execute_process_fault
            )

    # -- collective plumbing ------------------------------------------
    def _dispatch(self, cmd: dict, live: Sequence[int], seq: int) -> None:
        sent: List[int] = []
        try:
            for rank in live:
                self._supervisor.send(rank, cmd)
                sent.append(rank)
        except RankDeadError as err:
            self._supervisor.abort_and_drain(
                seq, sent, exclude=[err.rank], timeout=self._drain_timeout
            )
            self.stats.record_event(str(err))
            raise

    def _gather(self, seq: int, live: Sequence[int]) -> None:
        try:
            self._supervisor.gather(seq, live, self.collective_timeout)
        except RankDeadError as err:
            self._supervisor.abort_and_drain(
                seq, live, exclude=[err.rank], timeout=self._drain_timeout
            )
            self.stats.record_event(str(err))
            raise
        except CommTimeoutError as err:
            self._supervisor.abort_and_drain(
                seq, live, exclude=[], timeout=self._drain_timeout
            )
            self.stats.record_event(str(err))
            raise

    @property
    def _drain_timeout(self) -> float:
        return max(self.collective_timeout, self.heartbeat_deadline) + 1.0

    # -- collectives ---------------------------------------------------
    def allreduce(
        self, buffers: Sequence[np.ndarray], average: bool = True
    ) -> List[np.ndarray]:
        """Ring all-reduce executed by the worker fleet; bit-exact with
        :meth:`SimCommunicator.allreduce` on the same inputs."""
        self._assert_open()
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}"
            )
        nbytes = buffers[0].nbytes
        with get_tracer().span(
            "comm.allreduce",
            category="comm",
            nbytes=nbytes,
            algorithm=self.algorithm,
            world_size=self.world_size,
            backend="proc",
        ) as span:
            t0 = time.perf_counter()
            self._before_attempt()
            out = self._run_allreduce(buffers, average)
            modeled = self.cost_model.allreduce_time(nbytes, self.world_size)
            measured = time.perf_counter() - t0
            self.stats.num_allreduce_calls += 1
            self.stats.bytes_reduced += nbytes
            self.stats.modeled_seconds += modeled
            self.stats.measured_seconds += measured
            span.set(modeled_s=modeled, measured_s=measured)
        return out

    def _run_allreduce(
        self, buffers: Sequence[np.ndarray], average: bool
    ) -> List[np.ndarray]:
        shape = buffers[0].shape
        dtype = buffers[0].dtype
        for b in buffers:
            if b.shape != shape:
                raise ValueError("all rank buffers must share a shape")
        p = self.world_size
        if p == 1:
            out = buffers[0].astype(np.float64, copy=True)
            return [out.astype(dtype)]
        n = int(buffers[0].size)
        live = list(self.ranks)
        names: Dict[int, str] = {}
        with get_tracer().span(
            "comm.shm_write", category="comm", nelems=n, world_size=p
        ):
            for rank, buf in zip(live, buffers):
                seg = self._ensure_segment(rank, n * 8)
                view = np.ndarray((n,), np.float64, buffer=seg.buf)
                view[:] = np.ascontiguousarray(buf).reshape(-1)
                names[rank] = seg.name
        seq = self._next_seq()
        seq0 = self._alloc_barriers(2 * p - 3)
        cmd = {
            "op": "allreduce",
            "seq": seq,
            "seq0": seq0,
            "nelems": n,
            "names": names,
            "live": live,
            "abort0": self._control.abort_generation,
            "timeout": self.collective_timeout,
        }
        self._dispatch(cmd, live, seq)
        self._gather(seq, live)
        scale = 1.0 / p if average else 1.0
        out = []
        with get_tracer().span(
            "comm.shm_read", category="comm", nelems=n, world_size=p
        ):
            for rank in live:
                seg = self._segments[rank]
                w = np.ndarray((n,), np.float64, buffer=seg.buf).copy()
                out.append((w * scale).reshape(shape).astype(dtype))
        return out

    def broadcast(self, buffer: np.ndarray) -> List[np.ndarray]:
        """Broadcast the given buffer (the lowest live rank's state) to all."""
        self._assert_open()
        nbytes = buffer.nbytes
        with get_tracer().span(
            "comm.broadcast",
            category="comm",
            nbytes=nbytes,
            world_size=self.world_size,
            backend="proc",
        ) as span:
            t0 = time.perf_counter()
            self._before_attempt()
            out = self._run_broadcast(buffer)
            modeled = self.cost_model.broadcast_time(nbytes, self.world_size)
            measured = time.perf_counter() - t0
            self.stats.num_broadcast_calls += 1
            self.stats.bytes_broadcast += nbytes
            self.stats.modeled_seconds += modeled
            self.stats.measured_seconds += measured
            span.set(modeled_s=modeled, measured_s=measured)
        return out

    def _run_broadcast(self, buffer: np.ndarray) -> List[np.ndarray]:
        p = self.world_size
        if p == 1:
            return [buffer.copy()]
        live = list(self.ranks)
        root = live[0]
        raw = np.ascontiguousarray(buffer)
        nbytes = raw.nbytes
        names: Dict[int, str] = {}
        for rank in live:
            seg = self._ensure_segment(rank, nbytes)
            names[rank] = seg.name
        root_view = np.ndarray(
            (nbytes,), np.uint8, buffer=self._segments[root].buf
        )
        root_view[:] = raw.view(np.uint8).reshape(-1)
        seq = self._next_seq()
        seq0 = self._alloc_barriers(1)
        cmd = {
            "op": "broadcast",
            "seq": seq,
            "seq0": seq0,
            "nbytes": nbytes,
            "names": names,
            "live": live,
            "root": root,
            "abort0": self._control.abort_generation,
            "timeout": self.collective_timeout,
        }
        self._dispatch(cmd, live, seq)
        self._gather(seq, live)
        out = []
        for rank in live:
            seg = self._segments[rank]
            data = bytes(seg.buf[:nbytes])
            out.append(
                np.frombuffer(data, dtype=buffer.dtype).reshape(buffer.shape).copy()
            )
        return out

    def barrier(self) -> None:
        """Real inter-process barrier over the live ranks."""
        self._assert_open()
        with get_tracer().span(
            "comm.barrier",
            category="comm",
            world_size=self.world_size,
            backend="proc",
        ) as span:
            t0 = time.perf_counter()
            self._before_attempt()
            if self.world_size > 1:
                live = list(self.ranks)
                seq = self._next_seq()
                seq0 = self._alloc_barriers(1)
                cmd = {
                    "op": "barrier",
                    "seq": seq,
                    "seq0": seq0,
                    "live": live,
                    "abort0": self._control.abort_generation,
                    "timeout": self.collective_timeout,
                }
                self._dispatch(cmd, live, seq)
                self._gather(seq, live)
            modeled = self.cost_model.barrier_time(self.world_size)
            measured = time.perf_counter() - t0
            self.stats.num_barrier_calls += 1
            self.stats.modeled_seconds += modeled
            self.stats.measured_seconds += measured
            span.set(modeled_s=modeled, measured_s=measured)

    # -- telemetry collection ------------------------------------------
    def _recv_telemetry(self, rank: int, seq: int, timeout: float) -> Optional[dict]:
        """Poll one rank's pipe for the ``telemetry`` response to ``seq``.

        Stale responses from earlier (aborted) collectives are discarded.
        Returns ``None`` if the worker dies or the deadline passes — a
        lost telemetry delta must never fail the run.
        """
        handle = self._supervisor.handles.get(rank)
        if handle is None:
            return None
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not handle.is_alive() and not handle.conn.poll(0):
                return None
            if not handle.conn.poll(0.005):
                continue
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                return None
            if msg.get("seq") == seq:
                return msg.get("telemetry")
        return None

    def collect_worker_telemetry(self, timeout: float = 5.0) -> int:
        """Pull each live worker's span/metric deltas into the driver's
        installed telemetry (one merged trace, one lane per rank).

        Called by the trainer at epoch boundaries and by :meth:`close`.
        Worker timestamps are rebased by the origin difference — both
        sides read ``time.perf_counter`` (CLOCK_MONOTONIC on Linux), so a
        plain shift aligns the lanes.  Returns the number of ranks that
        answered; silent or dead ranks are skipped, never fatal.
        """
        telemetry = get_telemetry()
        if telemetry is None or not self._trace_workers or self._closed:
            return 0
        collected = 0
        with telemetry.tracer.span(
            "comm.collect_telemetry", category="comm", world_size=self.world_size
        ) as span:
            for rank in list(self.ranks):
                seq = self._next_seq()
                try:
                    self._supervisor.send(rank, {"op": "telemetry", "seq": seq})
                except RankDeadError:
                    continue
                payload = self._recv_telemetry(rank, seq, timeout)
                if payload is None:
                    continue
                shift = float(payload["origin"]) - telemetry.tracer.origin
                telemetry.tracer.ingest_remote(
                    payload["spans"],
                    payload["events"],
                    pid=rank + 1,
                    process_name=f"rank {rank}",
                    time_shift=shift,
                    rank=rank,
                )
                telemetry.metrics.merge_state(
                    payload["metrics"], gauge_suffix=f".rank{rank}"
                )
                collected += 1
            span.set(collected=collected)
        return collected

    # -- elasticity ----------------------------------------------------
    def remove_rank(self, rank: int) -> int:
        """Evict a permanently failed rank: epoch bump + worker teardown.

        Mirrors :meth:`SimCommunicator.remove_rank` (same errors, same
        stats trail) and additionally bumps the shared membership epoch
        and SIGKILLs the dead worker (it may be merely SIGSTOPped).
        Subsequent collectives ring over the survivors only.
        """
        if rank not in self.ranks:
            raise ValueError(f"rank {rank} is not live (live ranks: {self.ranks})")
        if len(self.ranks) == 1:
            raise RuntimeError("cannot remove the last surviving rank")
        index = self.ranks.index(rank)
        self.ranks.remove(rank)
        self._control.live[rank] = 0
        epoch = self._control.bump_epoch()
        record_supervisor_event(
            "rank_evicted", rank=rank, epoch=epoch,
            survivors=list(self.ranks),
        )
        self._supervisor.kill(rank)
        seg = self._segments.pop(rank, None)
        if seg is not None:
            seg.close()
            seg.unlink()
        self.stats.rank_failures.append(rank)
        self.stats.record_event(
            f"rank {rank} permanently failed; continuing with world size "
            f"{len(self.ranks)} (survivors: {self.ranks}, epoch {epoch})"
        )
        return index

    # -- lifecycle -----------------------------------------------------
    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("communicator is closed")

    def close(self) -> None:
        """Graceful drain: ask live workers to exit, then release shm.

        Any span/metric deltas still buffered in the workers are pulled
        in first (best-effort), so the merged trace covers the full run.
        """
        if self._closed:
            return
        try:
            self.collect_worker_telemetry()
        except Exception:  # pragma: no cover - shutdown must not fail
            pass
        self._closed = True
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - defensive
            pass
        self._supervisor.shutdown(list(self._supervisor.handles))
        for seg in self._segments.values():
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._segments.clear()
        self._control.close()
