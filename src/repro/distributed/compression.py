"""Gradient compression: top-k sparsification with error feedback.

The paper's coalescing attacks the *latency* term of gradient
synchronisation; compression attacks the *bandwidth* term.  Top-k keeps
only the k largest-magnitude entries of the flat gradient and accumulates
the rest locally ("error feedback", Stich et al.), which keeps SGD
convergent despite the truncation.

Protocol here is the standard sparse exchange: every rank contributes its
top-k (index, value) pairs, ranks all-gather the union, and each applies
the averaged sparse updates.  Transmitted volume per rank is
``k · (4 + 4)`` bytes instead of ``n · 4`` — the compression ratio the
bench prices with the α–β model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..nn import Module
from ..tensor.kernels import scatter_add_1d
from .coalesce import flatten_arrays, gradient_arrays, unflatten_array
from .costmodel import CommCostModel

__all__ = [
    "TopKCompressor",
    "CompressedSynchronizer",
    "compressed_bytes",
    "compression_speedup",
]


@dataclass
class TopKCompressor:
    """Per-rank top-k selection with an error-feedback residual.

    Parameters
    ----------
    ratio:
        Fraction of entries kept per step (0 < ratio ≤ 1).
    """

    ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self._residual: np.ndarray | None = None

    def compress(self, flat_grad: np.ndarray):
        """Return (indices, values) of the k largest-magnitude corrected
        entries; the remainder is carried to the next step."""
        if self._residual is None or self._residual.shape != flat_grad.shape:
            self._residual = np.zeros_like(flat_grad)
        corrected = flat_grad + self._residual
        k = max(1, int(round(self.ratio * corrected.size)))
        if k >= corrected.size:
            idx = np.arange(corrected.size, dtype=np.int64)
        else:
            idx = np.argpartition(np.abs(corrected), -k)[-k:].astype(np.int64)
        values = corrected[idx].copy()
        self._residual = corrected
        self._residual[idx] = 0.0  # transmitted mass leaves the residual
        return idx, values


class CompressedSynchronizer:
    """DDP gradient sync over sparse top-k messages.

    Each rank compresses its flat gradient; the sparse contributions are
    summed (the all-gather union) and divided by the world size, and every
    rank applies the identical dense result — replicas stay in sync.

    Parameters
    ----------
    models:
        One replica per rank.
    ratio:
        Top-k keep fraction.
    """

    def __init__(self, models: Sequence[Module], ratio: float) -> None:
        if not models:
            raise ValueError("need at least one replica")
        names = [tuple(n for n, _ in m.named_parameters()) for m in models]
        if any(n != names[0] for n in names[1:]):
            raise ValueError("replicas disagree on parameter names/order")
        self.models = list(models)
        self.compressors = [TopKCompressor(ratio) for _ in models]
        self.bytes_exchanged = 0
        self.steps = 0

    @property
    def world_size(self) -> int:
        return len(self.models)

    def synchronize_gradients(self) -> None:
        """Sparse-sum the ranks' top-k gradients; write the average back."""
        flats = []
        specs = None
        for m in self.models:
            flat, specs = flatten_arrays(gradient_arrays(m))
            flats.append(flat)
        dense_sum = np.zeros_like(flats[0], dtype=np.float64)
        for comp, flat in zip(self.compressors, flats):
            idx, values = comp.compress(flat)
            scatter_add_1d(
                values.astype(np.float64), idx, dense_sum.shape[0], out=dense_sum
            )
            self.bytes_exchanged += idx.size * 8  # 4B index + 4B value
        averaged = (dense_sum / self.world_size).astype(np.float32)
        for m in self.models:
            for (_, p), g in zip(
                m.named_parameters(), unflatten_array(averaged, specs)
            ):
                p.grad = g.astype(p.data.dtype, copy=True)
        self.steps += 1


def compressed_bytes(num_elements: int, ratio: float) -> int:
    """Per-rank transmitted bytes for one compressed sync."""
    k = max(1, int(round(ratio * num_elements)))
    return k * 8


def compression_speedup(
    num_elements: int, ratio: float, world_size: int, model: CommCostModel
) -> float:
    """Modeled dense-allreduce time over sparse-exchange time.

    The sparse exchange is modeled as one collective of the compressed
    size (index+value payload).
    """
    dense = model.allreduce_time(num_elements * 4, world_size)
    sparse = model.allreduce_time(compressed_bytes(num_elements, ratio), world_size)
    if sparse == 0.0:
        return 1.0
    return dense / sparse
