"""Simulated communicator: the NCCL stand-in.

:class:`SimCommunicator` owns ``P`` logical ranks in one process and
provides the collectives DDP needs.  Every call runs the genuine ring
algorithm (:mod:`repro.distributed.ring`) and charges the α–β cost model,
accumulating both *call counts* and *modeled communication time* — the
quantities the coalesced-all-reduce experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .costmodel import CommCostModel, NVLINK_A100
from .ring import RingAllReduceStats, ring_allreduce

__all__ = ["CommStats", "SimCommunicator"]


@dataclass
class CommStats:
    """Accumulated communication accounting.

    Beyond the α–β byte/call counters this also records the
    fault-tolerance history: transient-fault retries (and the simulated
    seconds spent backing off), permanently lost ranks, and a
    human-readable event log — the audit trail a production run's
    post-mortem would read.
    """

    num_allreduce_calls: int = 0
    bytes_reduced: int = 0
    modeled_seconds: float = 0.0
    num_retries: int = 0
    retry_backoff_seconds: float = 0.0
    rank_failures: List[int] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    def record_event(self, message: str) -> None:
        self.events.append(message)

    def reset(self) -> None:
        self.num_allreduce_calls = 0
        self.bytes_reduced = 0
        self.modeled_seconds = 0.0
        self.num_retries = 0
        self.retry_backoff_seconds = 0.0
        self.rank_failures = []
        self.events = []


class SimCommunicator:
    """In-process ``P``-rank communicator with cost accounting.

    Parameters
    ----------
    world_size:
        Number of simulated ranks (GPUs).
    cost_model:
        α–β model used to charge modeled time per collective.
    algorithm:
        All-reduce algorithm: ``"ring"`` (default, NCCL's large-message
        choice), ``"halving_doubling"`` (power-of-two ranks only), or
        ``"tree"``.  The matching α–β form is used for the modeled time.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; when set, every
        collective first consults the plan, which may raise
        :class:`repro.faults.CommError` at its scheduled attempt.

    The communicator is *elastic*: :meth:`remove_rank` evicts a
    permanently failed rank, shrinking the world the collectives (and
    the α–β model) operate over while keeping the original global rank
    ids visible through :attr:`ranks`.
    """

    def __init__(
        self,
        world_size: int,
        cost_model: CommCostModel = NVLINK_A100,
        algorithm: str = "ring",
        fault_plan=None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if algorithm not in ("ring", "halving_doubling", "tree"):
            raise ValueError(f"unknown all-reduce algorithm {algorithm!r}")
        self.ranks: List[int] = list(range(world_size))
        self.cost_model = cost_model
        self.algorithm = algorithm
        self.fault_plan = fault_plan
        self.stats = CommStats()

    @property
    def world_size(self) -> int:
        """Number of *live* ranks."""
        return len(self.ranks)

    def remove_rank(self, rank: int) -> int:
        """Evict a permanently failed global rank; returns its local index.

        Subsequent collectives run over the surviving ranks only, so
        gradient averaging automatically rescales to the new world size.
        The eviction is recorded in :attr:`stats`.
        """
        if rank not in self.ranks:
            raise ValueError(f"rank {rank} is not live (live ranks: {self.ranks})")
        if len(self.ranks) == 1:
            raise RuntimeError("cannot remove the last surviving rank")
        index = self.ranks.index(rank)
        self.ranks.remove(rank)
        self.stats.rank_failures.append(rank)
        self.stats.record_event(
            f"rank {rank} permanently failed; continuing with world size "
            f"{len(self.ranks)} (survivors: {self.ranks})"
        )
        return index

    # ------------------------------------------------------------------
    def _run_allreduce(
        self, buffers: Sequence[np.ndarray], average: bool
    ) -> List[np.ndarray]:
        if self.algorithm == "ring":
            return ring_allreduce(buffers, average=average)
        from .algorithms import halving_doubling_allreduce, tree_allreduce

        if self.algorithm == "halving_doubling":
            return halving_doubling_allreduce(buffers, average=average)
        return tree_allreduce(buffers, average=average)

    def _modeled_time(self, nbytes: int) -> float:
        if self.algorithm == "ring":
            return self.cost_model.allreduce_time(nbytes, self.world_size)
        from .algorithms import halving_doubling_time, tree_time

        fn = halving_doubling_time if self.algorithm == "halving_doubling" else tree_time
        return fn(nbytes, self.world_size, self.cost_model.alpha, self.cost_model.beta)

    def allreduce(
        self, buffers: Sequence[np.ndarray], average: bool = True
    ) -> List[np.ndarray]:
        """All-reduce one buffer per rank; returns the reduced copies.

        Charges the cost model for a single collective over the buffer's
        byte size, using the configured algorithm's α–β form.
        """
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}"
            )
        if self.fault_plan is not None:
            self.fault_plan.before_collective(self.ranks)
        out = self._run_allreduce(buffers, average)
        nbytes = buffers[0].nbytes
        self.stats.num_allreduce_calls += 1
        self.stats.bytes_reduced += nbytes
        self.stats.modeled_seconds += self._modeled_time(nbytes)
        return out

    def broadcast(self, buffer: np.ndarray) -> List[np.ndarray]:
        """Broadcast rank 0's buffer to every rank (model-state sync)."""
        return [buffer.copy() for _ in range(self.world_size)]

    def barrier(self) -> None:
        """No-op in the in-process simulation; kept for API parity."""
