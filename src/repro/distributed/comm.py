"""Simulated communicator: the NCCL stand-in.

:class:`SimCommunicator` owns ``P`` logical ranks in one process and
provides the collectives DDP needs.  Every call runs the genuine ring
algorithm (:mod:`repro.distributed.ring`) and charges the α–β cost model,
accumulating both *call counts* and *modeled communication time* — the
quantities the coalesced-all-reduce experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from ..obs import get_tracer
from .backend import CommBackend
from .costmodel import CommCostModel, NVLINK_A100
from .ring import RingAllReduceStats, ring_allreduce

__all__ = ["CommStats", "SimCommunicator"]


@dataclass
class CommStats:
    """Accumulated communication accounting.

    Beyond the α–β byte/call counters this also records the
    fault-tolerance history: transient-fault retries (and the simulated
    seconds spent backing off), permanently lost ranks, and a
    human-readable event log — the audit trail a production run's
    post-mortem would read.
    """

    num_allreduce_calls: int = 0
    bytes_reduced: int = 0
    num_broadcast_calls: int = 0
    bytes_broadcast: int = 0
    num_barrier_calls: int = 0
    modeled_seconds: float = 0.0
    measured_seconds: float = 0.0  # wall-clock; stays 0 on the sim backend
    num_retries: int = 0
    retry_backoff_seconds: float = 0.0
    rank_failures: List[int] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    def record_event(self, message: str) -> None:
        self.events.append(message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (the telemetry-export view)."""
        return {
            "num_allreduce_calls": self.num_allreduce_calls,
            "bytes_reduced": self.bytes_reduced,
            "num_broadcast_calls": self.num_broadcast_calls,
            "bytes_broadcast": self.bytes_broadcast,
            "num_barrier_calls": self.num_barrier_calls,
            "modeled_seconds": self.modeled_seconds,
            "measured_seconds": self.measured_seconds,
            "num_retries": self.num_retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "rank_failures": list(self.rank_failures),
            "num_events": len(self.events),
        }

    def reset(self) -> None:
        self.num_allreduce_calls = 0
        self.bytes_reduced = 0
        self.num_broadcast_calls = 0
        self.bytes_broadcast = 0
        self.num_barrier_calls = 0
        self.modeled_seconds = 0.0
        self.measured_seconds = 0.0
        self.num_retries = 0
        self.retry_backoff_seconds = 0.0
        self.rank_failures = []
        self.events = []


class SimCommunicator(CommBackend):
    """In-process ``P``-rank communicator with cost accounting.

    Parameters
    ----------
    world_size:
        Number of simulated ranks (GPUs).
    cost_model:
        α–β model used to charge modeled time per collective.
    algorithm:
        All-reduce algorithm: ``"ring"`` (default, NCCL's large-message
        choice), ``"halving_doubling"`` (power-of-two ranks only), or
        ``"tree"``.  The matching α–β form is used for the modeled time.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; when set, every
        collective first consults the plan, which may raise
        :class:`repro.faults.CommError` at its scheduled attempt.

    The communicator is *elastic*: :meth:`remove_rank` evicts a
    permanently failed rank, shrinking the world the collectives (and
    the α–β model) operate over while keeping the original global rank
    ids visible through :attr:`ranks`.
    """

    def __init__(
        self,
        world_size: int,
        cost_model: CommCostModel = NVLINK_A100,
        algorithm: str = "ring",
        fault_plan=None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if algorithm not in ("ring", "halving_doubling", "tree"):
            raise ValueError(f"unknown all-reduce algorithm {algorithm!r}")
        if fault_plan is not None and getattr(fault_plan, "process_faults", []):
            raise ValueError(
                "ProcessFault chaos requires the 'proc' backend; on the sim "
                "backend express the same failure as a CommFault (a SIGKILL "
                "at attempt N replays as a permanent CommFault(at_call=N))"
            )
        self.ranks: List[int] = list(range(world_size))
        self.cost_model = cost_model
        self.algorithm = algorithm
        self.fault_plan = fault_plan
        self.stats = CommStats()

    @property
    def world_size(self) -> int:
        """Number of *live* ranks."""
        return len(self.ranks)

    def remove_rank(self, rank: int) -> int:
        """Evict a permanently failed global rank; returns its local index.

        Subsequent collectives run over the surviving ranks only, so
        gradient averaging automatically rescales to the new world size.
        The eviction is recorded in :attr:`stats`.
        """
        if rank not in self.ranks:
            raise ValueError(f"rank {rank} is not live (live ranks: {self.ranks})")
        if len(self.ranks) == 1:
            raise RuntimeError("cannot remove the last surviving rank")
        index = self.ranks.index(rank)
        self.ranks.remove(rank)
        self.stats.rank_failures.append(rank)
        self.stats.record_event(
            f"rank {rank} permanently failed; continuing with world size "
            f"{len(self.ranks)} (survivors: {self.ranks})"
        )
        return index

    # ------------------------------------------------------------------
    def _run_allreduce(
        self, buffers: Sequence[np.ndarray], average: bool
    ) -> List[np.ndarray]:
        if self.algorithm == "ring":
            return ring_allreduce(buffers, average=average)
        from .algorithms import halving_doubling_allreduce, tree_allreduce

        if self.algorithm == "halving_doubling":
            return halving_doubling_allreduce(buffers, average=average)
        return tree_allreduce(buffers, average=average)

    def _modeled_time(self, nbytes: int) -> float:
        if self.algorithm == "ring":
            return self.cost_model.allreduce_time(nbytes, self.world_size)
        from .algorithms import halving_doubling_time, tree_time

        fn = halving_doubling_time if self.algorithm == "halving_doubling" else tree_time
        return fn(nbytes, self.world_size, self.cost_model.alpha, self.cost_model.beta)

    def allreduce(
        self, buffers: Sequence[np.ndarray], average: bool = True
    ) -> List[np.ndarray]:
        """All-reduce one buffer per rank; returns the reduced copies.

        Charges the cost model for a single collective over the buffer's
        byte size, using the configured algorithm's α–β form.
        """
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}"
            )
        nbytes = buffers[0].nbytes
        with get_tracer().span(
            "comm.allreduce",
            category="comm",
            nbytes=nbytes,
            algorithm=self.algorithm,
            world_size=self.world_size,
        ) as span:
            if self.fault_plan is not None:
                self.fault_plan.before_collective(self.ranks)
            out = self._run_allreduce(buffers, average)
            modeled = self._modeled_time(nbytes)
            self.stats.num_allreduce_calls += 1
            self.stats.bytes_reduced += nbytes
            self.stats.modeled_seconds += modeled
            span.set(modeled_s=modeled)
        return out

    def broadcast(self, buffer: np.ndarray) -> List[np.ndarray]:
        """Broadcast rank 0's buffer to every rank (model-state sync).

        Charged to the α–β model (binomial tree) and counted in
        :attr:`stats`, so state syncs show up in comm accounting exactly
        like all-reduces do.
        """
        nbytes = buffer.nbytes
        with get_tracer().span(
            "comm.broadcast",
            category="comm",
            nbytes=nbytes,
            world_size=self.world_size,
        ) as span:
            if self.fault_plan is not None:
                self.fault_plan.before_collective(self.ranks)
            out = [buffer.copy() for _ in range(self.world_size)]
            modeled = self.cost_model.broadcast_time(nbytes, self.world_size)
            self.stats.num_broadcast_calls += 1
            self.stats.bytes_broadcast += nbytes
            self.stats.modeled_seconds += modeled
            span.set(modeled_s=modeled)
        return out

    def barrier(self) -> None:
        """Synchronisation point: charged to the α–β model and faultable.

        Data-wise nothing moves in the in-process simulation, but a
        barrier is still a collective: it consults the fault plan (so
        barrier-heavy schedules can fail like any other collective) and
        charges the latency-only dissemination cost
        (:meth:`~repro.distributed.CommCostModel.barrier_time`), so
        modeled time no longer under-reports barrier-synchronised runs.
        """
        with get_tracer().span(
            "comm.barrier",
            category="comm",
            world_size=self.world_size,
        ) as span:
            if self.fault_plan is not None:
                self.fault_plan.before_collective(self.ranks)
            modeled = self.cost_model.barrier_time(self.world_size)
            self.stats.num_barrier_calls += 1
            self.stats.modeled_seconds += modeled
            span.set(modeled_s=modeled)
