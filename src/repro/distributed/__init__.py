"""Multi-GPU data parallelism: simulated and real multi-process backends.

Ring all-reduce over in-process ranks (``sim``) or one worker process
per rank over shared memory (``proc``), per-parameter vs coalesced
gradient synchronisation (Section III-D), and the α–β cost model that
converts byte/step counts into modeled NVLink communication time.  Both
backends sit behind :class:`CommBackend`; pick one with
:func:`create_communicator`.
"""

from .backend import COMM_BACKENDS, CommBackend, create_communicator
from .costmodel import NVLINK_A100, CommCostModel
from .ring import RingAllReduceStats, ring_allreduce
from .comm import CommStats, SimCommunicator
from .proc_backend import ProcCommunicator
from .supervisor import (
    ControlBlock,
    HeartbeatMonitor,
    Supervisor,
    WorkerHandle,
)
from .coalesce import FlatSpec, flatten_arrays, gradient_arrays, unflatten_array
from .ddp import DistributedDataParallel, replicate_model
from .algorithms import (
    ALLREDUCE_ALGORITHMS,
    halving_doubling_allreduce,
    halving_doubling_time,
    tree_allreduce,
    tree_time,
)
from .bucketing import (
    Bucket,
    BucketedSynchronizer,
    overlapped_sync_time,
    partition_buckets,
)
from .partitioned_gnn import HaloStats, PartitionedIGNNForward, VertexPartition
from .compression import (
    CompressedSynchronizer,
    TopKCompressor,
    compressed_bytes,
    compression_speedup,
)

__all__ = [
    "CommBackend",
    "COMM_BACKENDS",
    "create_communicator",
    "CommCostModel",
    "NVLINK_A100",
    "ring_allreduce",
    "RingAllReduceStats",
    "SimCommunicator",
    "ProcCommunicator",
    "ControlBlock",
    "HeartbeatMonitor",
    "Supervisor",
    "WorkerHandle",
    "CommStats",
    "FlatSpec",
    "flatten_arrays",
    "unflatten_array",
    "gradient_arrays",
    "DistributedDataParallel",
    "replicate_model",
    "ALLREDUCE_ALGORITHMS",
    "halving_doubling_allreduce",
    "halving_doubling_time",
    "tree_allreduce",
    "tree_time",
    "Bucket",
    "BucketedSynchronizer",
    "partition_buckets",
    "overlapped_sync_time",
    "HaloStats",
    "VertexPartition",
    "PartitionedIGNNForward",
    "TopKCompressor",
    "CompressedSynchronizer",
    "compressed_bytes",
    "compression_speedup",
]
