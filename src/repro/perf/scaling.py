"""Strong-scaling analysis: speedup curves and Amdahl fits.

Figure 3's multi-GPU rows are strong-scaling measurements; these helpers
turn them into the quantities scaling studies report — speedup and
efficiency per rank count, and the serial fraction recovered by fitting
Amdahl's law:

    T(P) = T(1) · (s + (1 − s) / P)

A small serial fraction ``s`` means the pipeline keeps scaling; the
coalesced all-reduce lowers ``s`` by shrinking the per-step cost that
does not divide by P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ScalingCurve", "amdahl_time", "fit_amdahl"]


def amdahl_time(t1: float, world_size: int, serial_fraction: float) -> float:
    """Amdahl's law: runtime at ``P`` ranks given the 1-rank time."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    return t1 * (serial_fraction + (1.0 - serial_fraction) / world_size)


def fit_amdahl(world_sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares serial fraction from (P, T) measurements.

    With x = 1/P the model is linear: ``T/T1 = s + (1-s) x``; the fit is
    solved in closed form and clipped to [0, 1].
    """
    p = np.asarray(world_sizes, dtype=np.float64)
    t = np.asarray(times, dtype=np.float64)
    if p.shape != t.shape or p.size < 2:
        raise ValueError("need >= 2 matching (P, T) points")
    if 1 not in set(int(v) for v in p):
        raise ValueError("measurements must include P = 1")
    t1 = float(t[np.argmin(np.abs(p - 1))])
    x = 1.0 / p
    y = t / t1
    # y = s (1 - x) + x  →  (y - x) = s (1 - x)
    denom = float(np.sum((1.0 - x) ** 2))
    if denom == 0.0:
        return 0.0
    s = float(np.sum((y - x) * (1.0 - x)) / denom)
    return float(np.clip(s, 0.0, 1.0))


@dataclass(frozen=True)
class ScalingCurve:
    """A strong-scaling measurement series.

    Attributes
    ----------
    world_sizes:
        Rank counts, ascending, starting at 1.
    times:
        Per-epoch (or per-step) times at each rank count.
    """

    world_sizes: Tuple[int, ...]
    times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.world_sizes) != len(self.times) or len(self.times) < 2:
            raise ValueError("need >= 2 matching (P, T) points")
        if self.world_sizes[0] != 1:
            raise ValueError("curve must start at P = 1")
        if list(self.world_sizes) != sorted(self.world_sizes):
            raise ValueError("world_sizes must be ascending")

    @property
    def speedups(self) -> List[float]:
        """T(1) / T(P) per point."""
        t1 = self.times[0]
        return [t1 / t for t in self.times]

    @property
    def efficiencies(self) -> List[float]:
        """speedup / P per point."""
        return [s / p for s, p in zip(self.speedups, self.world_sizes)]

    @property
    def serial_fraction(self) -> float:
        """Amdahl fit over the curve."""
        return fit_amdahl(self.world_sizes, self.times)

    def render(self, label: str = "") -> List[str]:
        rows = [f"{'P':>3} | {'time':>9} | {'speedup':>7} | {'efficiency':>10}"]
        for p, t, s, e in zip(
            self.world_sizes, self.times, self.speedups, self.efficiencies
        ):
            rows.append(f"{p:>3} | {t:>8.3f}s | {s:>6.2f}x | {100 * e:>9.0f}%")
        rows.append(f"Amdahl serial fraction: {100 * self.serial_fraction:.1f}%")
        return rows
