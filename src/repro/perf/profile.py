"""Profiling helpers (the guides' "no optimization without measuring").

:func:`profiled` wraps a code block in :mod:`cProfile` and returns the
hottest functions in a structured form, so performance work on the
samplers and the tensor engine starts from numbers rather than guesses.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["HotSpot", "ProfileReport", "profiled"]


@dataclass(frozen=True)
class HotSpot:
    """One row of a profile: a function and its cost."""

    name: str
    calls: int
    total_seconds: float      # time inside the function itself
    cumulative_seconds: float  # including callees


@dataclass
class ProfileReport:
    """Collected profile of one block."""

    hotspots: List[HotSpot]

    def top(self, n: int = 10) -> List[HotSpot]:
        """The ``n`` hottest functions by self-time."""
        return self.hotspots[:n]

    def find(self, substring: str) -> List[HotSpot]:
        """Hotspots whose qualified name contains ``substring``."""
        return [h for h in self.hotspots if substring in h.name]

    def render(self, n: int = 10) -> List[str]:
        rows = [f"{'self [ms]':>10} | {'cum [ms]':>9} | {'calls':>7} | function"]
        for h in self.top(n):
            rows.append(
                f"{1e3 * h.total_seconds:>10.2f} | {1e3 * h.cumulative_seconds:>9.2f} | "
                f"{h.calls:>7} | {h.name}"
            )
        return rows


@contextmanager
def profiled() -> Iterator[ProfileReport]:
    """Profile the enclosed block.

    Example::

        with profiled() as report:
            sampler.sample_bulk(graph, batches, rng)
        print("\\n".join(report.render(5)))
    """
    profiler = cProfile.Profile()
    report = ProfileReport(hotspots=[])
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        entries = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            filename, line, name = func
            label = f"{filename}:{line}({name})" if line else name
            entries.append(
                HotSpot(
                    name=label,
                    calls=int(nc),
                    total_seconds=float(tt),
                    cumulative_seconds=float(ct),
                )
            )
        entries.sort(key=lambda h: -h.total_seconds)
        report.hotspots = entries
