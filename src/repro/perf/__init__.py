"""Timing utilities: stage timers and epoch breakdowns."""

from .timer import StageTimer, Timer
from .breakdown import EpochBreakdown, project_epoch_time
from .scaling import ScalingCurve, amdahl_time, fit_amdahl
from .profile import HotSpot, ProfileReport, profiled

__all__ = [
    "Timer",
    "StageTimer",
    "EpochBreakdown",
    "project_epoch_time",
    "ScalingCurve",
    "amdahl_time",
    "fit_amdahl",
    "HotSpot",
    "ProfileReport",
    "profiled",
]
