"""Epoch-time breakdown records (the bars of Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EpochBreakdown", "project_epoch_time"]


@dataclass(frozen=True)
class EpochBreakdown:
    """Measured + modeled timing of one training epoch.

    Attributes
    ----------
    sampling_seconds:
        Wall-clock spent in the sampler (serial, one-rank measurement).
    training_seconds:
        Wall-clock in forward/backward/step (serial, one-rank measurement).
    comm_modeled_seconds:
        α–β-modeled all-reduce time for the configured world size.
    world_size:
        Rank count the breakdown is projected for.
    """

    sampling_seconds: float
    training_seconds: float
    comm_modeled_seconds: float
    world_size: int = 1

    @property
    def total_seconds(self) -> float:
        return self.sampling_seconds + self.training_seconds + self.comm_modeled_seconds

    @property
    def sampling_fraction(self) -> float:
        t = self.total_seconds
        return self.sampling_seconds / t if t else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "world_size": float(self.world_size),
            "sampling_s": self.sampling_seconds,
            "training_s": self.training_seconds,
            "comm_s": self.comm_modeled_seconds,
            "total_s": self.total_seconds,
        }


def project_epoch_time(
    serial: EpochBreakdown, world_size: int, comm_modeled_seconds: float
) -> EpochBreakdown:
    """Project a one-rank measured breakdown onto ``P`` ranks.

    DDP shards every batch across ranks, so compute (sampling + training)
    divides by ``P`` while the all-reduce cost, supplied by the α–β model
    for that ``P``, is added per step.  This is the standard strong-scaling
    projection; EXPERIMENTS.md documents that Figure-3 epoch times at
    P > 1 are modeled this way (we have one CPU, not four A100s).
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    return EpochBreakdown(
        sampling_seconds=serial.sampling_seconds / world_size,
        training_seconds=serial.training_seconds / world_size,
        comm_modeled_seconds=comm_modeled_seconds,
        world_size=world_size,
    )
