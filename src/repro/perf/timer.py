"""Hierarchical wall-clock timers.

Figure 3 decomposes epoch time into *sampling* and *training*; the
trainers wrap those phases in named timer scopes and the bench harness
reads the totals back.

:class:`StageTimer` scopes also delegate to the active tracer
(:func:`repro.obs.get_tracer`): every outermost scope of a stage emits
one span with the stage's name, so the same stop/start pair feeds both
the accumulated totals *and* the exported trace — the two systems can
never disagree.  With telemetry off the delegation hits the shared null
tracer and costs nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..obs import get_tracer

__all__ = ["Timer", "StageTimer"]


@dataclass
class Timer:
    """Accumulating stopwatch."""

    total: float = 0.0
    count: int = 0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("timer already running")
        self._running = True
        self._start = time.perf_counter()

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("timer not running")
        elapsed = time.perf_counter() - self._start
        self.total += elapsed
        self.count += 1
        self._running = False
        return elapsed

    def elapsed(self) -> float:
        """Accumulated time, including the currently running interval.

        Unlike :attr:`total` this is readable while the timer runs, so
        progress reporting can observe a live stage without stopping it.
        """
        if self._running:
            return self.total + (time.perf_counter() - self._start)
        return self.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        if self._running:
            raise RuntimeError("cannot reset a running timer")
        self.total = 0.0
        self.count = 0


class StageTimer:
    """Named timer registry with context-manager scopes.

    Scopes are re-entrant per name: nesting ``scope("epoch")`` inside an
    open ``scope("epoch")`` is legal and only the *outermost* entry
    starts/stops the underlying timer (so totals never double-count a
    nested interval).  Each outermost scope also emits one tracer span
    named after the stage.

    Example::

        timers = StageTimer()
        with timers.scope("sampling"):
            batch = sampler.sample(...)
        with timers.scope("training"):
            step(batch)
        timers.total("sampling")
    """

    def __init__(self, tracer=None) -> None:
        self._timers: Dict[str, Timer] = {}
        self._depths: Dict[str, int] = {}
        self._tracer = tracer

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer()
        return self._timers[name]

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        t = self[name]
        depth = self._depths.get(name, 0)
        self._depths[name] = depth + 1
        if depth:
            # re-entrant: the outer scope already holds the stopwatch
            try:
                yield
            finally:
                self._depths[name] -= 1
            return
        tracer = self._tracer if self._tracer is not None else get_tracer()
        t.start()
        try:
            with tracer.span(name, category="stage"):
                yield
        finally:
            t.stop()
            self._depths[name] -= 1

    def total(self, name: str) -> float:
        return self[name].total

    def totals(self) -> Dict[str, float]:
        return {name: t.total for name, t in self._timers.items()}

    def reset(self) -> None:
        for t in self._timers.values():
            t.reset()
