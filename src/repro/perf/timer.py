"""Hierarchical wall-clock timers.

Figure 3 decomposes epoch time into *sampling* and *training*; the
trainers wrap those phases in named timer scopes and the bench harness
reads the totals back.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Timer", "StageTimer"]


@dataclass
class Timer:
    """Accumulating stopwatch."""

    total: float = 0.0
    count: int = 0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("timer already running")
        self._running = True
        self._start = time.perf_counter()

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("timer not running")
        elapsed = time.perf_counter() - self._start
        self.total += elapsed
        self.count += 1
        self._running = False
        return elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        if self._running:
            raise RuntimeError("cannot reset a running timer")
        self.total = 0.0
        self.count = 0


class StageTimer:
    """Named timer registry with context-manager scopes.

    Example::

        timers = StageTimer()
        with timers.scope("sampling"):
            batch = sampler.sample(...)
        with timers.scope("training"):
            step(batch)
        timers.total("sampling")
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer()
        return self._timers[name]

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        t = self[name]
        t.start()
        try:
            yield
        finally:
            t.stop()

    def total(self, name: str) -> float:
        return self[name].total

    def totals(self) -> Dict[str, float]:
        return {name: t.total for name, t in self._timers.items()}

    def reset(self) -> None:
        for t in self._timers.values():
            t.reset()
