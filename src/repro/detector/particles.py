"""Charged-particle generation (the "particle gun").

Samples particle kinematics with distributions qualitatively matching LHC
minimum-bias production: a steeply falling transverse-momentum spectrum,
flat azimuth, flat pseudorapidity within acceptance, and a luminous region
spread along the beam line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Particle", "ParticleGun"]

# pT [GeV] → transverse helix radius [mm] in field B [T]: R = pT / (0.3 B) in
# metres, i.e. 1000 pT / (0.3 B) in mm.
MM_PER_GEV_PER_TESLA = 1000.0 / 0.3


@dataclass(frozen=True)
class Particle:
    """Truth record for one generated charged particle.

    Attributes
    ----------
    particle_id:
        Positive integer id (0 is reserved for noise hits).
    pt:
        Transverse momentum [GeV].
    phi0:
        Initial azimuthal direction [rad].
    eta:
        Pseudorapidity; ``pz = pt * sinh(eta)``.
    charge:
        ±1.
    vx, vy, vz:
        Production vertex [mm].
    """

    particle_id: int
    pt: float
    phi0: float
    eta: float
    charge: int
    vx: float
    vy: float
    vz: float

    def helix_radius_mm(self, field_tesla: float) -> float:
        """Transverse bending radius in the given solenoid field [mm]."""
        return self.pt * MM_PER_GEV_PER_TESLA / field_tesla


class ParticleGun:
    """Samples :class:`Particle` batches.

    Parameters
    ----------
    pt_min, pt_max:
        Transverse momentum range [GeV].  Sampled from a ``1/pt`` spectrum
        (the log-uniform limit of the falling QCD spectrum).
    eta_max:
        Pseudorapidity acceptance ``|eta| <= eta_max``.
    vertex_sigma_z:
        Gaussian spread of the luminous region along the beam [mm].
    vertex_sigma_xy:
        Transverse beam-spot size [mm].
    """

    def __init__(
        self,
        pt_min: float = 0.5,
        pt_max: float = 10.0,
        eta_max: float = 1.5,
        vertex_sigma_z: float = 30.0,
        vertex_sigma_xy: float = 0.01,
    ) -> None:
        if not 0 < pt_min < pt_max:
            raise ValueError("need 0 < pt_min < pt_max")
        if eta_max <= 0:
            raise ValueError("eta_max must be positive")
        self.pt_min = pt_min
        self.pt_max = pt_max
        self.eta_max = eta_max
        self.vertex_sigma_z = vertex_sigma_z
        self.vertex_sigma_xy = vertex_sigma_xy

    def sample(self, n: int, rng: np.random.Generator, first_id: int = 1) -> list:
        """Generate ``n`` particles with ids ``first_id .. first_id+n-1``."""
        if n < 0:
            raise ValueError("n must be non-negative")
        log_lo, log_hi = np.log(self.pt_min), np.log(self.pt_max)
        pts = np.exp(rng.uniform(log_lo, log_hi, size=n))
        phis = rng.uniform(-np.pi, np.pi, size=n)
        etas = rng.uniform(-self.eta_max, self.eta_max, size=n)
        charges = rng.choice([-1, 1], size=n)
        vxs = rng.normal(0.0, self.vertex_sigma_xy, size=n)
        vys = rng.normal(0.0, self.vertex_sigma_xy, size=n)
        vzs = rng.normal(0.0, self.vertex_sigma_z, size=n)
        return [
            Particle(
                particle_id=first_id + i,
                pt=float(pts[i]),
                phi0=float(phis[i]),
                eta=float(etas[i]),
                charge=int(charges[i]),
                vx=float(vxs[i]),
                vy=float(vys[i]),
                vz=float(vzs[i]),
            )
            for i in range(n)
        ]
