"""Hit and edge feature extraction.

Table I of the paper records the feature dimensionality per dataset: CTD
events carry 14 vertex features and 8 edge features, Ex3 events carry 6
and 2.  Two feature schemes reproduce those widths:

* ``"compact"`` (Ex3-like) — 6 vertex / 2 edge features;
* ``"rich"`` (CTD-like) — 14 vertex / 8 edge features.

All features are deterministic functions of the smeared hit positions and
the detector geometry, scaled to O(1) so the MLPs train without input
normalisation layers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .events import Event
from .geometry import DetectorGeometry

__all__ = [
    "FEATURE_SCHEMES",
    "vertex_features",
    "edge_features",
    "feature_dims",
]

FEATURE_SCHEMES = ("compact", "rich")


def feature_dims(scheme: str) -> Tuple[int, int]:
    """Return ``(vertex_dim, edge_dim)`` for a scheme name."""
    if scheme == "compact":
        return 6, 2
    if scheme == "rich":
        return 14, 8
    raise ValueError(f"unknown feature scheme {scheme!r}; choose from {FEATURE_SCHEMES}")


def _cylindrical(event: Event) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    x, y, z = event.positions.T
    return np.hypot(x, y), np.arctan2(y, x), z


def vertex_features(event: Event, geometry: DetectorGeometry, scheme: str) -> np.ndarray:
    """Per-hit feature matrix ``(n, f_v)`` under the given scheme."""
    r, phi, z = _cylindrical(event)
    x, y, _ = event.positions.T
    r_scale = geometry.max_radius
    z_scale = max(l.half_length for l in geometry.barrel)
    rho = np.sqrt(r * r + z * z)
    # pseudorapidity of the hit position (w.r.t. origin)
    theta = np.arctan2(r, z)
    eta = -np.log(np.clip(np.tan(theta / 2.0), 1e-9, None))

    if scheme == "compact":
        feats = np.stack(
            [
                r / r_scale,
                phi / np.pi,
                z / z_scale,
                x / r_scale,
                y / r_scale,
                eta / 3.0,
            ],
            axis=1,
        )
    elif scheme == "rich":
        layer_norm = event.layer_ids / max(geometry.num_layers - 1, 1)
        feats = np.stack(
            [
                r / r_scale,
                phi / np.pi,
                z / z_scale,
                x / r_scale,
                y / r_scale,
                eta / 3.0,
                np.cos(phi),
                np.sin(phi),
                layer_norm,
                theta / np.pi,
                rho / np.hypot(r_scale, z_scale),
                np.abs(z) / z_scale,
                z / np.clip(r, 1e-6, None) / 10.0,  # cot(theta), clipped scale
                (r * phi) / (r_scale * np.pi),      # arc-length coordinate
            ],
            axis=1,
        )
    else:
        raise ValueError(f"unknown feature scheme {scheme!r}")
    return feats.astype(np.float32)


def edge_features(
    event: Event, geometry: DetectorGeometry, edge_index: np.ndarray, scheme: str
) -> np.ndarray:
    """Per-edge feature matrix ``(m, f_e)`` for the candidate edges.

    Edge features are geometric deltas between the two endpoint hits —
    exactly the quantities the acorn filter uses to reject implausible
    segments (a true segment has small Δφ and Δη and a modest radial gap).
    """
    r, phi, z = _cylindrical(event)
    theta = np.arctan2(r, z)
    eta = -np.log(np.clip(np.tan(theta / 2.0), 1e-9, None))
    src, dst = np.asarray(edge_index, dtype=np.int64)
    r_scale = geometry.max_radius
    z_scale = max(l.half_length for l in geometry.barrel)

    dr = (r[dst] - r[src]) / r_scale
    dphi = np.arctan2(np.sin(phi[dst] - phi[src]), np.cos(phi[dst] - phi[src])) / np.pi

    if scheme == "compact":
        feats = np.stack([dr, dphi], axis=1)
    elif scheme == "rich":
        dz = (z[dst] - z[src]) / z_scale
        deta = (eta[dst] - eta[src]) / 3.0
        dist = np.linalg.norm(
            event.positions[dst] - event.positions[src], axis=1
        ) / np.hypot(r_scale, z_scale)
        dtheta = (theta[dst] - theta[src]) / np.pi
        mean_r = 0.5 * (r[dst] + r[src]) / r_scale
        # transverse curvature proxy: Δφ per unit Δr (∝ 1/pT for true segments)
        with np.errstate(divide="ignore", invalid="ignore"):
            curv = np.where(np.abs(dr) > 1e-9, dphi / dr, 0.0)
        curv = np.clip(curv, -10.0, 10.0) / 10.0
        feats = np.stack([dr, dphi, dz, deta, dist, dtheta, mean_r, curv], axis=1)
    else:
        raise ValueError(f"unknown feature scheme {scheme!r}")
    return feats.astype(np.float32)
