"""Synthetic HEP detector simulation and dataset registry.

Stands in for the gated CTD / Ex3 datasets: helical charged particles in a
solenoid field are propagated through a cylindrical silicon tracker, hits
are digitised with inefficiency, smearing and noise, and candidate-segment
graphs are built with feature widths matching Table I of the paper.
"""

from .geometry import BarrelLayer, DetectorGeometry, EndcapDisk
from .particles import Particle, ParticleGun
from .propagation import TrueHit, helix_position, propagate, propagate_with_scattering
from .events import Event, EventSimulator
from .features import FEATURE_SCHEMES, edge_features, feature_dims, vertex_features
from .builders import GeometricBuilderConfig, build_candidate_graph, label_edges
from .fitting import HelixFit, fit_event_tracks, fit_helix, pt_resolution
from .module_map import ModuleMap, ModuleMapConfig
from .display import event_display_svg
from .pileup import generate_pileup_event, merge_events
from .datasets import (
    DATASET_REGISTRY,
    DatasetConfig,
    TrackingDataset,
    dataset_config,
    make_dataset,
    summarize,
)

__all__ = [
    "BarrelLayer",
    "EndcapDisk",
    "DetectorGeometry",
    "Particle",
    "ParticleGun",
    "TrueHit",
    "helix_position",
    "propagate",
    "propagate_with_scattering",
    "Event",
    "EventSimulator",
    "FEATURE_SCHEMES",
    "feature_dims",
    "vertex_features",
    "edge_features",
    "ModuleMap",
    "ModuleMapConfig",
    "event_display_svg",
    "merge_events",
    "generate_pileup_event",
    "HelixFit",
    "fit_helix",
    "fit_event_tracks",
    "pt_resolution",
    "GeometricBuilderConfig",
    "build_candidate_graph",
    "label_edges",
    "DatasetConfig",
    "TrackingDataset",
    "DATASET_REGISTRY",
    "dataset_config",
    "make_dataset",
    "summarize",
]
