"""Module-map graph construction.

The production ATLAS GNN pipeline offers two ways to build the candidate
graph: the metric-learning embedding (Stages 1–2 here) and the **module
map** — a data-driven lookup of which detector-element pairs have ever
been connected by a true track segment in a training sample.  The module
map needs no learned embedding and is exactly reproducible, at the price
of generalising only to the geometry it was built on.

This implementation discretises each surface into (layer, φ-sector,
z-sector) *cells*; the map records every (source cell → destination cell)
pair observed among truth segments, plus per-layer-pair kinematic bounds
(Δφ, Δz) that tighten the connections at inference.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Sequence, Set, Tuple

import numpy as np

from ..graph import EventGraph
from .builders import label_edges
from .events import Event
from .features import edge_features, vertex_features
from .geometry import DetectorGeometry

__all__ = ["ModuleMapConfig", "ModuleMap"]

Cell = Tuple[int, int, int]  # (layer, phi sector, z sector)


@dataclass(frozen=True)
class ModuleMapConfig:
    """Discretisation and safety margins of the module map.

    Parameters
    ----------
    num_phi_sectors:
        φ bins per layer (ATLAS module maps are per-silicon-module; a
        sector granularity is the scaled equivalent).  Finer sectors raise
        purity but need proportionally more training events to cover the
        connection space — with the defaults, ~40 events reach ≈0.9 segment
        efficiency on the synthetic detector.
    num_z_sectors:
        z bins per layer.
    window_margin:
        Fractional widening of the learned Δφ/Δz bounds (covers the tails
        unseen in a finite training sample).
    feature_scheme:
        Feature set attached to built graphs.
    """

    num_phi_sectors: int = 16
    num_z_sectors: int = 8
    window_margin: float = 0.2
    feature_scheme: str = "compact"

    def __post_init__(self) -> None:
        if self.num_phi_sectors < 1 or self.num_z_sectors < 1:
            raise ValueError("sector counts must be positive")
        if self.window_margin < 0:
            raise ValueError("window_margin must be non-negative")


class ModuleMap:
    """Learn cell connectivity from truth, build candidate graphs from it.

    Usage::

        mm = ModuleMap(geometry, ModuleMapConfig())
        mm.fit(train_events)
        graph = mm.build(test_event)
    """

    def __init__(self, geometry: DetectorGeometry, config: ModuleMapConfig) -> None:
        self.geometry = geometry
        self.config = config
        self._connections: Dict[Cell, Set[Cell]] = defaultdict(set)
        # per layer pair: (dphi_min, dphi_max, dz_min, dz_max)
        self._bounds: Dict[Tuple[int, int], Tuple[float, float, float, float]] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def _z_scale(self) -> float:
        return max(l.half_length for l in self.geometry.barrel)

    def _cells_of(self, event: Event) -> np.ndarray:
        """(n, 3) integer cell coordinates per hit."""
        r, phi, z = event.cylindrical()
        phi_bin = np.floor(
            (phi + np.pi) / (2 * np.pi) * self.config.num_phi_sectors
        ).astype(np.int64)
        phi_bin = np.clip(phi_bin, 0, self.config.num_phi_sectors - 1)
        zs = self._z_scale()
        z_bin = np.floor((z + zs) / (2 * zs) * self.config.num_z_sectors).astype(np.int64)
        z_bin = np.clip(z_bin, 0, self.config.num_z_sectors - 1)
        return np.stack([event.layer_ids, phi_bin, z_bin], axis=1)

    # ------------------------------------------------------------------
    def fit(self, events: Sequence[Event]) -> "ModuleMap":
        """Record the cell pairs and kinematic bounds of truth segments."""
        if not events:
            raise ValueError("no training events")
        per_pair: Dict[Tuple[int, int], list] = defaultdict(list)
        for event in events:
            cells = self._cells_of(event)
            _, phi, z = event.cylindrical()
            seg = event.true_segments()
            for a, b in seg.T:
                ca = tuple(int(v) for v in cells[a])
                cb = tuple(int(v) for v in cells[b])
                # orient inner → outer layer
                if ca[0] > cb[0]:
                    ca, cb = cb, ca
                    a, b = b, a
                self._connections[ca].add(cb)
                dphi = float(np.arctan2(np.sin(phi[b] - phi[a]), np.cos(phi[b] - phi[a])))
                dz = float(z[b] - z[a])
                per_pair[(ca[0], cb[0])].append((dphi, dz))
        for pair, deltas in per_pair.items():
            arr = np.asarray(deltas)
            dphi_lo, dphi_hi = arr[:, 0].min(), arr[:, 0].max()
            dz_lo, dz_hi = arr[:, 1].min(), arr[:, 1].max()
            m = self.config.window_margin
            dphi_pad = m * max(dphi_hi - dphi_lo, 1e-3)
            dz_pad = m * max(dz_hi - dz_lo, 1e-3)
            self._bounds[pair] = (
                dphi_lo - dphi_pad,
                dphi_hi + dphi_pad,
                dz_lo - dz_pad,
                dz_hi + dz_pad,
            )
        self._fitted = True
        return self

    @property
    def num_connections(self) -> int:
        """Number of distinct (source cell → destination cell) links."""
        return sum(len(v) for v in self._connections.values())

    # ------------------------------------------------------------------
    def build(self, event: Event) -> EventGraph:
        """Construct the candidate graph of one event from the map."""
        if not self._fitted:
            raise RuntimeError("module map not fitted")
        cells = self._cells_of(event)
        _, phi, z = event.cylindrical()

        # index hits by cell
        by_cell: Dict[Cell, list] = defaultdict(list)
        for i in range(event.num_hits):
            by_cell[tuple(int(v) for v in cells[i])].append(i)

        srcs, dsts = [], []
        for ca, hit_list in by_cell.items():
            targets = self._connections.get(ca)
            if not targets:
                continue
            a_idx = np.asarray(hit_list, dtype=np.int64)
            for cb in targets:
                b_hits = by_cell.get(cb)
                if not b_hits:
                    continue
                b_idx = np.asarray(b_hits, dtype=np.int64)
                aa = np.repeat(a_idx, b_idx.size)
                bb = np.tile(b_idx, a_idx.size)
                bounds = self._bounds.get((ca[0], cb[0]))
                if bounds is not None:
                    dphi = np.arctan2(np.sin(phi[bb] - phi[aa]), np.cos(phi[bb] - phi[aa]))
                    dz = z[bb] - z[aa]
                    ok = (
                        (dphi >= bounds[0])
                        & (dphi <= bounds[1])
                        & (dz >= bounds[2])
                        & (dz <= bounds[3])
                    )
                    aa, bb = aa[ok], bb[ok]
                srcs.append(aa)
                dsts.append(bb)
        if srcs:
            edge_index = np.stack([np.concatenate(srcs), np.concatenate(dsts)])
            # dedupe (a hit pair can match through several cell links)
            n = event.num_hits
            keys = edge_index[0] * np.int64(n) + edge_index[1]
            _, keep = np.unique(keys, return_index=True)
            edge_index = edge_index[:, np.sort(keep)]
        else:
            edge_index = np.zeros((2, 0), dtype=np.int64)

        return EventGraph(
            edge_index=edge_index,
            x=vertex_features(event, self.geometry, self.config.feature_scheme),
            y=edge_features(event, self.geometry, edge_index, self.config.feature_scheme),
            edge_labels=label_edges(event, edge_index),
            particle_ids=event.particle_ids,
            event_id=event.event_id,
        )

    def edge_efficiency(self, event: Event) -> float:
        """Fraction of truth segments the built graph contains."""
        graph = self.build(event)
        segments = event.true_segments()
        if segments.shape[1] == 0:
            return 1.0
        n = event.num_hits
        built = set((graph.edge_index[0] * n + graph.edge_index[1]).tolist())
        built |= set((graph.edge_index[1] * n + graph.edge_index[0]).tolist())
        hit = sum(1 for a, b in segments.T if int(a) * n + int(b) in built)
        return hit / segments.shape[1]
