"""Event pileup: overlaying collisions.

At the HL-LHC many proton–proton collisions occur per bunch crossing
("pileup"); the detector records the union of all their hits.  Pileup is
what drives the combinatorial explosion the paper's introduction cites —
"traditional reconstruction algorithms scale superlinearly with the
number of collisions" — so the scaling bench needs a way to dial it.

:func:`merge_events` overlays events into one: hits are concatenated,
particle ids re-offset to stay globally unique, and the result behaves
exactly like a single denser event everywhere downstream.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .events import Event
from .geometry import DetectorGeometry
from .particles import Particle

__all__ = ["merge_events", "generate_pileup_event"]


def merge_events(events: Sequence[Event], event_id: int = 0) -> Event:
    """Overlay events into a single bunch crossing.

    Particle ids of event ``i`` are offset by the maximum id of events
    ``0..i-1`` so tracks remain distinguishable; noise hits (id 0) stay 0.
    """
    if not events:
        raise ValueError("need at least one event")
    positions, layer_ids, particle_ids, hit_order = [], [], [], []
    particles: List[Particle] = []
    offset = 0
    for ev in events:
        positions.append(ev.positions)
        layer_ids.append(ev.layer_ids)
        pids = ev.particle_ids.copy()
        pids[pids > 0] += offset
        particle_ids.append(pids)
        hit_order.append(ev.hit_order)
        for p in ev.particles:
            particles.append(
                Particle(
                    particle_id=p.particle_id + offset,
                    pt=p.pt,
                    phi0=p.phi0,
                    eta=p.eta,
                    charge=p.charge,
                    vx=p.vx,
                    vy=p.vy,
                    vz=p.vz,
                )
            )
        local_max = int(ev.particle_ids.max(initial=0))
        gen_max = max((p.particle_id for p in ev.particles), default=0)
        offset += max(local_max, gen_max)
    return Event(
        positions=np.concatenate(positions, axis=0)
        if positions
        else np.zeros((0, 3)),
        layer_ids=np.concatenate(layer_ids),
        particle_ids=np.concatenate(particle_ids),
        hit_order=np.concatenate(hit_order),
        particles=particles,
        event_id=event_id,
    )


def generate_pileup_event(
    simulator,
    num_collisions: int,
    rng: np.random.Generator,
    event_id: int = 0,
) -> Event:
    """Generate ``num_collisions`` collisions and overlay them."""
    if num_collisions < 1:
        raise ValueError("num_collisions must be >= 1")
    events = [
        simulator.generate(
            np.random.default_rng(rng.integers(2**63)), event_id=event_id
        )
        for _ in range(num_collisions)
    ]
    return merge_events(events, event_id=event_id)
