"""SVG event displays (no plotting dependencies).

Renders the transverse (x–y) view of an event: detector layers as
circles, hits as dots coloured by truth particle, and — optionally —
reconstructed track candidates as polylines.  Useful for documentation
and debugging; the output is a plain SVG string, so the tests can assert
on its structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .events import Event
from .geometry import DetectorGeometry

__all__ = ["event_display_svg"]

# a qualitative palette cycled over particle ids
_PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#222255",
)


def _color_of(pid: int) -> str:
    if pid <= 0:
        return "#999999"  # noise
    return _PALETTE[pid % len(_PALETTE)]


def event_display_svg(
    event: Event,
    geometry: DetectorGeometry,
    candidates: Optional[Sequence[np.ndarray]] = None,
    size: int = 640,
) -> str:
    """Render the transverse view of an event as an SVG string.

    Parameters
    ----------
    event:
        The event to draw.
    geometry:
        Detector description (layer circles).
    candidates:
        Optional reconstructed tracks (hit-index arrays); each is drawn as
        a polyline through its hits ordered by radius.
    size:
        Canvas edge in pixels.
    """
    r_max = geometry.max_radius * 1.08
    scale = size / (2.0 * r_max)

    def to_px(x: float, y: float) -> tuple:
        return (size / 2.0 + x * scale, size / 2.0 - y * scale)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]

    # detector layers
    for layer in geometry.barrel:
        parts.append(
            f'<circle cx="{size / 2}" cy="{size / 2}" r="{layer.radius * scale:.1f}" '
            f'fill="none" stroke="#dddddd" stroke-width="1"/>'
        )

    # track candidates beneath the hits
    if candidates is not None:
        for ci, cand in enumerate(candidates):
            cand = np.asarray(cand, dtype=np.int64)
            if cand.size < 2:
                continue
            pos = event.positions[cand]
            order = np.argsort(np.hypot(pos[:, 0], pos[:, 1]))
            pts = " ".join(
                "{:.1f},{:.1f}".format(*to_px(pos[i, 0], pos[i, 1])) for i in order
            )
            color = _PALETTE[ci % len(_PALETTE)]
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="1.5" opacity="0.7"/>'
            )

    # hits
    for i in range(event.num_hits):
        x, y = to_px(event.positions[i, 0], event.positions[i, 1])
        pid = int(event.particle_ids[i])
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.2" '
            f'fill="{_color_of(pid)}"/>'
        )

    parts.append(
        f'<text x="8" y="{size - 10}" font-family="monospace" font-size="12" '
        f'fill="#555555">event {event.event_id}: {event.num_hits} hits, '
        f'{event.num_reconstructable()} reconstructable particles</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
