"""Dataset registry: CTD-like and Ex3-like tracking datasets.

The paper evaluates on two gated HEP datasets (Table I):

===========  =======  ============  =========  ==========  ========  ========
Name         Graphs   Avg vertices  Avg edges  MLP layers  V feats   E feats
===========  =======  ============  =========  ==========  ========  ========
CTD          80       330.7K        6.9M       3           14        8
Ex3          80       13.0K         47.8K      2           6         2
===========  =======  ============  =========  ==========  ========  ========

We regenerate their *shape* with the synthetic detector: feature widths
and MLP depths match exactly; vertex/edge counts are scaled down by a
recorded factor (CPU budget), preserving the edge-per-vertex density that
drives the paper's memory and sampling behaviour (CTD ≈ 21 edges/vertex,
Ex3 ≈ 3.7 edges/vertex).  Scale factors are reported in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph import EventGraph
from .builders import GeometricBuilderConfig, build_candidate_graph
from .events import EventSimulator
from .geometry import DetectorGeometry
from .particles import ParticleGun

__all__ = [
    "DatasetConfig",
    "TrackingDataset",
    "make_dataset",
    "dataset_config",
    "DATASET_REGISTRY",
    "summarize",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Full recipe for one synthetic tracking dataset.

    Attributes
    ----------
    name:
        Registry key.
    num_train, num_val, num_test:
        Event-graph counts (the paper uses 80/10/10).
    particles_per_event:
        Mean charged multiplicity.
    builder:
        Candidate-graph window parameters (controls edge density).
    mlp_layers:
        Table-I metadata: depth of the MLPs used for this dataset.
    seed:
        Base RNG seed; event ``i`` is generated from ``seed + i``.
    noise_fraction, hit_efficiency:
        Detector imperfection knobs.
    pt_min:
        Lower pT cut [GeV]; lower values add curlier, denser tracks.
    geometry:
        ``"barrel"`` (10-layer cylinder) or ``"with_endcaps"``.
    """

    name: str
    num_train: int = 80
    num_val: int = 10
    num_test: int = 10
    particles_per_event: int = 60
    builder: GeometricBuilderConfig = field(default_factory=GeometricBuilderConfig)
    mlp_layers: int = 2
    seed: int = 20250704
    noise_fraction: float = 0.05
    hit_efficiency: float = 0.98
    pt_min: float = 0.5
    geometry: str = "barrel"

    def __post_init__(self) -> None:
        if self.geometry not in ("barrel", "with_endcaps"):
            raise ValueError(f"unknown geometry {self.geometry!r}")

    def with_sizes(self, num_train: int, num_val: int, num_test: int) -> "DatasetConfig":
        """Return a copy with different split sizes (for fast benches)."""
        return replace(self, num_train=num_train, num_val=num_val, num_test=num_test)


@dataclass
class TrackingDataset:
    """Materialised dataset: train/val/test event-graph lists."""

    config: DatasetConfig
    train: List[EventGraph]
    val: List[EventGraph]
    test: List[EventGraph]

    @property
    def all_graphs(self) -> List[EventGraph]:
        return self.train + self.val + self.test

    def stats(self) -> Dict[str, float]:
        """Table-I-style summary over the training split."""
        graphs = self.train
        if not graphs:
            raise ValueError("empty training split")
        verts = np.array([g.num_nodes for g in graphs], dtype=np.float64)
        edges = np.array([g.num_edges for g in graphs], dtype=np.float64)
        true_frac = np.array([g.true_edge_fraction() for g in graphs])
        return {
            "graphs": float(len(graphs)),
            "avg_vertices": float(verts.mean()),
            "avg_edges": float(edges.mean()),
            "edges_per_vertex": float(edges.sum() / verts.sum()),
            "true_edge_fraction": float(true_frac.mean()),
            "mlp_layers": float(self.config.mlp_layers),
            "vertex_features": float(graphs[0].num_node_features),
            "edge_features": float(graphs[0].num_edge_features),
        }


# ----------------------------------------------------------------------
# Registry.  Window parameters are calibrated (tests pin the resulting
# densities) so that the edge-per-vertex ratios mirror Table I.
# ----------------------------------------------------------------------
DATASET_REGISTRY: Dict[str, DatasetConfig] = {
    # Ex3: small sparse graphs — ~3.7 edges per vertex, 6/2 features,
    # 2-layer MLPs.  Scaled ~1/20 in vertices relative to the paper.
    "ex3_like": DatasetConfig(
        name="ex3_like",
        particles_per_event=70,
        builder=GeometricBuilderConfig(
            dphi_max=0.30,
            dz_max=300.0,
            max_layer_skip=1,
            feature_scheme="compact",
        ),
        mlp_layers=2,
        noise_fraction=0.05,
        seed=1001,
    ),
    # CTD: large dense graphs — ~21 edges per vertex, 14/8 features,
    # 3-layer MLPs.  Scaled ~1/100 in vertices; density preserved via wide
    # windows and 2-layer skips.
    "ctd_like": DatasetConfig(
        name="ctd_like",
        particles_per_event=260,
        builder=GeometricBuilderConfig(
            dphi_max=0.17,
            dz_max=350.0,
            max_layer_skip=3,
            feature_scheme="rich",
        ),
        mlp_layers=3,
        noise_fraction=0.10,
        seed=2001,
        pt_min=0.4,
    ),
    # Forward-region variant: barrel plus endcap disks, higher |eta|
    # acceptance.  Exercises the disk-crossing propagation and the
    # endcap-aware candidate builder.
    "fwd_like": DatasetConfig(
        name="fwd_like",
        particles_per_event=60,
        builder=GeometricBuilderConfig(
            dphi_max=0.30,
            dz_max=300.0,
            max_layer_skip=1,
            feature_scheme="compact",
        ),
        mlp_layers=2,
        noise_fraction=0.05,
        seed=3001,
        geometry="with_endcaps",
    ),
    # Tiny dataset for unit/integration tests and the quickstart example.
    "tiny": DatasetConfig(
        name="tiny",
        num_train=4,
        num_val=2,
        num_test=2,
        particles_per_event=20,
        builder=GeometricBuilderConfig(
            dphi_max=0.30,
            dz_max=300.0,
            max_layer_skip=1,
            feature_scheme="compact",
        ),
        mlp_layers=2,
        noise_fraction=0.05,
        seed=7,
    ),
}


def dataset_config(name: str) -> DatasetConfig:
    """Look up a registered dataset recipe."""
    try:
        return DATASET_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; registered: {sorted(DATASET_REGISTRY)}"
        ) from None


def _default_geometry(config: Optional[DatasetConfig] = None) -> DetectorGeometry:
    if config is not None and config.geometry == "with_endcaps":
        return DetectorGeometry.with_endcaps()
    return DetectorGeometry.barrel_only()


def _make_simulator(config: DatasetConfig, geometry: DetectorGeometry) -> EventSimulator:
    # endcap geometries get a wider pseudorapidity acceptance so that the
    # disks actually collect hits
    eta_max = 2.5 if config.geometry == "with_endcaps" else 1.5
    gun = ParticleGun(pt_min=config.pt_min, eta_max=eta_max)
    return EventSimulator(
        geometry=geometry,
        gun=gun,
        particles_per_event=config.particles_per_event,
        hit_efficiency=config.hit_efficiency,
        noise_fraction=config.noise_fraction,
    )


def make_dataset(
    config_or_name,
    cache_dir: Optional[str] = None,
    geometry: Optional[DetectorGeometry] = None,
) -> TrackingDataset:
    """Generate (or load from cache) a full tracking dataset.

    Parameters
    ----------
    config_or_name:
        A :class:`DatasetConfig` or a registry key.
    cache_dir:
        If given, each split is cached as ``{name}_{split}.npz`` and reused
        on subsequent calls with the same config sizes.
    geometry:
        Detector override (default: 10-layer barrel).
    """
    config = (
        dataset_config(config_or_name)
        if isinstance(config_or_name, str)
        else config_or_name
    )
    geometry = geometry if geometry is not None else _default_geometry(config)

    if cache_dir is not None:
        cached = _load_cached(config, cache_dir)
        if cached is not None:
            return cached

    simulator = _make_simulator(config, geometry)
    splits = {"train": config.num_train, "val": config.num_val, "test": config.num_test}
    graphs: Dict[str, List[EventGraph]] = {}
    event_id = 0
    for split, count in splits.items():
        out = []
        for _ in range(count):
            rng = np.random.default_rng(config.seed + event_id)
            event = simulator.generate(rng, event_id=event_id)
            out.append(build_candidate_graph(event, geometry, config.builder))
            event_id += 1
        graphs[split] = out

    dataset = TrackingDataset(
        config=config, train=graphs["train"], val=graphs["val"], test=graphs["test"]
    )
    if cache_dir is not None:
        _save_cached(dataset, cache_dir)
    return dataset


def summarize(dataset: TrackingDataset) -> str:
    """Render the Table-I row for a dataset."""
    s = dataset.stats()
    return (
        f"{dataset.config.name:>10s} | graphs={int(s['graphs']):3d} "
        f"| avg V={s['avg_vertices']:9.1f} | avg E={s['avg_edges']:10.1f} "
        f"| E/V={s['edges_per_vertex']:5.2f} "
        f"| MLP layers={int(s['mlp_layers'])} "
        f"| Vf={int(s['vertex_features'])} | Ef={int(s['edge_features'])} "
        f"| true frac={s['true_edge_fraction']:.3f}"
    )


# ----------------------------------------------------------------------
# npz cache
# ----------------------------------------------------------------------
def _cache_path(config: DatasetConfig, cache_dir: str, split: str) -> str:
    sizes = f"{config.num_train}-{config.num_val}-{config.num_test}"
    return os.path.join(cache_dir, f"{config.name}_{sizes}_{split}.npz")


def _save_cached(dataset: TrackingDataset, cache_dir: str) -> None:
    from ..io.serialization import save_graphs

    os.makedirs(cache_dir, exist_ok=True)
    for split in ("train", "val", "test"):
        save_graphs(getattr(dataset, split), _cache_path(dataset.config, cache_dir, split))


def _load_cached(config: DatasetConfig, cache_dir: str) -> Optional[TrackingDataset]:
    from ..io.serialization import load_graphs

    paths = {s: _cache_path(config, cache_dir, s) for s in ("train", "val", "test")}
    if not all(os.path.exists(p) for p in paths.values()):
        return None
    return TrackingDataset(
        config=config,
        train=load_graphs(paths["train"]),
        val=load_graphs(paths["val"]),
        test=load_graphs(paths["test"]),
    )
