"""Event simulation: from particle gun to digitised hit collections.

An :class:`Event` is the simulated analogue of one LHC bunch crossing's
detector readout — the unit the Exa.TrkX pipeline builds one graph from.
Generation applies, in order: helix propagation (ideal crossings),
detector inefficiency (random hit loss), position smearing (measurement
resolution), and noise hits (fake clusters uniform over the surfaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .geometry import DetectorGeometry
from .particles import Particle, ParticleGun
from .propagation import TrueHit, propagate

__all__ = ["Event", "EventSimulator"]


@dataclass
class Event:
    """Digitised hits of one simulated collision.

    Hit arrays are parallel; hit order is arbitrary.

    Attributes
    ----------
    positions:
        ``(n, 3)`` smeared (x, y, z) [mm].
    layer_ids:
        ``(n,)`` surface identifier per hit.
    particle_ids:
        ``(n,)`` truth particle per hit; 0 for noise hits.
    hit_order:
        ``(n,)`` index of the hit along its particle's trajectory
        (turning-angle rank); -1 for noise.  Consecutive ranks of the same
        particle define the truth track segments.
    particles:
        The generated particle records (including ones that left no
        reconstructable hits).
    event_id:
        Identifier within the dataset.
    """

    positions: np.ndarray
    layer_ids: np.ndarray
    particle_ids: np.ndarray
    hit_order: np.ndarray
    particles: List[Particle]
    event_id: int = 0

    @property
    def num_hits(self) -> int:
        return self.positions.shape[0]

    def cylindrical(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (r, phi, z) per hit."""
        x, y, z = self.positions.T
        return np.hypot(x, y), np.arctan2(y, x), z

    def true_segments(self) -> np.ndarray:
        """``(2, s)`` hit-index pairs of consecutive same-particle hits.

        These are the ground-truth track segments: an edge of a candidate
        graph is labelled 1 iff it coincides with one of these pairs (in
        either direction).
        """
        pid = self.particle_ids
        order = self.hit_order
        keep = pid > 0
        idx = np.flatnonzero(keep)
        if idx.size == 0:
            return np.zeros((2, 0), dtype=np.int64)
        # sort hits by (particle, order along track)
        sorter = np.lexsort((order[idx], pid[idx]))
        sorted_idx = idx[sorter]
        same_particle = pid[sorted_idx][1:] == pid[sorted_idx][:-1]
        src = sorted_idx[:-1][same_particle]
        dst = sorted_idx[1:][same_particle]
        return np.stack([src, dst]).astype(np.int64)

    def num_reconstructable(self, min_hits: int = 3) -> int:
        """Number of particles leaving at least ``min_hits`` hits."""
        pid = self.particle_ids[self.particle_ids > 0]
        if pid.size == 0:
            return 0
        counts = np.bincount(pid)
        return int(np.sum(counts >= min_hits))


class EventSimulator:
    """Generates :class:`Event` objects.

    Parameters
    ----------
    geometry:
        Detector description.
    gun:
        Particle-kinematics sampler.
    particles_per_event:
        Mean particle multiplicity (Poisson-fluctuated).
    hit_efficiency:
        Probability a true crossing is actually recorded.
    sigma_rphi, sigma_z:
        Gaussian measurement resolution [mm] tangentially and along z.
    noise_fraction:
        Noise hits as a fraction of true hits.
    min_hits:
        Particles with fewer crossings are dropped from the truth (their
        hits are not produced), matching the paper's reconstructable-track
        selection.
    multiple_scattering:
        Material per layer in radiation lengths (x/X₀).  Zero (default)
        propagates exact helices; a few percent applies Highland-width
        Coulomb scattering at every crossing, kinking low-momentum tracks.
    """

    def __init__(
        self,
        geometry: DetectorGeometry,
        gun: Optional[ParticleGun] = None,
        particles_per_event: int = 50,
        hit_efficiency: float = 0.98,
        sigma_rphi: float = 0.5,
        sigma_z: float = 1.0,
        noise_fraction: float = 0.05,
        min_hits: int = 3,
        multiple_scattering: float = 0.0,
    ) -> None:
        if not 0.0 < hit_efficiency <= 1.0:
            raise ValueError("hit_efficiency must be in (0, 1]")
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        if multiple_scattering < 0:
            raise ValueError("multiple_scattering must be non-negative")
        self.geometry = geometry
        self.gun = gun if gun is not None else ParticleGun()
        self.particles_per_event = particles_per_event
        self.hit_efficiency = hit_efficiency
        self.sigma_rphi = sigma_rphi
        self.sigma_z = sigma_z
        self.noise_fraction = noise_fraction
        self.min_hits = min_hits
        self.multiple_scattering = multiple_scattering

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator, event_id: int = 0) -> Event:
        """Generate one event."""
        n_particles = int(rng.poisson(self.particles_per_event))
        particles = self.gun.sample(n_particles, rng)

        xs, ys, zs, layers, pids, orders = [], [], [], [], [], []
        for p in particles:
            if self.multiple_scattering > 0.0:
                from .propagation import propagate_with_scattering

                crossings = propagate_with_scattering(
                    p,
                    self.geometry,
                    rng,
                    radiation_length_fraction=self.multiple_scattering,
                    min_hits=self.min_hits,
                )
            else:
                crossings = propagate(p, self.geometry, min_hits=self.min_hits)
            if not crossings:
                continue
            # inefficiency: drop crossings at random, then re-check min_hits
            keep = rng.random(len(crossings)) < self.hit_efficiency
            survivors = [h for h, k in zip(crossings, keep) if k]
            if len(survivors) < self.min_hits:
                continue
            for rank, h in enumerate(survivors):
                x, y, z = self._smear(h, rng)
                xs.append(x)
                ys.append(y)
                zs.append(z)
                layers.append(h.layer_id)
                pids.append(h.particle_id)
                orders.append(rank)

        n_true = len(xs)
        n_noise = int(round(self.noise_fraction * n_true))
        for _ in range(n_noise):
            x, y, z, lid = self._noise_hit(rng)
            xs.append(x)
            ys.append(y)
            zs.append(z)
            layers.append(lid)
            pids.append(0)
            orders.append(-1)

        positions = np.array([xs, ys, zs], dtype=np.float64).T.reshape(-1, 3)
        event = Event(
            positions=positions,
            layer_ids=np.asarray(layers, dtype=np.int64),
            particle_ids=np.asarray(pids, dtype=np.int64),
            hit_order=np.asarray(orders, dtype=np.int64),
            particles=particles,
            event_id=event_id,
        )
        # shuffle hit order so nothing downstream can rely on generation order
        perm = rng.permutation(event.num_hits)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(len(perm))
        event.positions = event.positions[perm]
        event.layer_ids = event.layer_ids[perm]
        event.particle_ids = event.particle_ids[perm]
        event.hit_order = event.hit_order[perm]
        return event

    # ------------------------------------------------------------------
    def _smear(self, h: TrueHit, rng: np.random.Generator) -> Tuple[float, float, float]:
        """Apply measurement resolution tangentially (r-phi) and in z."""
        r = np.hypot(h.x, h.y)
        phi = np.arctan2(h.y, h.x)
        if r > 0:
            dphi = rng.normal(0.0, self.sigma_rphi) / r
        else:
            dphi = 0.0
        phi += dphi
        z = h.z + rng.normal(0.0, self.sigma_z)
        return float(r * np.cos(phi)), float(r * np.sin(phi)), float(z)

    def _noise_hit(self, rng: np.random.Generator) -> Tuple[float, float, float, int]:
        """Uniform fake hit on a random detector surface."""
        surfaces = list(self.geometry.barrel) + list(self.geometry.endcaps)
        surf = surfaces[int(rng.integers(len(surfaces)))]
        if hasattr(surf, "radius"):  # barrel layer
            phi = rng.uniform(-np.pi, np.pi)
            z = rng.uniform(-surf.half_length, surf.half_length)
            return (
                float(surf.radius * np.cos(phi)),
                float(surf.radius * np.sin(phi)),
                float(z),
                surf.layer_id,
            )
        # endcap disk: uniform in area over the annulus
        phi = rng.uniform(-np.pi, np.pi)
        r = np.sqrt(rng.uniform(surf.r_inner ** 2, surf.r_outer ** 2))
        return float(r * np.cos(phi)), float(r * np.sin(phi)), float(surf.z), surf.layer_id
