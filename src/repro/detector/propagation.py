"""Helix propagation through the detector.

A charged particle in a uniform solenoid field follows a helix: a circle of
radius ``R = pT / (0.3 B)`` in the transverse plane, advancing linearly in
``z`` with slope ``sinh(eta)`` per unit of transverse path length.  This
module intersects that helix with the detector surfaces to produce ideal
(pre-smearing) hit positions.

Parametrisation (turning angle ``t >= 0``)::

    x(t) = vx + (R/q) * (sin(phi0 + q t) - sin(phi0))
    y(t) = vy - (R/q) * (cos(phi0 + q t) - cos(phi0))
    z(t) = vz + R * t * sinh(eta)

with ``q = ±1`` the charge sign.  The transverse trajectory is a circle of
radius ``R`` centred at ``(vx - (R/q) sin phi0, vy + (R/q) cos phi0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .geometry import BarrelLayer, DetectorGeometry, EndcapDisk
from .particles import Particle

__all__ = ["TrueHit", "propagate", "propagate_with_scattering", "helix_position"]

# Cap on the swept turning angle: half a turn.  Low-pT particles curl back
# toward the beam line after t = pi and would re-cross inner layers; real
# pattern recognition treats those as separate track segments, and the
# Exa.TrkX truth definition keeps only the outward-going arc.
MAX_TURNING_ANGLE = np.pi


@dataclass(frozen=True)
class TrueHit:
    """Ideal intersection of a particle helix with a detector surface."""

    particle_id: int
    layer_id: int
    x: float
    y: float
    z: float
    t: float  # turning angle at the intersection (orders hits along the track)


def helix_position(p: Particle, t: np.ndarray, field_tesla: float) -> np.ndarray:
    """Evaluate the helix of particle ``p`` at turning angles ``t``.

    Returns an ``(len(t), 3)`` array of (x, y, z) positions [mm].
    """
    t = np.atleast_1d(np.asarray(t, dtype=np.float64))
    R = p.helix_radius_mm(field_tesla)
    q = float(p.charge)
    x = p.vx + (R / q) * (np.sin(p.phi0 + q * t) - np.sin(p.phi0))
    y = p.vy - (R / q) * (np.cos(p.phi0 + q * t) - np.cos(p.phi0))
    z = p.vz + R * t * np.sinh(p.eta)
    return np.stack([x, y, z], axis=1)


def _barrel_crossing(p: Particle, layer: BarrelLayer, field_tesla: float) -> Optional[float]:
    """Smallest turning angle ``t in (0, pi]`` with ``r(t) == layer.radius``.

    Solved analytically from the transverse circle geometry: with helix
    centre ``C`` at distance ``d`` from the origin and radius ``R``, the
    helix reaches radius ``r_L`` iff ``|d - R| <= r_L <= d + R``.
    """
    R = p.helix_radius_mm(field_tesla)
    q = float(p.charge)
    cx = p.vx - (R / q) * np.sin(p.phi0)
    cy = p.vy + (R / q) * np.cos(p.phi0)
    d = np.hypot(cx, cy)
    r_L = layer.radius
    if r_L > d + R or r_L < np.abs(d - R):
        return None  # layer unreachable (curler or displaced vertex)
    # Law of cosines in the triangle (origin, centre, crossing point):
    # angle at the centre between the crossing point and the beam line.
    cos_alpha = (d * d + R * R - r_L * r_L) / (2.0 * d * R)
    cos_alpha = np.clip(cos_alpha, -1.0, 1.0)
    alpha = np.arccos(cos_alpha)
    # Angle (at the centre) of the starting point:
    phi_start = np.arctan2(p.vy - cy, p.vx - cx)
    phi_beam = np.arctan2(-cy, -cx)
    # Two crossing azimuths around the centre; pick the one reached first.
    # On the helix, the point's azimuth around the centre is
    # phi_start + q*t (for either charge sign).
    candidates = []
    for sign in (+1.0, -1.0):
        phi_cross = phi_beam + sign * alpha
        # solve phi_start + q t ≡ phi_cross (mod 2π) for smallest t > 0
        t = (q * (phi_cross - phi_start)) % (2.0 * np.pi)
        if t > 1e-12:
            candidates.append(t)
    if not candidates:
        return None
    t_min = min(candidates)
    if t_min > MAX_TURNING_ANGLE:
        return None
    # respect the cylinder half-length
    z = p.vz + R * t_min * np.sinh(p.eta)
    if np.abs(z) > layer.half_length:
        return None
    return float(t_min)


def _disk_crossing(p: Particle, disk: EndcapDisk, field_tesla: float) -> Optional[float]:
    """Turning angle at which the helix crosses the disk plane, if inside
    the annulus and within the turning-angle cap."""
    R = p.helix_radius_mm(field_tesla)
    slope = R * np.sinh(p.eta)
    if np.abs(slope) < 1e-12:
        return None  # purely transverse track never reaches a disk
    t = (disk.z - p.vz) / slope
    if t <= 1e-12 or t > MAX_TURNING_ANGLE:
        return None
    pos = helix_position(p, np.array([t]), field_tesla)[0]
    r = np.hypot(pos[0], pos[1])
    if not (disk.r_inner <= r <= disk.r_outer):
        return None
    return float(t)


def propagate_with_scattering(
    p: Particle,
    geometry: DetectorGeometry,
    rng: np.random.Generator,
    radiation_length_fraction: float = 0.02,
    min_hits: int = 3,
) -> List[TrueHit]:
    """Propagate through the barrel with multiple Coulomb scattering.

    Each silicon layer deflects the track by a Gaussian angle with the
    Highland width ``θ₀ ≈ (13.6 MeV / p) · sqrt(x/X₀)``; the trajectory
    between layers stays an exact helix.  Implemented as a sequence of
    single-layer propagations, re-seeding the helix at every crossing with
    the perturbed direction.

    Parameters
    ----------
    p:
        The generated particle.
    rng:
        Source of the scattering angles.
    radiation_length_fraction:
        Material per layer in units of X₀ (a few % for a silicon layer
        plus services).
    min_hits:
        As :func:`propagate`.
    """
    if radiation_length_fraction < 0:
        raise ValueError("radiation_length_fraction must be non-negative")
    B = geometry.solenoid_field_tesla
    momentum = p.pt * np.cosh(p.eta)  # |p| in GeV
    theta0 = 13.6e-3 / max(momentum, 1e-3) * np.sqrt(radiation_length_fraction)

    hits: List[TrueHit] = []
    state = p
    t_accumulated = 0.0
    for layer in geometry.barrel:
        t = _barrel_crossing(state, layer, B)
        if t is None:
            break  # curler or deflected out of reach; outer layers unreachable
        pos = helix_position(state, np.array([t]), B)[0]
        t_accumulated += t
        hits.append(
            TrueHit(
                particle_id=p.particle_id,
                layer_id=layer.layer_id,
                x=float(pos[0]),
                y=float(pos[1]),
                z=float(pos[2]),
                t=t_accumulated,
            )
        )
        # direction at the crossing: tangent of the current helix
        q = float(state.charge)
        phi_here = state.phi0 + q * t
        # scatter: perturb azimuthal direction and dip angle
        dphi = float(rng.normal(0.0, theta0))
        deta = float(rng.normal(0.0, theta0) * np.cosh(state.eta))
        state = Particle(
            particle_id=state.particle_id,
            pt=state.pt,
            phi0=phi_here + dphi,
            eta=state.eta + deta,
            charge=state.charge,
            vx=float(pos[0]),
            vy=float(pos[1]),
            vz=float(pos[2]),
        )
    if len(hits) < min_hits:
        return []
    return hits


def propagate(
    p: Particle, geometry: DetectorGeometry, min_hits: int = 3
) -> List[TrueHit]:
    """Intersect particle ``p`` with every detector surface.

    Returns hits ordered by turning angle (i.e. along the trajectory).
    Particles leaving fewer than ``min_hits`` crossings return an empty
    list — they cannot form a reconstructable track and match the paper's
    truth selection (which requires a minimum number of hits).
    """
    B = geometry.solenoid_field_tesla
    hits: List[TrueHit] = []
    for layer in geometry.barrel:
        t = _barrel_crossing(p, layer, B)
        if t is None:
            continue
        pos = helix_position(p, np.array([t]), B)[0]
        hits.append(
            TrueHit(
                particle_id=p.particle_id,
                layer_id=layer.layer_id,
                x=float(pos[0]),
                y=float(pos[1]),
                z=float(pos[2]),
                t=t,
            )
        )
    for disk in geometry.endcaps:
        t = _disk_crossing(p, disk, B)
        if t is None:
            continue
        pos = helix_position(p, np.array([t]), B)[0]
        hits.append(
            TrueHit(
                particle_id=p.particle_id,
                layer_id=disk.layer_id,
                x=float(pos[0]),
                y=float(pos[1]),
                z=float(pos[2]),
                t=t,
            )
        )
    hits.sort(key=lambda h: h.t)
    if len(hits) < min_hits:
        return []
    return hits
