"""Candidate-graph construction from simulated events.

The GNN stage of the pipeline consumes graphs whose edges are *candidate*
track segments; in production those come from the embedding + filter
stages.  For dataset generation we also provide a direct geometric builder
(connect hits on nearby layers within Δφ/Δz windows) whose window widths
control the edge density — this is how the CTD-like (dense, ~21 edges per
vertex) and Ex3-like (sparse, ~3.7 edges per vertex) registries hit their
Table-I shape targets without training a pipeline first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..graph import EventGraph
from .events import Event
from .features import edge_features, vertex_features
from .geometry import DetectorGeometry

__all__ = ["GeometricBuilderConfig", "build_candidate_graph", "label_edges"]


@dataclass(frozen=True)
class GeometricBuilderConfig:
    """Window parameters of the geometric candidate-graph builder.

    Parameters
    ----------
    dphi_max:
        Maximum azimuthal separation [rad] between connected hits.
    dz_max:
        Maximum longitudinal separation [mm].
    max_layer_skip:
        Connect hits whose layer indices differ by 1..max_layer_skip
        (skipping accounts for detector inefficiency and inflates edge
        density, as in the dense CTD graphs).
    feature_scheme:
        ``"compact"`` or ``"rich"`` (see :mod:`repro.detector.features`).
    """

    dphi_max: float = 0.15
    dz_max: float = 150.0
    max_layer_skip: int = 1
    feature_scheme: str = "compact"

    def __post_init__(self) -> None:
        if self.dphi_max <= 0 or self.dz_max <= 0:
            raise ValueError("window widths must be positive")
        if self.max_layer_skip < 1:
            raise ValueError("max_layer_skip must be >= 1")


def _window_pairs(
    phi: np.ndarray,
    z: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    dphi_max: float,
    dz_max: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """All pairs (a in idx_a, b in idx_b) with |Δφ|<=dphi_max, |Δz|<=dz_max.

    Azimuthal wrap-around is handled by embedding φ on the unit circle:
    the chord distance ``2 sin(Δφ/2)`` is monotone in |Δφ| for |Δφ|≤π, so a
    KD-tree radius query in (cosφ, sinφ, z·s) space with an appropriately
    scaled radius is an exact superset, filtered exactly afterwards.
    """
    if idx_a.size == 0 or idx_b.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    chord = 2.0 * np.sin(min(dphi_max, np.pi) / 2.0)
    # Scale z so that the dz window maps onto the same radius as the chord.
    s = chord / dz_max
    pts_a = np.stack([np.cos(phi[idx_a]), np.sin(phi[idx_a]), z[idx_a] * s], axis=1)
    pts_b = np.stack([np.cos(phi[idx_b]), np.sin(phi[idx_b]), z[idx_b] * s], axis=1)
    tree_b = cKDTree(pts_b)
    # conservative superset radius: sqrt(chord^2 + chord^2)
    radius = np.sqrt(2.0) * chord
    neighbors = cKDTree(pts_a).query_ball_tree(tree_b, r=radius)
    srcs, dsts = [], []
    for i, nbrs in enumerate(neighbors):
        if not nbrs:
            continue
        a = idx_a[i]
        cand = idx_b[np.asarray(nbrs, dtype=np.int64)]
        dphi = np.arctan2(np.sin(phi[cand] - phi[a]), np.cos(phi[cand] - phi[a]))
        ok = (np.abs(dphi) <= dphi_max) & (np.abs(z[cand] - z[a]) <= dz_max)
        good = cand[ok]
        srcs.append(np.full(good.shape, a, dtype=np.int64))
        dsts.append(good)
    if not srcs:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(srcs), np.concatenate(dsts)


def build_candidate_graph(
    event: Event,
    geometry: DetectorGeometry,
    config: GeometricBuilderConfig,
) -> EventGraph:
    """Build the candidate-segment graph of one event.

    Edges run from the inner to the outer layer of each allowed layer pair
    and are labelled against the event's truth segments.
    """
    r, phi, z = event.cylindrical()
    layers = event.layer_ids
    unique_layers = np.unique(layers)
    by_layer = {int(l): np.flatnonzero(layers == l) for l in unique_layers}

    srcs, dsts = [], []
    for la in unique_layers:
        for skip in range(1, config.max_layer_skip + 1):
            lb = int(la) + skip
            if lb not in by_layer:
                continue
            s, d = _window_pairs(
                phi, z, by_layer[int(la)], by_layer[lb], config.dphi_max, config.dz_max
            )
            srcs.append(s)
            dsts.append(d)
    if srcs:
        edge_index = np.stack([np.concatenate(srcs), np.concatenate(dsts)])
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)

    labels = label_edges(event, edge_index)
    return EventGraph(
        edge_index=edge_index,
        x=vertex_features(event, geometry, config.feature_scheme),
        y=edge_features(event, geometry, edge_index, config.feature_scheme),
        edge_labels=labels,
        particle_ids=event.particle_ids,
        event_id=event.event_id,
    )


def label_edges(event: Event, edge_index: np.ndarray) -> np.ndarray:
    """Label candidate edges: 1 iff the pair is a truth segment (either
    orientation), else 0."""
    m = edge_index.shape[1]
    if m == 0:
        return np.zeros(0, dtype=np.int8)
    segments = event.true_segments()
    n = event.num_hits
    truth = set()
    for a, b in segments.T:
        truth.add(int(a) * n + int(b))
        truth.add(int(b) * n + int(a))
    keys = edge_index[0].astype(np.int64) * n + edge_index[1].astype(np.int64)
    labels = np.fromiter((1 if int(k) in truth else 0 for k in keys), dtype=np.int8, count=m)
    return labels
