"""Detector geometry: cylindrical barrel layers and endcap disks.

A simplified silicon tracker in the style of the TrackML / ITk detectors
the Exa.TrkX pipeline targets: concentric barrel cylinders around the beam
axis (z), optionally closed by endcap disks at fixed |z|.  All lengths are
in millimetres, matching HEP convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["BarrelLayer", "EndcapDisk", "DetectorGeometry"]


@dataclass(frozen=True)
class BarrelLayer:
    """A cylindrical detection surface at fixed radius.

    Parameters
    ----------
    radius:
        Cylinder radius [mm].
    half_length:
        Cylinder extends over ``|z| <= half_length`` [mm].
    layer_id:
        Unique layer identifier (used as a hit feature and for truth-edge
        ordering).
    """

    radius: float
    half_length: float
    layer_id: int

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.half_length <= 0:
            raise ValueError("layer dimensions must be positive")


@dataclass(frozen=True)
class EndcapDisk:
    """A disk detection surface at fixed z.

    Parameters
    ----------
    z:
        Disk plane position [mm]; sign selects the side.
    r_inner, r_outer:
        Annulus bounds [mm].
    layer_id:
        Unique layer identifier, disjoint from barrel ids.
    """

    z: float
    r_inner: float
    r_outer: float
    layer_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.r_inner < self.r_outer:
            raise ValueError("need 0 <= r_inner < r_outer")


@dataclass(frozen=True)
class DetectorGeometry:
    """Full detector: ordered barrel layers plus optional endcap disks.

    The default factory methods build geometries loosely modelled on the
    TrackML pixel+short-strip barrel.
    """

    barrel: Tuple[BarrelLayer, ...]
    endcaps: Tuple[EndcapDisk, ...] = ()
    solenoid_field_tesla: float = 2.0

    def __post_init__(self) -> None:
        radii = [l.radius for l in self.barrel]
        if sorted(radii) != radii:
            raise ValueError("barrel layers must be ordered by increasing radius")
        ids = [l.layer_id for l in self.barrel] + [d.layer_id for d in self.endcaps]
        if len(set(ids)) != len(ids):
            raise ValueError("layer ids must be unique")

    @property
    def num_layers(self) -> int:
        return len(self.barrel) + len(self.endcaps)

    @property
    def barrel_radii(self) -> np.ndarray:
        return np.array([l.radius for l in self.barrel])

    @property
    def max_radius(self) -> float:
        return self.barrel[-1].radius if self.barrel else max(d.r_outer for d in self.endcaps)

    @staticmethod
    def barrel_only(
        radii: Sequence[float] = (32.0, 72.0, 116.0, 172.0, 260.0, 360.0, 500.0, 660.0, 820.0, 1020.0),
        half_length: float = 1100.0,
        field_tesla: float = 2.0,
    ) -> "DetectorGeometry":
        """TrackML-like 10-layer barrel (pixel + strip radii, mm)."""
        layers = tuple(
            BarrelLayer(radius=r, half_length=half_length, layer_id=i)
            for i, r in enumerate(radii)
        )
        return DetectorGeometry(barrel=layers, solenoid_field_tesla=field_tesla)

    @staticmethod
    def with_endcaps(
        radii: Sequence[float] = (32.0, 72.0, 116.0, 172.0, 260.0, 360.0),
        half_length: float = 700.0,
        disk_zs: Sequence[float] = (800.0, 950.0, 1100.0, -800.0, -950.0, -1100.0),
        field_tesla: float = 2.0,
    ) -> "DetectorGeometry":
        """Barrel plus three endcap disks per side."""
        barrel = tuple(
            BarrelLayer(radius=r, half_length=half_length, layer_id=i)
            for i, r in enumerate(radii)
        )
        disks = tuple(
            EndcapDisk(z=z, r_inner=30.0, r_outer=max(radii), layer_id=len(radii) + j)
            for j, z in enumerate(disk_zs)
        )
        return DetectorGeometry(barrel=barrel, endcaps=disks, solenoid_field_tesla=field_tesla)
