"""Helix fitting of reconstructed track candidates.

After track building (Stage 5) each candidate is a set of hits; fitting a
helix through them recovers the physics quantities an analysis consumes —
transverse momentum, azimuth, and pseudorapidity.  This module implements
the standard two-step fit used in fast tracking:

1. **transverse plane** — algebraic circle fit (Kåsa method): minimise
   ``Σ (x² + y² + D x + E y + F)²``, a linear least-squares problem whose
   solution gives centre and radius; ``pT = 0.3 · B · R`` with ``R`` in
   metres, GeV, Tesla;
2. **longitudinal** — straight-line fit of ``z`` against the transverse
   arc length ``s``; the slope is ``tan(λ) = sinh(η)``.

The pT pull distribution of fitted-vs-true momenta is the physics-level
closure test of the whole pipeline (see ``examples/physics_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .events import Event
from .particles import MM_PER_GEV_PER_TESLA

__all__ = ["HelixFit", "fit_helix", "fit_event_tracks", "pt_resolution"]


@dataclass(frozen=True)
class HelixFit:
    """Fitted helix parameters of one track candidate.

    Attributes
    ----------
    pt:
        Estimated transverse momentum [GeV].
    phi0:
        Azimuth of the trajectory at its innermost hit [rad].
    eta:
        Estimated pseudorapidity.
    radius_mm:
        Fitted transverse circle radius [mm].
    center:
        Fitted circle centre (x, y) [mm].
    rms_residual_mm:
        RMS transverse distance of hits from the fitted circle.
    num_hits:
        Number of hits used.
    """

    pt: float
    phi0: float
    eta: float
    radius_mm: float
    center: tuple
    rms_residual_mm: float
    num_hits: int


def fit_helix(
    positions: np.ndarray, field_tesla: float = 2.0
) -> Optional[HelixFit]:
    """Fit a helix through hit positions.

    Parameters
    ----------
    positions:
        ``(k, 3)`` hit coordinates [mm], ``k >= 3``.
    field_tesla:
        Solenoid field used to convert curvature to momentum.

    Returns
    -------
    HelixFit or None
        ``None`` when the fit is degenerate (collinear hits produce an
        unbounded radius estimate, which is reported as-is only if finite).
    """
    pts = np.asarray(positions, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"positions must be (k, 3), got {pts.shape}")
    k = pts.shape[0]
    if k < 3:
        return None
    x, y, z = pts.T

    # Kåsa circle fit: x² + y² + D x + E y + F = 0 solved by linear LSQ.
    A = np.stack([x, y, np.ones(k)], axis=1)
    b = -(x * x + y * y)
    try:
        coef, *_ = np.linalg.lstsq(A, b, rcond=None)
    except np.linalg.LinAlgError:
        return None
    D, E, F = coef
    cx, cy = -D / 2.0, -E / 2.0
    r_sq = cx * cx + cy * cy - F
    if not np.isfinite(r_sq) or r_sq <= 0:
        return None
    radius = float(np.sqrt(r_sq))
    pt = radius * field_tesla / MM_PER_GEV_PER_TESLA

    # residuals: distance of each hit from the fitted circle
    dists = np.hypot(x - cx, y - cy)
    rms = float(np.sqrt(np.mean((dists - radius) ** 2)))

    # order hits by distance from the innermost one to get a consistent
    # direction for phi0 and the arc-length parametrisation
    r_hit = np.hypot(x, y)
    order = np.argsort(r_hit)
    xo, yo, zo = x[order], y[order], z[order]

    # tangent direction at the innermost hit: perpendicular to the radius
    # vector from the circle centre, signed toward the second hit
    rad_vec = np.array([xo[0] - cx, yo[0] - cy])
    tangent = np.array([-rad_vec[1], rad_vec[0]])
    step = np.array([xo[1] - xo[0], yo[1] - yo[0]])
    if np.dot(tangent, step) < 0:
        tangent = -tangent
    phi0 = float(np.arctan2(tangent[1], tangent[0]))

    # longitudinal: z vs transverse arc length (chord-accumulated)
    chords = np.hypot(np.diff(xo), np.diff(yo))
    # arc correction: s = 2 R asin(c / 2R) per chord
    ratio = np.clip(chords / (2.0 * radius), -1.0, 1.0)
    arcs = 2.0 * radius * np.arcsin(ratio)
    s = np.concatenate([[0.0], np.cumsum(arcs)])
    if s[-1] <= 0:
        return None
    slope = np.polyfit(s, zo, 1)[0]  # tan(lambda) = sinh(eta)
    eta = float(np.arcsinh(slope))

    return HelixFit(
        pt=float(pt),
        phi0=phi0,
        eta=eta,
        radius_mm=radius,
        center=(float(cx), float(cy)),
        rms_residual_mm=rms,
        num_hits=k,
    )


def fit_event_tracks(
    event: Event,
    candidates: Sequence[np.ndarray],
    field_tesla: float = 2.0,
) -> List[Optional[HelixFit]]:
    """Fit every track candidate of an event (None for degenerate fits)."""
    return [
        fit_helix(event.positions[np.asarray(c, dtype=np.int64)], field_tesla)
        for c in candidates
    ]


def pt_resolution(
    event: Event,
    candidates: Sequence[np.ndarray],
    fits: Sequence[Optional[HelixFit]],
) -> np.ndarray:
    """Relative pT residuals ``(fit - truth) / truth`` for matched tracks.

    A candidate is attributed to the truth particle contributing the most
    hits (majority vote); unmatched or unfitted candidates are skipped.
    """
    truth_pt = {p.particle_id: p.pt for p in event.particles}
    out = []
    for cand, fit in zip(candidates, fits):
        if fit is None:
            continue
        pids = event.particle_ids[np.asarray(cand, dtype=np.int64)]
        pids = pids[pids > 0]
        if pids.size == 0:
            continue
        values, counts = np.unique(pids, return_counts=True)
        best = int(values[np.argmax(counts)])
        if best not in truth_pt:
            continue
        out.append((fit.pt - truth_pt[best]) / truth_pt[best])
    return np.asarray(out)
