"""Event-graph (de)serialisation as ``.npz`` archives.

Each archive packs every graph's arrays under ``g{i}_{field}`` keys plus a
``count`` scalar; graphs round-trip exactly (dtype- and value-identical),
which the property tests verify.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from ..graph import EventGraph

__all__ = ["save_graphs", "load_graphs"]

_FIELDS = ("edge_index", "x", "y", "edge_labels", "particle_ids")


def save_graphs(graphs: List[EventGraph], path: str) -> None:
    """Write a list of graphs to ``path`` (a single compressed npz)."""
    payload = {"count": np.asarray(len(graphs), dtype=np.int64)}
    for i, g in enumerate(graphs):
        payload[f"g{i}_edge_index"] = g.edge_index
        payload[f"g{i}_x"] = g.x
        payload[f"g{i}_y"] = g.y
        payload[f"g{i}_event_id"] = np.asarray(g.event_id, dtype=np.int64)
        if g.edge_labels is not None:
            payload[f"g{i}_edge_labels"] = g.edge_labels
        if g.particle_ids is not None:
            payload[f"g{i}_particle_ids"] = g.particle_ids
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_graphs(path: str) -> List[EventGraph]:
    """Load graphs written by :func:`save_graphs`."""
    with np.load(path) as data:
        count = int(data["count"])
        graphs = []
        for i in range(count):
            graphs.append(
                EventGraph(
                    edge_index=data[f"g{i}_edge_index"],
                    x=data[f"g{i}_x"],
                    y=data[f"g{i}_y"],
                    edge_labels=data.get(f"g{i}_edge_labels"),
                    particle_ids=data.get(f"g{i}_particle_ids"),
                    event_id=int(data[f"g{i}_event_id"]),
                )
            )
    return graphs
