"""Archive layer: atomic, checksummed ``.npz`` (de)serialisation.

Two concerns live here:

* **Event-graph round-trips** — each archive packs every graph's arrays
  under ``g{i}_{field}`` keys plus a ``count`` scalar; graphs round-trip
  exactly (dtype- and value-identical), which the property tests verify.
* **Durability primitives** shared by every checkpoint writer in the
  code base (:mod:`repro.pipeline.persistence`,
  :mod:`repro.pipeline.checkpoint`): :func:`atomic_savez` writes through
  a temp file + ``os.replace`` so a crash mid-write can never leave a
  truncated archive under the target name, and embeds a SHA-256 content
  checksum; :func:`open_archive` verifies that checksum and converts the
  zoo of low-level failure modes (``zipfile.BadZipFile``, zlib errors,
  truncated headers) into one typed :class:`CheckpointError` naming the
  offending path.
"""

from __future__ import annotations

import hashlib
import io
import os
import struct
import tempfile
import zipfile
import zlib
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..graph import EventGraph

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "CHECKSUM_KEY",
    "archive_digest",
    "atomic_savez",
    "atomic_write_bytes",
    "open_archive",
    "clean_stale_tmp",
    "save_graphs",
    "load_graphs",
]

CHECKSUM_KEY = "__checksum__"
_TMP_SUFFIX = ".tmp.npz"


class CheckpointError(RuntimeError):
    """A checkpoint archive is missing, corrupt, or inconsistent."""


class CheckpointCorruptError(CheckpointError):
    """The archive's *bytes* are damaged (bad zip, checksum mismatch).

    Distinct from the plain :class:`CheckpointError` (missing file,
    wrong kind/version, config mismatch) so resume logic can fall back
    to an older checkpoint on media corruption without masking
    configuration mistakes.
    """


def archive_digest(payload: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the archive content (sorted keys; dtype/shape/bytes).

    The :data:`CHECKSUM_KEY` entry itself is excluded so the digest can be
    recomputed from a loaded archive and compared against the stored one.
    """
    h = hashlib.sha256()
    for key in sorted(payload):
        if key == CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        h.update(key.encode("utf-8"))
        h.update(arr.dtype.str.encode("ascii"))
        h.update(repr(arr.shape).encode("ascii"))
        h.update(arr.tobytes())
    return h.hexdigest()


def atomic_savez(path: str, payload: Dict[str, np.ndarray], checksum: bool = True) -> None:
    """Write ``payload`` to ``path`` as a compressed npz, atomically.

    The archive is first written to a temp file in the destination
    directory and then moved over ``path`` with ``os.replace`` — readers
    either see the complete old file or the complete new one, never a
    torn write.  When ``checksum`` is true a SHA-256 digest of the
    content is embedded under :data:`CHECKSUM_KEY` for
    :func:`open_archive` to verify.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if checksum:
        payload = dict(payload)
        payload[CHECKSUM_KEY] = np.frombuffer(
            archive_digest(payload).encode("ascii"), dtype=np.uint8
        )
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=_TMP_SUFFIX)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_bytes(path: str, data: bytes, tmp_suffix: str = ".tmp") -> None:
    """Write ``data`` to ``path`` through a temp file + ``os.replace``.

    The raw-bytes sibling of :func:`atomic_savez`, shared by every
    non-npz durable writer (the event-store shard/manifest files):
    readers either see the complete old file or the complete new one,
    never a torn write.  A crash strands only a ``*{tmp_suffix}`` file,
    which :func:`clean_stale_tmp` sweeps at the next writer startup.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=tmp_suffix)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def clean_stale_tmp(directory: str, suffixes: Tuple[str, ...] = (_TMP_SUFFIX,)) -> List[str]:
    """Remove temp files left by interrupted atomic writes.

    A crash between ``mkstemp`` and ``os.replace`` strands a temp file
    next to the target (``*.tmp.npz`` for :func:`atomic_savez`, ``*.tmp``
    for :func:`atomic_write_bytes`); they are never valid outputs and
    accumulate forever.  Call this once at writer startup — not
    concurrently with another live writer in the same directory, whose
    in-flight temp file would be swept away (its write fails cleanly,
    but the retry costs a write).

    Returns the paths removed (missing directory → nothing to do).
    """
    removed: List[str] = []
    if not os.path.isdir(directory):
        return removed
    for name in sorted(os.listdir(directory)):
        if not name.endswith(tuple(suffixes)):
            continue
        path = os.path.join(directory, name)
        try:
            os.unlink(path)
        except OSError:
            continue  # vanished or unremovable; not worth failing startup
        removed.append(path)
    return removed


def _audit_zip_members(buffer: io.BytesIO) -> None:
    """Cross-check each member's local header against the central directory.

    ``zipfile`` trusts the central directory alone for names, CRCs and
    sizes, so damage to a *local* file header — the redundant filename,
    CRC copy, or the zip64 size extra that ``savez``'s force-zip64
    streams emit — decompresses cleanly and escapes both the member
    CRC-32 and the content checksum.  The two copies were written from
    the same values; any disagreement means the bytes on disk are not
    the bytes that were written.  Raises ``ValueError`` on mismatch.
    """
    with zipfile.ZipFile(buffer) as zf:
        for info in zf.infolist():
            buffer.seek(info.header_offset)
            header = buffer.read(30)
            if len(header) < 30 or header[:4] != b"PK\x03\x04":
                raise ValueError(f"bad local header for {info.filename!r}")
            flags = struct.unpack("<H", header[6:8])[0]
            crc, csize, usize = struct.unpack("<III", header[14:26])
            nlen, elen = struct.unpack("<HH", header[26:30])
            name = buffer.read(nlen)
            extra = buffer.read(elen)
            if len(name) != nlen or len(extra) != elen:
                raise ValueError(f"truncated local header for {info.filename!r}")
            if name.decode("utf-8", "replace") != info.filename:
                raise ValueError(
                    f"local header name disagrees with directory: {name!r}"
                )
            zip64_vals: List[int] = []
            pos = 0
            while pos + 4 <= len(extra):
                tid, tlen = struct.unpack("<HH", extra[pos : pos + 4])
                body = extra[pos + 4 : pos + 4 + tlen]
                if len(body) != tlen:
                    raise ValueError(
                        f"malformed extra field for {info.filename!r}"
                    )
                if tid == 0x0001:  # zip64 extended information
                    zip64_vals = [
                        struct.unpack("<Q", body[i : i + 8])[0]
                        for i in range(0, len(body) - len(body) % 8, 8)
                    ]
                pos += 4 + tlen
            if pos != len(extra):
                raise ValueError(f"malformed extra field for {info.filename!r}")
            if flags & 0x0008:
                continue  # sizes/CRC live in a data descriptor, not here
            fields = iter(zip64_vals)
            if usize == 0xFFFFFFFF:
                usize = next(fields, -1)
            if csize == 0xFFFFFFFF:
                csize = next(fields, -1)
            if (
                crc != info.CRC
                or usize != info.file_size
                or csize != info.compress_size
            ):
                raise ValueError(
                    f"local header disagrees with directory for {info.filename!r}"
                )


def open_archive(path: str, verify: bool = True):
    """Open an npz archive, translating corruption into CheckpointError.

    Parameters
    ----------
    path:
        Archive written by :func:`atomic_savez` (or plain npz).
    verify:
        When true and the archive carries a :data:`CHECKSUM_KEY` entry,
        every array is read back and the SHA-256 digest recomputed; any
        mismatch (bit-flip, truncated member) raises
        :class:`CheckpointError`.

    Returns
    -------
    np.lib.npyio.NpzFile
        The open archive (caller closes it, e.g. via ``with``).
    """
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        # buffer the archive in memory: np.load leaks its file handle when
        # the zip structure is damaged, and checkpoints are small
        with open(path, "rb") as fh:
            buffer = io.BytesIO(fh.read())
        if verify:
            _audit_zip_members(buffer)
            buffer.seek(0)
        archive = np.load(buffer, allow_pickle=False)
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
        raise CheckpointCorruptError(
            f"corrupt or unreadable checkpoint {path!r}: {exc}"
        ) from exc
    if verify and CHECKSUM_KEY in archive.files:
        try:
            content = {key: archive[key] for key in archive.files}
        except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError, KeyError) as exc:
            archive.close()
            raise CheckpointCorruptError(
                f"corrupt or unreadable checkpoint {path!r}: {exc}"
            ) from exc
        stored = bytes(content.pop(CHECKSUM_KEY)).decode("ascii", errors="replace")
        actual = archive_digest(content)
        if stored != actual:
            archive.close()
            raise CheckpointCorruptError(
                f"checksum mismatch in checkpoint {path!r}: "
                f"stored {stored[:12]}…, recomputed {actual[:12]}… "
                "(the file is corrupt)"
            )
    return archive


_FIELDS = ("edge_index", "x", "y", "edge_labels", "particle_ids")


def save_graphs(graphs: List[EventGraph], path: str) -> None:
    """Write a list of graphs to ``path`` (one atomic compressed npz)."""
    payload = {"count": np.asarray(len(graphs), dtype=np.int64)}
    for i, g in enumerate(graphs):
        payload[f"g{i}_edge_index"] = g.edge_index
        payload[f"g{i}_x"] = g.x
        payload[f"g{i}_y"] = g.y
        payload[f"g{i}_event_id"] = np.asarray(g.event_id, dtype=np.int64)
        if g.edge_labels is not None:
            payload[f"g{i}_edge_labels"] = g.edge_labels
        if g.particle_ids is not None:
            payload[f"g{i}_particle_ids"] = g.particle_ids
    atomic_savez(path, payload)


def load_graphs(path: str) -> List[EventGraph]:
    """Load graphs written by :func:`save_graphs`."""
    with open_archive(path) as data:
        count = int(data["count"])
        graphs = []
        for i in range(count):
            graphs.append(
                EventGraph(
                    edge_index=data[f"g{i}_edge_index"],
                    x=data[f"g{i}_x"],
                    y=data[f"g{i}_y"],
                    edge_labels=data.get(f"g{i}_edge_labels"),
                    particle_ids=data.get(f"g{i}_particle_ids"),
                    event_id=int(data[f"g{i}_event_id"]),
                )
            )
    return graphs
