"""TrackML-format interop.

The public TrackML dataset (and the tooling around it — `trackml-library`,
kaggle kernels, the acorn data readers) uses per-event CSV triplets:

* ``event…-hits.csv`` — ``hit_id,x,y,z,volume_id,layer_id,module_id``;
* ``event…-truth.csv`` — ``hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight``;
* ``event…-particles.csv`` — ``particle_id,vx,vy,vz,px,py,pz,q,nhits``.

Exporting the synthetic events in this schema lets the standard HEP
tooling consume them (and makes swapping in the real dataset a matter of
pointing the loader at different files).  Hit ids are 1-based as in
TrackML.

Real TrackML dumps ship gzipped, and a full-detector hits file runs to
hundreds of MB — so the read path accepts ``*.csv.gz`` transparently
(plain path wins when both exist) and iterates hits in bounded chunks
(:func:`iter_trackml_hits`): ingestion never materialises a raw event
file as a Python row list, only fixed-size numpy chunks.
"""

from __future__ import annotations

import csv
import gzip
import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..detector.events import Event
from ..detector.particles import Particle

__all__ = ["export_trackml", "import_trackml", "iter_trackml_hits"]

#: Rows per chunk on the streaming read path; ~1.5 MB of position data.
DEFAULT_CHUNK_ROWS = 65536


def _open_text(path: str):
    """Open ``path`` for text reading, falling back to ``path + '.gz'``."""
    if os.path.exists(path):
        return open(path, newline="")
    gz_path = path + ".gz"
    if os.path.exists(gz_path):
        return gzip.open(gz_path, "rt", newline="")
    raise FileNotFoundError(f"no such file: {path} (nor {gz_path})")


def export_trackml(
    event: Event,
    directory: str,
    prefix: Optional[str] = None,
    compress: bool = False,
) -> Dict[str, str]:
    """Write one event as TrackML-style CSV files.

    Parameters
    ----------
    event:
        The event to export.
    directory:
        Output directory (created if missing).
    prefix:
        File prefix; defaults to ``event{event_id:09d}``.
    compress:
        Write ``*.csv.gz`` instead of plain CSV (the format real
        TrackML dumps ship in; :func:`import_trackml` reads either).

    Returns
    -------
    dict
        Paths of the three written files keyed ``"hits"``, ``"truth"``,
        ``"particles"``.
    """
    prefix = prefix if prefix is not None else f"event{event.event_id:09d}"
    os.makedirs(directory, exist_ok=True)
    suffix = ".csv.gz" if compress else ".csv"
    paths = {
        kind: os.path.join(directory, f"{prefix}-{kind}{suffix}")
        for kind in ("hits", "truth", "particles")
    }

    def _open_out(path: str):
        if compress:
            return gzip.open(path, "wt", newline="")
        return open(path, "w", newline="")

    with _open_out(paths["hits"]) as fh:
        writer = csv.writer(fh)
        writer.writerow(["hit_id", "x", "y", "z", "volume_id", "layer_id", "module_id"])
        for i in range(event.num_hits):
            x, y, z = event.positions[i]
            writer.writerow(
                [i + 1, f"{x:.6g}", f"{y:.6g}", f"{z:.6g}", 0, int(event.layer_ids[i]), 0]
            )

    momenta = {
        p.particle_id: (
            p.pt * np.cos(p.phi0),
            p.pt * np.sin(p.phi0),
            p.pt * np.sinh(p.eta),
        )
        for p in event.particles
    }
    with _open_out(paths["truth"]) as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["hit_id", "particle_id", "tx", "ty", "tz", "tpx", "tpy", "tpz", "weight"]
        )
        for i in range(event.num_hits):
            pid = int(event.particle_ids[i])
            px, py, pz = momenta.get(pid, (0.0, 0.0, 0.0))
            x, y, z = event.positions[i]
            writer.writerow(
                [
                    i + 1,
                    pid,
                    f"{x:.6g}",
                    f"{y:.6g}",
                    f"{z:.6g}",
                    f"{px:.6g}",
                    f"{py:.6g}",
                    f"{pz:.6g}",
                    0.0,
                ]
            )

    with _open_out(paths["particles"]) as fh:
        writer = csv.writer(fh)
        writer.writerow(["particle_id", "vx", "vy", "vz", "px", "py", "pz", "q", "nhits"])
        counts = np.bincount(
            event.particle_ids[event.particle_ids > 0],
            minlength=max((p.particle_id for p in event.particles), default=0) + 1,
        )
        for p in event.particles:
            px, py, pz = momenta[p.particle_id]
            nhits = int(counts[p.particle_id]) if p.particle_id < len(counts) else 0
            writer.writerow(
                [
                    p.particle_id,
                    f"{p.vx:.6g}",
                    f"{p.vy:.6g}",
                    f"{p.vz:.6g}",
                    f"{px:.6g}",
                    f"{py:.6g}",
                    f"{pz:.6g}",
                    p.charge,
                    nhits,
                ]
            )
    return paths


def iter_trackml_hits(
    directory: str, prefix: str, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream a hits CSV (plain or ``.gz``) as ``(positions, layer_ids)`` chunks.

    Each yielded pair holds at most ``chunk_rows`` hits — ``positions``
    is ``(k, 3)`` float64, ``layer_ids`` ``(k,)`` int64 — so a consumer
    (the event-store ingester, a stats pass) can process an arbitrarily
    large event file with bounded memory.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    path = os.path.join(directory, f"{prefix}-hits.csv")
    pos_buf: List[Tuple[float, float, float]] = []
    layer_buf: List[int] = []
    with _open_text(path) as fh:
        for row in csv.DictReader(fh):
            pos_buf.append((float(row["x"]), float(row["y"]), float(row["z"])))
            layer_buf.append(int(row["layer_id"]))
            if len(pos_buf) >= chunk_rows:
                yield (
                    np.asarray(pos_buf, dtype=np.float64).reshape(-1, 3),
                    np.asarray(layer_buf, dtype=np.int64),
                )
                pos_buf, layer_buf = [], []
    if pos_buf:
        yield (
            np.asarray(pos_buf, dtype=np.float64).reshape(-1, 3),
            np.asarray(layer_buf, dtype=np.int64),
        )


def import_trackml(
    directory: str,
    prefix: str,
    event_id: int = 0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Event:
    """Read an event written by :func:`export_trackml` (or real TrackML
    files with the same columns), accepting gzipped (``*.csv.gz``) files.

    Hits and truth stream through fixed-size chunks (never a whole-file
    Python row list); the ``hit_order`` along each track is
    reconstructed by sorting each particle's hits by distance from its
    production vertex — for barrel events that matches the turning-angle
    order.
    """
    truth_path = os.path.join(directory, f"{prefix}-truth.csv")
    particles_path = os.path.join(directory, f"{prefix}-particles.csv")

    pos_chunks: List[np.ndarray] = []
    layer_chunks: List[np.ndarray] = []
    for pos_chunk, layer_chunk in iter_trackml_hits(directory, prefix, chunk_rows):
        pos_chunks.append(pos_chunk)
        layer_chunks.append(layer_chunk)
    pos = (
        np.concatenate(pos_chunks)
        if pos_chunks
        else np.empty((0, 3), dtype=np.float64)
    )
    layer_ids = (
        np.concatenate(layer_chunks) if layer_chunks else np.empty(0, dtype=np.int64)
    )

    particle_ids = np.zeros(len(pos), dtype=np.int64)
    hit_buf: List[int] = []
    pid_buf: List[int] = []
    with _open_text(truth_path) as fh:
        for row in csv.DictReader(fh):
            hit_buf.append(int(row["hit_id"]))
            pid_buf.append(int(row["particle_id"]))
            if len(hit_buf) >= chunk_rows:
                particle_ids[np.asarray(hit_buf, dtype=np.int64) - 1] = pid_buf
                hit_buf, pid_buf = [], []
    if hit_buf:
        particle_ids[np.asarray(hit_buf, dtype=np.int64) - 1] = pid_buf

    particles: List[Particle] = []
    with _open_text(particles_path) as fh:
        for row in csv.DictReader(fh):
            px, py, pz = float(row["px"]), float(row["py"]), float(row["pz"])
            pt = float(np.hypot(px, py))
            particles.append(
                Particle(
                    particle_id=int(row["particle_id"]),
                    pt=pt,
                    phi0=float(np.arctan2(py, px)),
                    eta=float(np.arcsinh(pz / pt)) if pt > 0 else 0.0,
                    charge=int(float(row["q"])),
                    vx=float(row["vx"]),
                    vy=float(row["vy"]),
                    vz=float(row["vz"]),
                )
            )

    vertex = {p.particle_id: np.array([p.vx, p.vy, p.vz]) for p in particles}
    hit_order = np.full(len(pos), -1, dtype=np.int64)
    for pid in np.unique(particle_ids[particle_ids > 0]):
        idx = np.flatnonzero(particle_ids == pid)
        origin = vertex.get(int(pid), np.zeros(3))
        dist = np.linalg.norm(pos[idx] - origin, axis=1)
        hit_order[idx[np.argsort(dist)]] = np.arange(idx.size)

    return Event(
        positions=pos,
        layer_ids=np.asarray(layer_ids, dtype=np.int64),
        particle_ids=particle_ids,
        hit_order=hit_order,
        particles=particles,
        event_id=event_id,
    )
