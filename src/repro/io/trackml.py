"""TrackML-format interop.

The public TrackML dataset (and the tooling around it — `trackml-library`,
kaggle kernels, the acorn data readers) uses per-event CSV triplets:

* ``event…-hits.csv`` — ``hit_id,x,y,z,volume_id,layer_id,module_id``;
* ``event…-truth.csv`` — ``hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight``;
* ``event…-particles.csv`` — ``particle_id,vx,vy,vz,px,py,pz,q,nhits``.

Exporting the synthetic events in this schema lets the standard HEP
tooling consume them (and makes swapping in the real dataset a matter of
pointing the loader at different files).  Hit ids are 1-based as in
TrackML.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional

import numpy as np

from ..detector.events import Event
from ..detector.particles import Particle

__all__ = ["export_trackml", "import_trackml"]


def export_trackml(event: Event, directory: str, prefix: Optional[str] = None) -> Dict[str, str]:
    """Write one event as TrackML-style CSV files.

    Parameters
    ----------
    event:
        The event to export.
    directory:
        Output directory (created if missing).
    prefix:
        File prefix; defaults to ``event{event_id:09d}``.

    Returns
    -------
    dict
        Paths of the three written files keyed ``"hits"``, ``"truth"``,
        ``"particles"``.
    """
    prefix = prefix if prefix is not None else f"event{event.event_id:09d}"
    os.makedirs(directory, exist_ok=True)
    paths = {
        kind: os.path.join(directory, f"{prefix}-{kind}.csv")
        for kind in ("hits", "truth", "particles")
    }

    with open(paths["hits"], "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["hit_id", "x", "y", "z", "volume_id", "layer_id", "module_id"])
        for i in range(event.num_hits):
            x, y, z = event.positions[i]
            writer.writerow(
                [i + 1, f"{x:.6g}", f"{y:.6g}", f"{z:.6g}", 0, int(event.layer_ids[i]), 0]
            )

    momenta = {
        p.particle_id: (
            p.pt * np.cos(p.phi0),
            p.pt * np.sin(p.phi0),
            p.pt * np.sinh(p.eta),
        )
        for p in event.particles
    }
    with open(paths["truth"], "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["hit_id", "particle_id", "tx", "ty", "tz", "tpx", "tpy", "tpz", "weight"]
        )
        for i in range(event.num_hits):
            pid = int(event.particle_ids[i])
            px, py, pz = momenta.get(pid, (0.0, 0.0, 0.0))
            x, y, z = event.positions[i]
            writer.writerow(
                [
                    i + 1,
                    pid,
                    f"{x:.6g}",
                    f"{y:.6g}",
                    f"{z:.6g}",
                    f"{px:.6g}",
                    f"{py:.6g}",
                    f"{pz:.6g}",
                    0.0,
                ]
            )

    with open(paths["particles"], "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["particle_id", "vx", "vy", "vz", "px", "py", "pz", "q", "nhits"])
        counts = np.bincount(
            event.particle_ids[event.particle_ids > 0],
            minlength=max((p.particle_id for p in event.particles), default=0) + 1,
        )
        for p in event.particles:
            px, py, pz = momenta[p.particle_id]
            nhits = int(counts[p.particle_id]) if p.particle_id < len(counts) else 0
            writer.writerow(
                [
                    p.particle_id,
                    f"{p.vx:.6g}",
                    f"{p.vy:.6g}",
                    f"{p.vz:.6g}",
                    f"{px:.6g}",
                    f"{py:.6g}",
                    f"{pz:.6g}",
                    p.charge,
                    nhits,
                ]
            )
    return paths


def import_trackml(directory: str, prefix: str, event_id: int = 0) -> Event:
    """Read an event written by :func:`export_trackml` (or real TrackML
    files with the same columns).

    The ``hit_order`` along each track is reconstructed by sorting each
    particle's hits by distance from its production vertex — for barrel
    events that matches the turning-angle order.
    """
    hits_path = os.path.join(directory, f"{prefix}-hits.csv")
    truth_path = os.path.join(directory, f"{prefix}-truth.csv")
    particles_path = os.path.join(directory, f"{prefix}-particles.csv")

    positions: List[List[float]] = []
    layer_ids: List[int] = []
    with open(hits_path, newline="") as fh:
        for row in csv.DictReader(fh):
            positions.append([float(row["x"]), float(row["y"]), float(row["z"])])
            layer_ids.append(int(row["layer_id"]))

    particle_ids = np.zeros(len(positions), dtype=np.int64)
    with open(truth_path, newline="") as fh:
        for row in csv.DictReader(fh):
            particle_ids[int(row["hit_id"]) - 1] = int(row["particle_id"])

    particles: List[Particle] = []
    with open(particles_path, newline="") as fh:
        for row in csv.DictReader(fh):
            px, py, pz = float(row["px"]), float(row["py"]), float(row["pz"])
            pt = float(np.hypot(px, py))
            particles.append(
                Particle(
                    particle_id=int(row["particle_id"]),
                    pt=pt,
                    phi0=float(np.arctan2(py, px)),
                    eta=float(np.arcsinh(pz / pt)) if pt > 0 else 0.0,
                    charge=int(float(row["q"])),
                    vx=float(row["vx"]),
                    vy=float(row["vy"]),
                    vz=float(row["vz"]),
                )
            )

    pos = np.asarray(positions, dtype=np.float64).reshape(-1, 3)
    vertex = {p.particle_id: np.array([p.vx, p.vy, p.vz]) for p in particles}
    hit_order = np.full(len(pos), -1, dtype=np.int64)
    for pid in np.unique(particle_ids[particle_ids > 0]):
        idx = np.flatnonzero(particle_ids == pid)
        origin = vertex.get(int(pid), np.zeros(3))
        dist = np.linalg.norm(pos[idx] - origin, axis=1)
        hit_order[idx[np.argsort(dist)]] = np.arange(idx.size)

    return Event(
        positions=pos,
        layer_ids=np.asarray(layer_ids, dtype=np.int64),
        particle_ids=particle_ids,
        hit_order=hit_order,
        particles=particles,
        event_id=event_id,
    )
