"""Train/validation/test splitting of event-graph collections."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import EventGraph

__all__ = ["split_graphs"]


def split_graphs(
    graphs: Sequence[EventGraph],
    num_train: int,
    num_val: int,
    num_test: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[EventGraph], List[EventGraph], List[EventGraph]]:
    """Split graphs into train/val/test, optionally shuffling first.

    The paper uses an 80/10/10 split per dataset.

    Raises
    ------
    ValueError
        If the requested split sizes exceed the number of graphs.
    """
    total = num_train + num_val + num_test
    if total > len(graphs):
        raise ValueError(
            f"requested {total} graphs but only {len(graphs)} available"
        )
    order = np.arange(len(graphs))
    if rng is not None:
        order = rng.permutation(order)
    picked = [graphs[i] for i in order[:total]]
    return (
        picked[:num_train],
        picked[num_train : num_train + num_val],
        picked[num_train + num_val :],
    )
