"""Dataset IO: npz serialisation, splits, and TrackML-format interop."""

from .serialization import (
    CheckpointCorruptError,
    CheckpointError,
    archive_digest,
    atomic_savez,
    atomic_write_bytes,
    clean_stale_tmp,
    load_graphs,
    open_archive,
    save_graphs,
)
from .splits import split_graphs
from .trackml import export_trackml, import_trackml, iter_trackml_hits

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "archive_digest",
    "atomic_savez",
    "atomic_write_bytes",
    "open_archive",
    "clean_stale_tmp",
    "save_graphs",
    "load_graphs",
    "split_graphs",
    "export_trackml",
    "import_trackml",
    "iter_trackml_hits",
]
