"""Dataset IO: npz serialisation, splits, and TrackML-format interop."""

from .serialization import load_graphs, save_graphs
from .splits import split_graphs
from .trackml import export_trackml, import_trackml

__all__ = [
    "save_graphs",
    "load_graphs",
    "split_graphs",
    "export_trackml",
    "import_trackml",
]
