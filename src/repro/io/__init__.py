"""Dataset IO: npz serialisation, splits, and TrackML-format interop."""

from .serialization import (
    CheckpointCorruptError,
    CheckpointError,
    archive_digest,
    atomic_savez,
    clean_stale_tmp,
    load_graphs,
    open_archive,
    save_graphs,
)
from .splits import split_graphs
from .trackml import export_trackml, import_trackml

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "archive_digest",
    "atomic_savez",
    "open_archive",
    "clean_stale_tmp",
    "save_graphs",
    "load_graphs",
    "split_graphs",
    "export_trackml",
    "import_trackml",
]
