"""SIGALRM-based fallback for ``pytest-timeout``.

The chaos/elastic tests drive real worker processes through real
barriers; a supervision bug would otherwise hang the whole suite rather
than fail one test.  CI installs the real ``pytest-timeout``
distribution, but the hermetic container this repo develops in does not
ship it — this plugin supplies the subset we rely on:

* the ``timeout`` ini option (set in ``pyproject.toml``) as the per-test
  default cap;
* ``@pytest.mark.timeout(N)`` / ``--timeout=N`` overrides;
* ``timeout = 0`` disables the cap.

When the real ``pytest-timeout`` is importable this module registers
nothing and stands down entirely.  The implementation interrupts the
test with ``signal.setitimer``, so it only arms on the main thread of a
POSIX process — the same signal method pytest-timeout itself offers.
"""

from __future__ import annotations

import signal
import threading

import pytest


def _real_plugin_available() -> bool:
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        return False
    return True


def pytest_addoption(parser) -> None:
    if _real_plugin_available():
        return  # the real plugin owns the option and ini namespace
    parser.addini(
        "timeout",
        "per-test timeout in seconds (0 = disabled); fallback plugin",
        default="0",
    )
    parser.addoption(
        "--timeout",
        action="store",
        dest="timeout",
        default=None,
        metavar="SECONDS",
        help="per-test timeout in seconds, overriding the ini value "
        "(fallback plugin; 0 = disabled)",
    )


def pytest_configure(config) -> None:
    if _real_plugin_available():
        return
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout override (fallback plugin)",
    )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None:
        if marker.args:
            return float(marker.args[0])
        if "timeout" in marker.kwargs:
            return float(marker.kwargs["timeout"])
    option = item.config.getoption("timeout", default=None)
    if option is not None:
        return float(option)
    return float(item.config.getini("timeout") or 0)


def _can_arm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _real_plugin_available():
        yield
        return
    seconds = _timeout_for(item)
    if seconds <= 0 or not _can_arm():
        yield
        return

    def _on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds:g}s timeout (fallback timeout "
            "plugin)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
