"""Test-support utilities shipped with the package.

Currently home to the :mod:`pytest-timeout <repro.testing.timeout_plugin>`
fallback plugin, so the per-test hang cap works in environments where the
real ``pytest-timeout`` distribution is not installed (the elastic /
chaos tests exercise real multi-process collectives, and a regression
there should fail a test, not wedge the whole suite).
"""
