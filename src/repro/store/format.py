"""On-disk shard format of the out-of-core event store (``repro.store/v1``).

A store directory holds:

* ``manifest.json`` — the store root: format version, the shard table
  (per shard: byte size, SHA-256 of the binary and of its index file,
  event count), per-split event counts, free-form ``meta``, and a
  self-checksum over the whole document;
* ``shard-NNNNN.bin`` — one flat binary blob per shard: the raw
  little-endian bytes of every event array, each padded to a 64-byte
  boundary so the mmap views land aligned;
* ``shard-NNNNN.index.json`` — the shard's event table: per event the
  ids/sizes/split plus, per array, ``{dtype, shape, offset, nbytes}``
  into the binary — everything a reader needs to build zero-copy
  :class:`numpy.memmap` views without touching the blob.

Events are stored in **CSR form** (``indptr``/``indices`` with edge
payloads ``y``/``edge_labels`` in CSR order): that is the layout the
bulk samplers consume, and sorting edges by source row once at ingest
makes the on-disk order canonical — every reader reconstructs the
identical ``edge_index``, which is what the bit-parity guarantees of
the streaming trainer rest on.

Integrity follows :func:`repro.io.open_archive`: every JSON document
embeds a ``checksum`` over its canonical serialisation, the manifest
pins the SHA-256 of each shard binary and index file, and
:class:`~repro.store.reader.EventStore` audits the chain on open.  Any
mismatch — truncation, bit-flip, tampered index — raises the typed
:class:`StoreCorruptError` instead of surfacing as garbage arrays
mid-epoch.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Mapping, Tuple

import numpy as np

__all__ = [
    "STORE_FORMAT",
    "MANIFEST_NAME",
    "STORE_TMP_SUFFIX",
    "ARRAY_ALIGN",
    "StoreError",
    "StoreCorruptError",
    "canonical_json",
    "document_checksum",
    "seal_document",
    "verify_document",
    "file_sha256",
    "shard_bin_name",
    "shard_index_name",
    "array_spec",
    "check_spec_bounds",
    "resolve_array",
    "load_json",
]

STORE_FORMAT = "repro.store/v1"
MANIFEST_NAME = "manifest.json"

#: Temp-file suffix used by every atomic write in a store directory;
#: :func:`repro.io.clean_stale_tmp` sweeps it on writer *and* reader open.
STORE_TMP_SUFFIX = ".tmp"

#: Array blobs are padded to this boundary inside a shard binary.
ARRAY_ALIGN = 64


class StoreError(RuntimeError):
    """An event store is missing, malformed, or misused."""


class StoreCorruptError(StoreError):
    """The store's *bytes* are damaged (checksum mismatch, truncation).

    Distinct from the plain :class:`StoreError` (missing directory,
    unsupported format version, writer misuse) so callers can react to
    media corruption — re-ingest, restore from backup — without masking
    configuration mistakes.
    """


# ----------------------------------------------------------------------
# checksummed JSON documents
# ----------------------------------------------------------------------
def canonical_json(doc: Mapping) -> bytes:
    """Canonical serialisation (sorted keys, no whitespace) for hashing."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def document_checksum(doc: Mapping) -> str:
    """SHA-256 over the document's canonical JSON, ``checksum`` excluded.

    Excluding the embedded checksum lets a reader recompute the digest
    from the parsed document and compare it to the stored one — the same
    scheme :func:`repro.io.archive_digest` uses for npz archives.
    """
    body = {k: v for k, v in doc.items() if k != "checksum"}
    return hashlib.sha256(canonical_json(body)).hexdigest()


def seal_document(doc: Mapping) -> Dict:
    """Return a copy of ``doc`` with its ``checksum`` field filled in."""
    sealed = dict(doc)
    sealed["checksum"] = document_checksum(sealed)
    return sealed


def verify_document(doc: Mapping, label: str) -> None:
    """Raise :class:`StoreCorruptError` unless the embedded checksum holds."""
    stored = doc.get("checksum")
    if not isinstance(stored, str):
        raise StoreCorruptError(f"{label}: missing checksum field")
    actual = document_checksum(doc)
    if stored != actual:
        raise StoreCorruptError(
            f"{label}: checksum mismatch (stored {stored[:12]}…, "
            f"recomputed {actual[:12]}…) — the file is corrupt"
        )


def file_sha256(path: str, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 of a file's content, read in chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


# ----------------------------------------------------------------------
# shard naming and array specs
# ----------------------------------------------------------------------
def shard_bin_name(name: str) -> str:
    return f"{name}.bin"


def shard_index_name(name: str) -> str:
    return f"{name}.index.json"


def array_spec(arr: np.ndarray, offset: int) -> Dict:
    """Index entry for one array blob at ``offset`` in the shard binary."""
    return {
        "dtype": arr.dtype.str,
        "shape": [int(s) for s in arr.shape],
        "offset": int(offset),
        "nbytes": int(arr.nbytes),
    }


def _spec_fields(spec: Mapping, label: str) -> Tuple[np.dtype, Tuple[int, ...], int, int]:
    try:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        offset = int(spec["offset"])
        nbytes = int(spec["nbytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreCorruptError(f"{label}: malformed array spec: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if nbytes != expected or offset < 0:
        raise StoreCorruptError(
            f"{label}: array spec inconsistent "
            f"(dtype={dtype.str}, shape={shape}, nbytes={nbytes})"
        )
    return dtype, shape, offset, nbytes


def check_spec_bounds(spec: Mapping, shard_bytes: int, label: str) -> None:
    """Validate one array spec against the shard binary's size."""
    _, _, offset, nbytes = _spec_fields(spec, label)
    if offset + nbytes > shard_bytes:
        raise StoreCorruptError(
            f"{label}: array spec reaches byte {offset + nbytes} but the "
            f"shard binary holds only {shard_bytes} — truncated shard"
        )


def resolve_array(mm: np.ndarray, spec: Mapping, label: str) -> np.ndarray:
    """Zero-copy view of one array inside a mapped shard binary."""
    dtype, shape, offset, nbytes = _spec_fields(spec, label)
    if offset + nbytes > mm.nbytes:
        raise StoreCorruptError(
            f"{label}: array spec reaches byte {offset + nbytes} but the "
            f"mapped shard holds only {mm.nbytes}"
        )
    return mm[offset : offset + nbytes].view(dtype).reshape(shape)


def load_json(path: str, label: str) -> Dict:
    """Read a JSON document, translating IO/parse failures to store errors."""
    if not os.path.exists(path):
        raise StoreCorruptError(f"{label}: file missing: {path}")
    try:
        with open(path, "rb") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise StoreCorruptError(f"{label}: unreadable JSON {path!r}: {exc}") from exc
