"""Validated ingestion: events → size-bounded, checksummed CSR shards.

The write path has two layers:

* :class:`StoreWriter` — the mechanical compactor.  It buffers
  canonicalised event arrays until the configured shard size is reached,
  then writes the shard binary and its index atomically (temp file +
  ``os.replace`` via :func:`repro.io.atomic_write_bytes`) and finally
  seals the store with a checksummed ``manifest.json``.  A crash at any
  point leaves either a readable old store or stray ``*.tmp`` files that
  the next writer/reader sweeps with :func:`repro.io.clean_stale_tmp` —
  never a half-written shard under a valid name.
* ``ingest_*`` helpers — the guarded front doors.  Every event or graph
  passes through :mod:`repro.guard` first; offenders land in the
  existing :class:`~repro.guard.Quarantine` (with optional JSONL log)
  and **never reach a shard**, so a store is valid by construction.

Edges are stably sorted by source row before writing (see
:mod:`repro.store.format`), making the on-disk CSR order canonical: the
graphs a reader materialises are bit-identical across processes and
runs, which the streamed-vs-in-RAM training parity tests pin.
"""

from __future__ import annotations

import hashlib
import io
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import EventGraph
from ..guard import EventValidator, GraphValidator, Quarantine, QuarantineLog
from ..io.serialization import atomic_write_bytes, clean_stale_tmp
from ..obs import get_telemetry, get_tracer
from .format import (
    ARRAY_ALIGN,
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_TMP_SUFFIX,
    StoreError,
    array_spec,
    canonical_json,
    seal_document,
    shard_bin_name,
    shard_index_name,
)

__all__ = [
    "DEFAULT_SHARD_BYTES",
    "StoreWriter",
    "IngestReport",
    "ingest_graphs",
    "ingest_simulated",
    "ingest_construction",
]

#: Default shard size bound; small enough that an LRU window of a few
#: shards stays modest, large enough to amortise per-shard overhead.
DEFAULT_SHARD_BYTES = 16 << 20


def _csr_arrays(graph: EventGraph) -> Dict[str, np.ndarray]:
    """Canonical on-disk arrays for one graph (edges CSR-sorted)."""
    n, m = graph.num_nodes, graph.num_edges
    rows = np.asarray(graph.rows, dtype=np.int64)
    order = np.argsort(rows, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    if m:
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    arrays = {
        "indptr": indptr,
        "indices": np.ascontiguousarray(graph.cols[order], dtype=np.int64),
        "x": np.ascontiguousarray(graph.x, dtype=np.float32),
        "y": np.ascontiguousarray(graph.y[order], dtype=np.float32),
    }
    if graph.edge_labels is not None:
        arrays["edge_labels"] = np.ascontiguousarray(
            graph.edge_labels[order], dtype=np.int8
        )
    if graph.particle_ids is not None:
        arrays["particle_ids"] = np.ascontiguousarray(
            graph.particle_ids, dtype=np.int64
        )
    return arrays


def _aligned(nbytes: int) -> int:
    return nbytes + (-nbytes) % ARRAY_ALIGN


class StoreWriter:
    """Compact event graphs into size-bounded shards, atomically.

    Parameters
    ----------
    directory:
        Store root (created if missing).  A pre-existing store is only
        replaced with ``overwrite=True``; stale ``*.tmp`` files from an
        interrupted earlier ingestion are swept on startup.
    max_shard_bytes:
        Flush the pending shard once its payload reaches this size.  One
        event never spans shards, so a single event larger than the
        bound gets a shard of its own.
    meta:
        Free-form JSON-serialisable mapping recorded in the manifest
        (dataset name, graph provenance, pipeline hash, …).

    Use as a context manager or call :meth:`close` — the manifest is
    only written on close, so readers never observe a store that is
    still growing.
    """

    def __init__(
        self,
        directory: str,
        max_shard_bytes: int = DEFAULT_SHARD_BYTES,
        meta: Optional[Dict] = None,
        overwrite: bool = False,
    ) -> None:
        if max_shard_bytes <= 0:
            raise ValueError("max_shard_bytes must be positive")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            if not overwrite:
                raise StoreError(
                    f"store already exists at {directory!r} (pass overwrite=True)"
                )
            # drop the old store completely so a smaller re-ingest can't
            # leave orphaned shards beside the new manifest
            for name in os.listdir(directory):
                if name.endswith((".bin", ".index.json")) or name == MANIFEST_NAME:
                    os.unlink(os.path.join(directory, name))
        self.swept = clean_stale_tmp(directory, suffixes=(STORE_TMP_SUFFIX,))
        self.max_shard_bytes = int(max_shard_bytes)
        self.meta = dict(meta or {})
        self._pending: List[Tuple[Dict, Dict[str, np.ndarray]]] = []
        self._pending_bytes = 0
        self._shards: List[Dict] = []
        self._splits: Dict[str, int] = {}
        self._closed = False
        self._manifest: Optional[Dict] = None

    # ------------------------------------------------------------------
    def add_graph(
        self,
        graph: EventGraph,
        split: str = "train",
        fingerprint: Optional[str] = None,
        source: str = "builder",
    ) -> None:
        """Queue one graph; flushes a shard when the size bound is hit.

        ``fingerprint`` (see :func:`repro.serve.cache.event_fingerprint`)
        keys the graph to its originating event so the serving tier can
        hydrate replayed requests from the store; ``source`` records how
        the graph was built (``"builder"`` for geometric candidate
        graphs, ``"construction"`` for fitted-pipeline stage output).
        """
        if self._closed:
            raise StoreError("StoreWriter is closed")
        arrays = _csr_arrays(graph)
        doc = {
            "event_id": int(graph.event_id),
            "split": str(split),
            "num_nodes": int(graph.num_nodes),
            "num_edges": int(graph.num_edges),
            "num_node_features": int(graph.num_node_features),
            "num_edge_features": int(graph.num_edge_features),
            "source": str(source),
            "fingerprint": fingerprint,
        }
        nbytes = sum(_aligned(a.nbytes) for a in arrays.values())
        if self._pending and self._pending_bytes + nbytes > self.max_shard_bytes:
            self._flush()
        self._pending.append((doc, arrays))
        self._pending_bytes += nbytes
        self._splits[doc["split"]] = self._splits.get(doc["split"], 0) + 1
        if self._pending_bytes >= self.max_shard_bytes:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        name = f"shard-{len(self._shards):05d}"
        with get_tracer().span(
            "store.ingest.flush",
            category="store",
            shard=name,
            events=len(self._pending),
            bytes=self._pending_bytes,
        ):
            blob = io.BytesIO()
            events = []
            for doc, arrays in self._pending:
                specs = {}
                for key, arr in arrays.items():
                    offset = blob.tell()
                    blob.write(arr.tobytes())
                    blob.write(b"\x00" * ((-arr.nbytes) % ARRAY_ALIGN))
                    specs[key] = array_spec(arr, offset)
                events.append({**doc, "arrays": specs})
            data = blob.getvalue()
            atomic_write_bytes(
                os.path.join(self.directory, shard_bin_name(name)), data
            )
            index_bytes = canonical_json(
                seal_document({"format": STORE_FORMAT, "shard": name, "events": events})
            )
            atomic_write_bytes(
                os.path.join(self.directory, shard_index_name(name)), index_bytes
            )
            self._shards.append(
                {
                    "name": name,
                    "bytes": len(data),
                    "sha256": hashlib.sha256(data).hexdigest(),
                    "index_sha256": hashlib.sha256(index_bytes).hexdigest(),
                    "events": len(events),
                }
            )
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("store.ingest.shards").add(1)
            telemetry.metrics.counter("store.ingest.bytes").add(len(data))
        self._pending = []
        self._pending_bytes = 0

    def close(self) -> Dict:
        """Flush the tail shard and seal the store with its manifest."""
        if self._closed:
            assert self._manifest is not None
            return self._manifest
        self._flush()
        manifest = seal_document(
            {
                "format": STORE_FORMAT,
                "shards": self._shards,
                "events": sum(s["events"] for s in self._shards),
                "splits": self._splits,
                "meta": self.meta,
            }
        )
        atomic_write_bytes(
            os.path.join(self.directory, MANIFEST_NAME), canonical_json(manifest)
        )
        self._closed = True
        self._manifest = manifest
        return manifest

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # only seal on a clean exit: an exception mid-ingest must not
        # produce a manifest claiming the store is complete
        if exc_type is None:
            self.close()


# ----------------------------------------------------------------------
# guarded ingestion front doors
# ----------------------------------------------------------------------
@dataclass
class IngestReport:
    """What one ingestion run did (returned by every ``ingest_*``)."""

    seen: int = 0
    ingested: int = 0
    quarantined: int = 0
    shards: int = 0
    bytes_written: int = 0
    splits: Dict[str, int] = field(default_factory=dict)
    swept_tmp: int = 0

    def finish(self, manifest: Dict, swept: Sequence[str]) -> "IngestReport":
        self.shards = len(manifest["shards"])
        self.bytes_written = sum(s["bytes"] for s in manifest["shards"])
        self.splits = dict(manifest["splits"])
        self.swept_tmp = len(swept)
        return self


def _as_log(quarantine_log) -> Optional[QuarantineLog]:
    if quarantine_log is None or isinstance(quarantine_log, QuarantineLog):
        return quarantine_log
    return QuarantineLog(str(quarantine_log))


def ingest_graphs(
    graphs: Iterable[EventGraph],
    directory: str,
    split: str = "train",
    validate: bool = True,
    require_labels: bool = True,
    quarantine_log=None,
    max_shard_bytes: int = DEFAULT_SHARD_BYTES,
    overwrite: bool = False,
    meta: Optional[Dict] = None,
) -> IngestReport:
    """Compact pre-built graphs into a store, quarantining invalid ones."""
    quarantine = (
        Quarantine(
            GraphValidator(require_labels=require_labels),
            context="store.ingest",
            log=_as_log(quarantine_log),
            kind="graph",
        )
        if validate
        else None
    )
    report = IngestReport()
    writer = StoreWriter(
        directory,
        max_shard_bytes=max_shard_bytes,
        meta={"graphs": "builder", **(meta or {})},
        overwrite=overwrite,
    )
    with get_tracer().span("store.ingest", category="store", mode="graphs"):
        with writer:
            for graph in graphs:
                report.seen += 1
                if quarantine is not None and not quarantine.admit(
                    graph, obj_id=graph.event_id
                ):
                    report.quarantined += 1
                    continue
                writer.add_graph(graph, split=split)
                report.ingested += 1
    return report.finish(writer.close(), writer.swept)


def ingest_simulated(
    config_or_name,
    directory: str,
    geometry=None,
    validate: bool = True,
    quarantine_log=None,
    max_shard_bytes: int = DEFAULT_SHARD_BYTES,
    overwrite: bool = False,
) -> IngestReport:
    """Simulate a registered dataset straight into a store.

    Mirrors :func:`repro.detector.make_dataset` event for event (same
    per-event seeds, same builder), but each raw event is validated
    through :class:`repro.guard.EventValidator` before graph
    construction and the graphs are compacted into shards instead of
    held in RAM — the streaming twin of the in-memory dataset factory.
    Event fingerprints are recorded so the serving tier can key replays
    to stored graphs.
    """
    from ..detector.datasets import _default_geometry, _make_simulator, dataset_config
    from ..detector.builders import build_candidate_graph
    from ..serve.cache import event_fingerprint

    config = (
        dataset_config(config_or_name)
        if isinstance(config_or_name, str)
        else config_or_name
    )
    geometry = geometry if geometry is not None else _default_geometry(config)
    simulator = _make_simulator(config, geometry)
    quarantine = (
        Quarantine(
            EventValidator.for_geometry(geometry),
            context="store.ingest",
            log=_as_log(quarantine_log),
            kind="event",
        )
        if validate
        else None
    )
    report = IngestReport()
    writer = StoreWriter(
        directory,
        max_shard_bytes=max_shard_bytes,
        meta={"graphs": "builder", "dataset": config.name, "seed": config.seed},
        overwrite=overwrite,
    )
    splits = (
        ("train", config.num_train),
        ("val", config.num_val),
        ("test", config.num_test),
    )
    with get_tracer().span(
        "store.ingest", category="store", mode="simulated", dataset=config.name
    ):
        with writer:
            event_id = 0
            for split, count in splits:
                for _ in range(count):
                    rng = np.random.default_rng(config.seed + event_id)
                    event = simulator.generate(rng, event_id=event_id)
                    event_id += 1
                    report.seen += 1
                    if quarantine is not None and not quarantine.admit(
                        event, obj_id=event.event_id
                    ):
                        report.quarantined += 1
                        continue
                    graph = build_candidate_graph(event, geometry, config.builder)
                    writer.add_graph(
                        graph, split=split, fingerprint=event_fingerprint(event)
                    )
                    report.ingested += 1
    return report.finish(writer.close(), writer.swept)


def ingest_construction(
    pipeline,
    events: Iterable,
    directory: str,
    split: str = "serve",
    validate: bool = True,
    quarantine_log=None,
    max_shard_bytes: int = DEFAULT_SHARD_BYTES,
    overwrite: bool = False,
) -> IngestReport:
    """Precompute a fitted pipeline's construction graphs into a store.

    The stored graphs are the *fitted* construction stage's output for
    each event, keyed by event fingerprint — exactly what
    :class:`repro.serve.InferenceEngine` needs to hydrate replayed
    requests from the warm shard cache instead of rebuilding the graph
    from the request payload.  The manifest records
    ``meta["graphs"] == "construction"``; the engine refuses stores that
    hold builder graphs, which belong to a different stage.
    """
    from ..serve.cache import event_fingerprint

    quarantine = (
        Quarantine(
            EventValidator(),
            context="store.ingest",
            log=_as_log(quarantine_log),
            kind="event",
        )
        if validate
        else None
    )
    report = IngestReport()
    writer = StoreWriter(
        directory,
        max_shard_bytes=max_shard_bytes,
        meta={"graphs": "construction"},
        overwrite=overwrite,
    )
    with get_tracer().span("store.ingest", category="store", mode="construction"):
        with writer:
            for event in events:
                report.seen += 1
                if quarantine is not None and not quarantine.admit(
                    event, obj_id=event.event_id
                ):
                    report.quarantined += 1
                    continue
                graph = pipeline.construction.build(event)
                writer.add_graph(
                    graph,
                    split=split,
                    fingerprint=event_fingerprint(event),
                    source="construction",
                )
                report.ingested += 1
    return report.finish(writer.close(), writer.swept)
