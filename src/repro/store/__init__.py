"""Out-of-core event store: mmap CSR shards, validated ingestion, streaming reads.

The paper's real datasets (CTD: 330.7K vertices / 6.9M edges per event)
do not fit an epoch in RAM.  This package turns event graphs into a
versioned on-disk format — size-bounded shard binaries of CSR arrays
plus checksummed JSON manifests (:mod:`~repro.store.format`) — written
atomically through :mod:`repro.io` with every raw event validated by
:mod:`repro.guard` first (:mod:`~repro.store.writer`), and read back
through memory-mapped :class:`EventStore` handles with an LRU shard
window under a hard resident-byte budget (:mod:`~repro.store.reader`).

Training streams: pass ``store.handles("train")`` anywhere a graph list
goes (``EpochPlan``/``train_gnn``) and epochs run with bounded RSS and
bit-identical losses to the in-RAM path.  Serving warms up: pass the
store to :class:`repro.serve.InferenceEngine` and replayed events
hydrate their construction graphs from shards instead of request
payloads.  See ``docs/event_store.md``.
"""

from .format import (
    ARRAY_ALIGN,
    MANIFEST_NAME,
    STORE_FORMAT,
    StoreCorruptError,
    StoreError,
)
from .reader import EventStore, ShardReader, StoredGraph, StoreStats
from .writer import (
    DEFAULT_SHARD_BYTES,
    IngestReport,
    StoreWriter,
    ingest_construction,
    ingest_graphs,
    ingest_simulated,
)

__all__ = [
    "STORE_FORMAT",
    "MANIFEST_NAME",
    "ARRAY_ALIGN",
    "DEFAULT_SHARD_BYTES",
    "StoreError",
    "StoreCorruptError",
    "StoreWriter",
    "IngestReport",
    "ingest_graphs",
    "ingest_simulated",
    "ingest_construction",
    "StoredGraph",
    "ShardReader",
    "StoreStats",
    "EventStore",
]
