"""Mmap shard reading: audited open, LRU window, lazy graph handles.

Three layers:

* :class:`ShardReader` — maps one shard binary (``numpy.memmap``,
  read-only) and materialises :class:`~repro.graph.EventGraph` views
  out of it.  Node/edge payload arrays (``x``/``y``/``edge_labels``/
  ``particle_ids``) are zero-copy views into the mapping; only
  ``edge_index`` is reconstructed from the CSR ``indptr``/``indices``.
* :class:`EventStore` — the whole store.  Opening verifies the
  checksum chain (manifest seal → per-shard index hashes → optional
  full audit of every shard binary, like
  :func:`repro.io.open_archive`'s verify pass) and sweeps stale
  ``*.tmp`` files from an interrupted ingestion.  At read time it keeps
  an **LRU window of mapped shards under a hard resident-byte budget**:
  mapping a shard that would exceed the budget unmaps the
  least-recently-used ones first, so an epoch over a store many times
  the budget streams through a bounded working set.
* :class:`StoredGraph` — a lazy, stable handle per event.  Sizes and
  feature widths come from the index (no mapping needed — exactly what
  :meth:`repro.data.EpochPlan.build` consumes); any real array access
  materialises the graph through the store's LRU window.  Handles are
  the objects a streaming epoch plans over, so identity-based grouping
  (:func:`repro.sampling.group_batches`) works unchanged.

Telemetry: ``store.open`` / ``store.shard.map`` spans, ``store.shard.
{map,unmap}`` + ``store.cache.{hits,misses}`` counters, and
``store.resident_bytes`` / ``store.mapped_shards`` gauges via
:mod:`repro.obs`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..graph import EventGraph
from ..io.serialization import clean_stale_tmp
from ..obs import get_telemetry, get_tracer
from .format import (
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_TMP_SUFFIX,
    StoreCorruptError,
    StoreError,
    check_spec_bounds,
    file_sha256,
    load_json,
    resolve_array,
    shard_bin_name,
    shard_index_name,
    verify_document,
)

__all__ = ["StoredGraph", "ShardReader", "StoreStats", "EventStore"]

#: Event-array names resolved into every materialised graph.
_REQUIRED_ARRAYS = ("indptr", "indices", "x", "y")


class StoredGraph:
    """Lazy handle to one event in a store.

    Carries the index metadata (sizes, feature widths, split, source,
    fingerprint) as plain attributes so epoch planning and model sizing
    never touch the disk; any other :class:`~repro.graph.EventGraph`
    attribute or method transparently materialises the graph through
    the store's LRU shard window.  One stable handle exists per event
    for the lifetime of the store, so identity-based batch grouping
    behaves exactly as with in-RAM graphs.
    """

    __slots__ = (
        "_store",
        "_pos",
        "event_id",
        "split",
        "source",
        "fingerprint",
        "num_nodes",
        "num_edges",
        "num_node_features",
        "num_edge_features",
        "has_edge_labels",
        "has_particle_ids",
    )

    def __init__(self, store: "EventStore", pos: int, doc: Dict) -> None:
        self._store = store
        self._pos = pos
        self.event_id = int(doc["event_id"])
        self.split = doc["split"]
        self.source = doc.get("source", "builder")
        self.fingerprint = doc.get("fingerprint")
        self.num_nodes = int(doc["num_nodes"])
        self.num_edges = int(doc["num_edges"])
        self.num_node_features = int(doc["num_node_features"])
        self.num_edge_features = int(doc["num_edge_features"])
        self.has_edge_labels = "edge_labels" in doc["arrays"]
        self.has_particle_ids = "particle_ids" in doc["arrays"]

    def materialize(self) -> EventGraph:
        """The event's graph, read through the store's shard window."""
        return self._store.graph(self._pos)

    @property
    def edge_labels(self) -> Optional[np.ndarray]:
        # presence is index metadata; `is None` checks stay disk-free
        return self.materialize().edge_labels if self.has_edge_labels else None

    @property
    def particle_ids(self) -> Optional[np.ndarray]:
        return self.materialize().particle_ids if self.has_particle_ids else None

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)

    def __repr__(self) -> str:
        return (
            f"StoredGraph(id={self.event_id}, split={self.split!r}, "
            f"n={self.num_nodes}, m={self.num_edges})"
        )


class ShardReader:
    """One mapped shard: a read-only byte mapping plus its event table."""

    def __init__(self, directory: str, name: str, index: Dict) -> None:
        self.name = name
        self.index = index
        self.path = os.path.join(directory, shard_bin_name(name))
        self.mm: np.ndarray = np.memmap(self.path, dtype=np.uint8, mode="r")
        self.nbytes = int(self.mm.nbytes)
        self._graphs: Dict[int, EventGraph] = {}

    def graph(self, pos: int) -> EventGraph:
        """Materialise event ``pos`` of this shard (cached per shard)."""
        cached = self._graphs.get(pos)
        if cached is not None:
            return cached
        doc = self.index["events"][pos]
        label = f"shard {self.name} event {pos}"
        arrays = {
            key: resolve_array(self.mm, spec, f"{label} array {key!r}")
            for key, spec in doc["arrays"].items()
        }
        for key in _REQUIRED_ARRAYS:
            if key not in arrays:
                raise StoreCorruptError(f"{label}: missing array {key!r}")
        indptr = arrays["indptr"]
        n = int(doc["num_nodes"])
        # reconstruct COO sources from the CSR row pointer; the payload
        # arrays stay zero-copy views into the mapping
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        edge_index = np.empty((2, rows.shape[0]), dtype=np.int64)
        edge_index[0] = rows
        edge_index[1] = arrays["indices"]
        graph = EventGraph(
            edge_index=edge_index,
            x=arrays["x"],
            y=arrays["y"],
            edge_labels=arrays.get("edge_labels"),
            particle_ids=arrays.get("particle_ids"),
            event_id=int(doc["event_id"]),
        )
        self._graphs[pos] = graph
        return graph


@dataclass
class StoreStats:
    """Read-side counters for one :class:`EventStore` lifetime."""

    hits: int = 0  # materialised-graph cache hits
    misses: int = 0
    maps: int = 0  # shard map operations
    unmaps: int = 0  # LRU evictions
    peak_resident_bytes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EventStore:
    """Audited, budget-bounded random access to a store directory.

    Parameters
    ----------
    directory:
        A store written by :class:`~repro.store.writer.StoreWriter`.
    budget_bytes:
        Hard ceiling on the bytes of simultaneously mapped shards
        (``None`` = unbounded).  Must admit the largest single shard;
        epochs over stores larger than the budget stream through an LRU
        window of this size.
    audit:
        Re-hash every shard binary against the manifest on open (like
        ``open_archive(verify=True)``).  Index files are always
        verified — they are small; shard audit is the knob because it
        reads every byte of the store once.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` whose
        :meth:`~repro.faults.FaultPlan.before_shard_map` hook runs
        immediately before every shard mapping — scheduled
        :class:`~repro.faults.DiskFault` entries physically corrupt the
        shard file, and the map-time size check below turns the damage
        into a typed :class:`StoreCorruptError` (chaos harness for the
        scenario engine; see docs/scenarios.md).
    verify_on_map:
        Re-hash a shard binary against its manifest checksum every time
        it is (re)mapped, not just at open.  Catches *silent* corruption
        that appears after open — a flipped bit does not change the file
        size, so only the hash sees it.  Off by default (it re-reads the
        shard's bytes on every map); chaos/scenario runs turn it on.
    """

    def __init__(
        self,
        directory: str,
        budget_bytes: Optional[int] = None,
        audit: bool = True,
        fault_plan=None,
        verify_on_map: bool = False,
    ) -> None:
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.isdir(directory) or not os.path.exists(manifest_path):
            raise StoreError(f"no event store at {directory!r}")
        self.directory = directory
        # interrupted-ingestion leftovers are never valid shards
        self.swept = clean_stale_tmp(directory, suffixes=(STORE_TMP_SUFFIX,))
        with get_tracer().span(
            "store.open", category="store", path=directory, audit=audit
        ):
            manifest = load_json(manifest_path, "store manifest")
            fmt = manifest.get("format")
            if fmt != STORE_FORMAT:
                raise StoreError(
                    f"unsupported store format {fmt!r} at {directory!r} "
                    f"(this reader speaks {STORE_FORMAT!r})"
                )
            verify_document(manifest, f"store manifest {manifest_path!r}")
            self.manifest = manifest
            self._indexes: List[Dict] = []
            self._events: List[tuple] = []  # (shard_idx, pos_in_shard, doc)
            for entry in manifest["shards"]:
                self._audit_shard(entry, audit)
        if budget_bytes is not None:
            largest = max(
                (e["bytes"] for e in manifest["shards"]), default=0
            )
            if budget_bytes < largest:
                raise ValueError(
                    f"budget_bytes={budget_bytes} cannot hold the largest "
                    f"shard ({largest} bytes); raise the budget or re-ingest "
                    f"with a smaller max_shard_bytes"
                )
        self.budget_bytes = budget_bytes
        self.fault_plan = fault_plan
        self.verify_on_map = verify_on_map
        self.stats = StoreStats()
        self._mapped: "OrderedDict[int, ShardReader]" = OrderedDict()
        self._resident = 0
        self._lock = threading.Lock()
        self._handles = [
            StoredGraph(self, pos, doc) for pos, (_, _, doc) in enumerate(self._events)
        ]

    def _audit_shard(self, entry: Dict, audit: bool) -> None:
        name = entry["name"]
        bin_path = os.path.join(self.directory, shard_bin_name(name))
        index_path = os.path.join(self.directory, shard_index_name(name))
        if not os.path.exists(bin_path):
            raise StoreCorruptError(f"shard binary missing: {bin_path}")
        if not os.path.exists(index_path):
            raise StoreCorruptError(f"shard index missing: {index_path}")
        if file_sha256(index_path) != entry["index_sha256"]:
            raise StoreCorruptError(
                f"shard index {index_path!r} does not match the manifest "
                f"(index_sha256 mismatch)"
            )
        index = load_json(index_path, f"shard index {name}")
        verify_document(index, f"shard index {index_path!r}")
        if index.get("shard") != name or len(index["events"]) != entry["events"]:
            raise StoreCorruptError(
                f"shard index {index_path!r} disagrees with the manifest entry"
            )
        size = os.path.getsize(bin_path)
        if size != entry["bytes"]:
            raise StoreCorruptError(
                f"shard binary {bin_path!r} is {size} bytes; manifest says "
                f"{entry['bytes']} (truncated or overwritten)"
            )
        if audit and file_sha256(bin_path) != entry["sha256"]:
            raise StoreCorruptError(
                f"shard binary {bin_path!r} fails its manifest checksum "
                f"(bit-flip or partial write)"
            )
        shard_idx = len(self._indexes)
        for pos, doc in enumerate(index["events"]):
            for key, spec in doc["arrays"].items():
                check_spec_bounds(
                    spec, size, f"shard {name} event {pos} array {key!r}"
                )
            self._events.append((shard_idx, pos, doc))
        self._indexes.append(index)

    # ------------------------------------------------------------------
    # metadata access (never maps a shard)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._handles)

    def __getitem__(self, pos: int) -> StoredGraph:
        return self._handles[pos]

    def __iter__(self) -> Iterator[StoredGraph]:
        return iter(self._handles)

    @property
    def meta(self) -> Dict:
        return self.manifest.get("meta", {})

    @property
    def resident_bytes(self) -> int:
        return self._resident

    @property
    def mapped_shards(self) -> int:
        return len(self._mapped)

    def handles(self, split: Optional[str] = None) -> List[StoredGraph]:
        """Lazy handles, optionally restricted to one split."""
        if split is None:
            return list(self._handles)
        return [h for h in self._handles if h.split == split]

    def fingerprints(self) -> Dict[str, StoredGraph]:
        """Event-fingerprint → handle map (events that recorded one)."""
        return {h.fingerprint: h for h in self._handles if h.fingerprint}

    def describe(self) -> Dict:
        """Summary dict for CLI/diagnostics."""
        shards = self.manifest["shards"]
        return {
            "format": self.manifest["format"],
            "directory": self.directory,
            "events": len(self._handles),
            "shards": len(shards),
            "bytes": sum(s["bytes"] for s in shards),
            "splits": dict(self.manifest.get("splits", {})),
            "meta": dict(self.meta),
            "budget_bytes": self.budget_bytes,
        }

    def verify(self) -> None:
        """Re-audit every shard binary against the manifest (full read)."""
        for entry in self.manifest["shards"]:
            bin_path = os.path.join(self.directory, shard_bin_name(entry["name"]))
            if file_sha256(bin_path) != entry["sha256"]:
                raise StoreCorruptError(
                    f"shard binary {bin_path!r} fails its manifest checksum"
                )

    # ------------------------------------------------------------------
    # budgeted reads
    # ------------------------------------------------------------------
    def graph(self, pos: int) -> EventGraph:
        """Materialise event ``pos``, mapping/evicting shards as needed."""
        shard_idx, shard_pos, _ = self._events[pos]
        with self._lock:
            reader = self._ensure_mapped(shard_idx)
            cached = shard_pos in reader._graphs
            graph = reader.graph(shard_pos)
            self._count_access(cached)
            return graph

    def load_split(self, split: Optional[str] = None) -> List[EventGraph]:
        """Fully-resident deep copies (the in-RAM comparison path).

        Arrays are copied out of the mappings, so the returned graphs
        stay valid after shards are evicted or the store is closed —
        and bit-compare equal to what streaming materialises.
        """
        out = []
        for handle in self.handles(split):
            g = handle.materialize()
            out.append(
                EventGraph(
                    edge_index=np.array(g.edge_index),
                    x=np.array(g.x),
                    y=np.array(g.y),
                    edge_labels=None if g.edge_labels is None else np.array(g.edge_labels),
                    particle_ids=None
                    if g.particle_ids is None
                    else np.array(g.particle_ids),
                    event_id=g.event_id,
                )
            )
        return out

    def close(self) -> None:
        """Drop every mapping (views handed out keep their shard alive)."""
        with self._lock:
            self._mapped.clear()
            self._resident = 0
            self._set_gauges()

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_mapped(self, shard_idx: int) -> ShardReader:
        reader = self._mapped.get(shard_idx)
        if reader is not None:
            self._mapped.move_to_end(shard_idx)
            return reader
        entry = self.manifest["shards"][shard_idx]
        nbytes = int(entry["bytes"])
        telemetry = get_telemetry()
        if self.budget_bytes is not None:
            while self._mapped and self._resident + nbytes > self.budget_bytes:
                _, evicted = self._mapped.popitem(last=False)
                self._resident -= evicted.nbytes
                self.stats.unmaps += 1
                if telemetry is not None:
                    telemetry.metrics.counter("store.shard.unmap").add(1)
        bin_path = os.path.join(self.directory, shard_bin_name(entry["name"]))
        if self.fault_plan is not None:
            self.fault_plan.before_shard_map(bin_path)
        # cheap map-time integrity check: a shard that changed size since
        # the manifest was sealed (torn write, truncation) must never be
        # mapped — resolve_array would catch an out-of-bounds spec later,
        # but failing here attributes the damage to the shard, not a batch
        size = os.path.getsize(bin_path)
        if size != nbytes:
            if telemetry is not None:
                telemetry.metrics.counter("store.shard.corrupt").add(1)
            get_tracer().event(
                "store.shard.corrupt",
                category="store",
                shard=entry["name"],
                expected_bytes=nbytes,
                actual_bytes=size,
            )
            raise StoreCorruptError(
                f"shard binary {bin_path!r} is {size} bytes at map time; "
                f"manifest says {nbytes} (truncated or overwritten)"
            )
        if self.verify_on_map and file_sha256(bin_path) != entry["sha256"]:
            if telemetry is not None:
                telemetry.metrics.counter("store.shard.corrupt").add(1)
            get_tracer().event(
                "store.shard.corrupt",
                category="store",
                shard=entry["name"],
                expected_bytes=nbytes,
                actual_bytes=size,
            )
            raise StoreCorruptError(
                f"shard binary {bin_path!r} fails its manifest checksum at "
                f"map time (bit-flip after open)"
            )
        with get_tracer().span(
            "store.shard.map", category="store", shard=entry["name"], bytes=nbytes
        ):
            reader = ShardReader(
                self.directory, entry["name"], self._indexes[shard_idx]
            )
        self._mapped[shard_idx] = reader
        self._resident += nbytes
        self.stats.maps += 1
        self.stats.peak_resident_bytes = max(
            self.stats.peak_resident_bytes, self._resident
        )
        if telemetry is not None:
            telemetry.metrics.counter("store.shard.map").add(1)
        self._set_gauges()
        return reader

    def _count_access(self, cached: bool) -> None:
        telemetry = get_telemetry()
        if cached:
            self.stats.hits += 1
            if telemetry is not None:
                telemetry.metrics.counter("store.cache.hits").add(1)
        else:
            self.stats.misses += 1
            if telemetry is not None:
                telemetry.metrics.counter("store.cache.misses").add(1)

    def _set_gauges(self) -> None:
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.metrics.gauge("store.resident_bytes").set(self._resident)
            telemetry.metrics.gauge("store.mapped_shards").set(len(self._mapped))
