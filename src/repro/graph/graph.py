"""Event-graph container.

One :class:`EventGraph` per collision event, exactly as in the Exa.TrkX
pipeline: vertices are detector hits (3-D coordinates plus derived
features), edges are candidate track segments, and each edge carries a
binary truth label — 1 if both endpoints were produced by the same
particle on adjacent layers (a true track segment), else 0.

The adjacency is stored in COO form (``edge_index`` of shape ``(2, m)``),
matching Algorithm 1's ``A.rows`` / ``A.cols`` notation; CSR/CSC views for
the samplers are built lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["EventGraph"]


@dataclass
class EventGraph:
    """A single event's hit graph.

    Parameters
    ----------
    edge_index:
        ``(2, m)`` int array; row 0 holds source vertices (``A.rows``),
        row 1 holds destinations (``A.cols``).
    x:
        ``(n, f_v)`` vertex feature matrix.
    y:
        ``(m, f_e)`` edge feature matrix.
    edge_labels:
        ``(m,)`` binary truth labels (1 = true track segment).
    particle_ids:
        Optional ``(n,)`` truth particle id per hit; 0 marks noise hits.
    event_id:
        Identifier within its dataset.
    """

    edge_index: np.ndarray
    x: np.ndarray
    y: np.ndarray
    edge_labels: Optional[np.ndarray] = None
    particle_ids: Optional[np.ndarray] = None
    event_id: int = 0
    _cache: Dict[str, sp.spmatrix] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.edge_index = np.ascontiguousarray(self.edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must be (2, m), got {self.edge_index.shape}")
        self.x = np.ascontiguousarray(self.x, dtype=np.float32)
        if self.x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {self.x.shape}")
        self.y = np.ascontiguousarray(self.y, dtype=np.float32)
        if self.y.shape[0] != self.edge_index.shape[1]:
            raise ValueError(
                f"y has {self.y.shape[0]} rows but graph has "
                f"{self.edge_index.shape[1]} edges"
            )
        if self.edge_labels is not None:
            self.edge_labels = np.ascontiguousarray(self.edge_labels, dtype=np.int8)
            if self.edge_labels.shape[0] != self.num_edges:
                raise ValueError("edge_labels length must equal edge count")
        if self.num_edges and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge_index refers to vertices beyond x rows")
        if self.num_edges and self.edge_index.min() < 0:
            raise ValueError("edge_index contains negative vertex ids")

    # ------------------------------------------------------------------
    # sizes and feature dims
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def num_node_features(self) -> int:
        return self.x.shape[1]

    @property
    def num_edge_features(self) -> int:
        return self.y.shape[1]

    @property
    def rows(self) -> np.ndarray:
        """Source vertex per edge (``A.rows`` in Algorithm 1)."""
        return self.edge_index[0]

    @property
    def cols(self) -> np.ndarray:
        """Destination vertex per edge (``A.cols`` in Algorithm 1)."""
        return self.edge_index[1]

    # ------------------------------------------------------------------
    # sparse views
    # ------------------------------------------------------------------
    def to_coo(self, symmetric: bool = False) -> sp.coo_matrix:
        """Return the ``n × n`` adjacency in COO form.

        Parameters
        ----------
        symmetric:
            Add reversed edges; the samplers walk the graph as undirected
            (a hit can extend a track in either direction).
        """
        n, m = self.num_nodes, self.num_edges
        rows, cols = self.rows, self.cols
        if symmetric:
            rows = np.concatenate([rows, cols])
            cols = np.concatenate([self.cols, self.rows[: m]])
        data = np.ones(len(rows), dtype=np.float64)
        return sp.coo_matrix((data, (rows, cols)), shape=(n, n))

    def to_csr(self, symmetric: bool = False) -> sp.csr_matrix:
        """Cached CSR adjacency (deduplicated, binary)."""
        key = f"csr_sym={symmetric}"
        if key not in self._cache:
            csr = self.to_coo(symmetric=symmetric).tocsr()
            csr.sum_duplicates()
            csr.data[:] = 1.0
            self._cache[key] = csr
        return self._cache[key]

    def degrees(self, symmetric: bool = True) -> np.ndarray:
        """Vertex degrees (undirected by default).

        Computed from the deduplicated binary adjacency of :meth:`to_csr`
        so duplicate edges count once and a self-loop counts once — the
        samplers walk that adjacency, and degree-based fanout bounds must
        agree with what they actually see.
        """
        return np.asarray(
            np.diff(self.to_csr(symmetric=symmetric).indptr), dtype=np.int64
        )

    # ------------------------------------------------------------------
    # label helpers
    # ------------------------------------------------------------------
    def true_edge_fraction(self) -> float:
        """Fraction of edges labelled as genuine track segments."""
        if self.edge_labels is None:
            raise ValueError("graph has no edge labels")
        if self.num_edges == 0:
            return 0.0
        return float(self.edge_labels.mean())

    def edge_mask_subgraph(self, mask: np.ndarray) -> "EventGraph":
        """Return a copy keeping only edges where ``mask`` is True.

        Vertices are kept in place (no relabelling) — this is how the
        filter stage prunes edges before the GNN, and how track building
        removes edges the GNN classified as fake.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.num_edges:
            raise ValueError("mask length must equal edge count")
        return EventGraph(
            edge_index=self.edge_index[:, mask],
            x=self.x,
            y=self.y[mask],
            edge_labels=None if self.edge_labels is None else self.edge_labels[mask],
            particle_ids=self.particle_ids,
            event_id=self.event_id,
        )

    def __repr__(self) -> str:
        lab = "labelled" if self.edge_labels is not None else "unlabelled"
        return (
            f"EventGraph(id={self.event_id}, n={self.num_nodes}, "
            f"m={self.num_edges}, fv={self.num_node_features}, "
            f"fe={self.num_edge_features}, {lab})"
        )
