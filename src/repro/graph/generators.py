"""Random graph generators for tests and micro-benchmarks.

The detector simulation (:mod:`repro.detector`) produces physically
structured events; these generators produce *unstructured* graphs with
controllable size/degree for exercising the samplers, the components code,
and the memory model in isolation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .graph import EventGraph

__all__ = ["random_graph", "chain_graph", "disjoint_chains", "star_graph"]


def random_graph(
    num_nodes: int,
    num_edges: int,
    num_node_features: int = 6,
    num_edge_features: int = 2,
    rng: Optional[np.random.Generator] = None,
    true_fraction: float = 0.3,
    event_id: int = 0,
) -> EventGraph:
    """Erdős–Rényi-style multigraph-free random event graph.

    Self-loops are excluded and duplicate edges removed, so the returned
    graph may have slightly fewer than ``num_edges`` edges on small inputs.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng if rng is not None else np.random.default_rng()
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    mask = src != dst
    src, dst = src[mask], dst[mask]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    edge_index = np.unique(np.stack([lo, hi]), axis=1)
    m = edge_index.shape[1]
    labels = (rng.random(m) < true_fraction).astype(np.int8)
    return EventGraph(
        edge_index=edge_index,
        x=rng.normal(size=(num_nodes, num_node_features)).astype(np.float32),
        y=rng.normal(size=(m, num_edge_features)).astype(np.float32),
        edge_labels=labels,
        event_id=event_id,
    )


def chain_graph(
    num_nodes: int,
    num_node_features: int = 6,
    num_edge_features: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> EventGraph:
    """Path graph 0-1-2-...-(n-1); all edges labelled true.

    The degenerate "perfect track": useful for testing that components
    recover the full chain and that samplers respect connectivity.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = rng if rng is not None else np.random.default_rng()
    src = np.arange(num_nodes - 1, dtype=np.int64)
    edge_index = np.stack([src, src + 1])
    m = num_nodes - 1
    return EventGraph(
        edge_index=edge_index,
        x=rng.normal(size=(num_nodes, num_node_features)).astype(np.float32),
        y=rng.normal(size=(m, num_edge_features)).astype(np.float32),
        edge_labels=np.ones(m, dtype=np.int8),
    )


def disjoint_chains(
    num_chains: int,
    chain_length: int,
    num_node_features: int = 6,
    num_edge_features: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> EventGraph:
    """Several disjoint path graphs in one event — an idealised set of tracks.

    Vertex ``c * chain_length + i`` is hit ``i`` of chain ``c``; particle
    ids are ``c + 1`` (0 is reserved for noise).
    """
    if num_chains < 1 or chain_length < 2:
        raise ValueError("need >= 1 chain of length >= 2")
    rng = rng if rng is not None else np.random.default_rng()
    n = num_chains * chain_length
    srcs, dsts = [], []
    for c in range(num_chains):
        base = c * chain_length
        srcs.append(np.arange(base, base + chain_length - 1))
        dsts.append(np.arange(base + 1, base + chain_length))
    edge_index = np.stack([np.concatenate(srcs), np.concatenate(dsts)]).astype(np.int64)
    m = edge_index.shape[1]
    pids = np.repeat(np.arange(1, num_chains + 1, dtype=np.int64), chain_length)
    return EventGraph(
        edge_index=edge_index,
        x=rng.normal(size=(n, num_node_features)).astype(np.float32),
        y=rng.normal(size=(m, num_edge_features)).astype(np.float32),
        edge_labels=np.ones(m, dtype=np.int8),
        particle_ids=pids,
    )


def star_graph(
    num_leaves: int,
    num_node_features: int = 6,
    num_edge_features: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> EventGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves.

    The worst case for node-wise sampling (hub degree = n-1) and a good
    probe for fanout capping.
    """
    if num_leaves < 1:
        raise ValueError("need >= 1 leaf")
    rng = rng if rng is not None else np.random.default_rng()
    n = num_leaves + 1
    edge_index = np.stack(
        [np.zeros(num_leaves, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
    )
    return EventGraph(
        edge_index=edge_index,
        x=rng.normal(size=(n, num_node_features)).astype(np.float32),
        y=rng.normal(size=(num_leaves, num_edge_features)).astype(np.float32),
        edge_labels=np.ones(num_leaves, dtype=np.int8),
    )
