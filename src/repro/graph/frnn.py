"""Fixed-radius nearest-neighbour graph construction (pipeline Stage 2).

The embedding MLP maps each hit into a low-dimensional space where hits of
the same particle cluster; this module connects every pair of embedded hits
within a fixed radius, producing the candidate-edge graph the filter and
GNN stages refine.  Built on :class:`scipy.spatial.cKDTree`, which plays
the role of the GPU FRNN kernel in the original pipeline.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["fixed_radius_graph", "knn_graph"]


def fixed_radius_graph(
    embeddings: np.ndarray,
    radius: float,
    max_neighbors: Optional[int] = None,
    loop: bool = False,
) -> np.ndarray:
    """Connect embedded hits within ``radius``.

    Parameters
    ----------
    embeddings:
        ``(n, d)`` embedded hit coordinates.
    radius:
        Connection radius in the embedding space.
    max_neighbors:
        Optional per-vertex cap: keep only the ``max_neighbors`` nearest
        in-radius neighbours (the GPU FRNN kernels have such a cap; it
        also bounds the edge count on dense events).
    loop:
        Include self-loops (the pipeline never wants them; exposed for
        testing).

    Returns
    -------
    np.ndarray
        ``(2, m)`` directed edge index with ``src < dst`` per pair (each
        undirected neighbour pair appears once).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError(f"embeddings must be (n, d), got {embeddings.shape}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    n = embeddings.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64)

    tree = cKDTree(embeddings)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")  # (m, 2), i<j
    if pairs.size == 0:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    else:
        edge_index = pairs.T.astype(np.int64)

    if max_neighbors is not None and edge_index.shape[1] > 0:
        edge_index = _cap_neighbors(embeddings, edge_index, max_neighbors)

    if loop:
        loops = np.arange(n, dtype=np.int64)
        edge_index = np.concatenate([edge_index, np.stack([loops, loops])], axis=1)
    return edge_index


def _cap_neighbors(
    embeddings: np.ndarray, edge_index: np.ndarray, max_neighbors: int
) -> np.ndarray:
    """Keep each vertex's ``max_neighbors`` nearest in-radius edges.

    An edge survives only if it ranks within the cap for *both* endpoints,
    mirroring the symmetric pruning of the FRNN GPU kernel.
    """
    if max_neighbors < 1:
        raise ValueError("max_neighbors must be >= 1")
    src, dst = edge_index
    m = edge_index.shape[1]
    d = np.linalg.norm(embeddings[src] - embeddings[dst], axis=1)
    # Rank every vertex's incident edges (both roles) by distance and drop
    # an edge as soon as it overflows the cap at *either* endpoint, so the
    # surviving undirected degree is at most max_neighbors.
    vertex = np.concatenate([src, dst])
    edge_id = np.tile(np.arange(m, dtype=np.int64), 2)
    dist = np.tile(d, 2)
    order = np.lexsort((dist, vertex))
    ranked_vertex = vertex[order]
    new_block = np.flatnonzero(np.diff(ranked_vertex)) + 1
    starts = np.concatenate([[0], new_block])
    block_of = np.searchsorted(starts, np.arange(len(order)), side="right") - 1
    rank_in_block = np.arange(len(order)) - starts[block_of]
    keep = np.ones(m, dtype=bool)
    keep[edge_id[order[rank_in_block >= max_neighbors]]] = False
    return edge_index[:, keep]


def knn_graph(embeddings: np.ndarray, k: int, loop: bool = False) -> np.ndarray:
    """k-nearest-neighbour candidate graph (alternative to fixed radius).

    Returns a ``(2, m)`` edge index with one undirected edge per neighbour
    pair (deduplicated).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    n = embeddings.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if n <= 1:
        return np.zeros((2, 0), dtype=np.int64)
    tree = cKDTree(embeddings)
    k_eff = min(k + 1, n)  # +1: the query point itself is its own nearest
    _, idx = tree.query(embeddings, k=k_eff)
    src = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    dst = idx.reshape(-1).astype(np.int64)
    mask = src != dst
    src, dst = src[mask], dst[mask]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    undirected = np.unique(np.stack([lo, hi]), axis=1)
    if loop:
        loops = np.arange(n, dtype=np.int64)
        undirected = np.concatenate([undirected, np.stack([loops, loops])], axis=1)
    return undirected
