"""Graph substrate: event graphs, components, subgraphs, FRNN construction."""

from .graph import EventGraph
from .components import (
    UnionFind,
    components_as_lists,
    connected_components,
    connected_components_scipy,
)
from .subgraph import InducedSubgraph, induced_edge_mask, induced_subgraph, selection_matrix
from .frnn import fixed_radius_graph, knn_graph
from .generators import chain_graph, disjoint_chains, random_graph, star_graph
from .partition import block_partition, round_robin_partition, shard_batch
from .stats import GraphStats, describe, describe_many

__all__ = [
    "EventGraph",
    "UnionFind",
    "connected_components",
    "connected_components_scipy",
    "components_as_lists",
    "InducedSubgraph",
    "induced_subgraph",
    "induced_edge_mask",
    "selection_matrix",
    "fixed_radius_graph",
    "knn_graph",
    "random_graph",
    "chain_graph",
    "disjoint_chains",
    "star_graph",
    "block_partition",
    "round_robin_partition",
    "shard_batch",
    "GraphStats",
    "describe",
    "describe_many",
]
