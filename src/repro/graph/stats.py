"""Descriptive statistics of event graphs.

The quantities dataset cards and Table-I-style summaries report: size,
density, degree distribution, label balance, and component structure.
Used by the dataset registry's `summarize` and handy when sizing sampler
hyper-parameters (the fanout should sit near the typical degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .components import connected_components
from .graph import EventGraph

__all__ = ["GraphStats", "describe", "describe_many"]


@dataclass(frozen=True)
class GraphStats:
    """One graph's summary numbers."""

    num_nodes: int
    num_edges: int
    edges_per_vertex: float
    mean_degree: float
    max_degree: int
    isolated_vertices: int
    true_edge_fraction: float
    num_components: int
    largest_component: int

    def render(self) -> str:
        return (
            f"n={self.num_nodes} m={self.num_edges} "
            f"E/V={self.edges_per_vertex:.2f} deg(mean/max)="
            f"{self.mean_degree:.1f}/{self.max_degree} "
            f"isolated={self.isolated_vertices} "
            f"true={100 * self.true_edge_fraction:.1f}% "
            f"components={self.num_components} "
            f"(largest {self.largest_component})"
        )


def describe(graph: EventGraph) -> GraphStats:
    """Compute :class:`GraphStats` for one graph."""
    degrees = graph.degrees(symmetric=True)
    labels = connected_components(graph.rows, graph.cols, graph.num_nodes)
    counts = np.bincount(labels)
    true_frac = (
        graph.true_edge_fraction() if graph.edge_labels is not None and graph.num_edges else 0.0
    )
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        edges_per_vertex=graph.num_edges / max(graph.num_nodes, 1),
        mean_degree=float(degrees.mean()) if graph.num_nodes else 0.0,
        max_degree=int(degrees.max()) if graph.num_nodes else 0,
        isolated_vertices=int(np.sum(degrees == 0)),
        true_edge_fraction=true_frac,
        num_components=int(counts.size),
        largest_component=int(counts.max()) if counts.size else 0,
    )


def describe_many(graphs: Sequence[EventGraph]) -> Dict[str, float]:
    """Aggregate means over a graph collection (a dataset split)."""
    if not graphs:
        raise ValueError("no graphs to describe")
    stats = [describe(g) for g in graphs]
    return {
        "graphs": float(len(stats)),
        "avg_nodes": float(np.mean([s.num_nodes for s in stats])),
        "avg_edges": float(np.mean([s.num_edges for s in stats])),
        "avg_edges_per_vertex": float(np.mean([s.edges_per_vertex for s in stats])),
        "avg_mean_degree": float(np.mean([s.mean_degree for s in stats])),
        "avg_true_fraction": float(np.mean([s.true_edge_fraction for s in stats])),
        "avg_components": float(np.mean([s.num_components for s in stats])),
    }
