"""Vertex partitioning utilities for distributed data parallelism.

DDP in the paper splits each 256-vertex batch across ``P`` GPUs (local
batch size ``256/P``); these helpers produce balanced, deterministic
shards so that the simulated ranks and the tests agree on the split.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["block_partition", "round_robin_partition", "shard_batch"]


def block_partition(items: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Split ``items`` into ``num_parts`` contiguous blocks.

    Block sizes differ by at most one; earlier blocks take the extras.
    """
    items = np.asarray(items)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    return [np.array(part) for part in np.array_split(items, num_parts)]


def round_robin_partition(items: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Deal ``items`` round-robin across ``num_parts`` shards."""
    items = np.asarray(items)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    return [items[r::num_parts] for r in range(num_parts)]


def shard_batch(batch: np.ndarray, rank: int, world_size: int) -> np.ndarray:
    """Return rank ``rank``'s contiguous shard of a batch (paper's 256/P)."""
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")
    return block_partition(batch, world_size)[rank]
