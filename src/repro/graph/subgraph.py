"""Induced-subgraph extraction.

ShaDow (Algorithm 2, line 10: ``SUBGRAPH(A, f)``) and the matrix-based bulk
sampler (the row/column-selection SpGEMMs of Figure 2) both need the
subgraph of the full event graph induced by a vertex subset, with vertices
relabelled to a compact ``0..k-1`` range and features gathered along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import EventGraph

__all__ = ["InducedSubgraph", "induced_subgraph", "induced_edge_mask", "selection_matrix"]


@dataclass
class InducedSubgraph:
    """Result of an induced-subgraph extraction.

    Attributes
    ----------
    graph:
        The relabelled subgraph (vertex ``i`` corresponds to
        ``node_index[i]`` in the parent).
    node_index:
        ``(k,)`` parent vertex id per subgraph vertex.
    edge_index_parent:
        ``(m_s,)`` index into the parent's edge arrays per subgraph edge,
        used to map per-edge GNN scores back onto the full event graph.
    """

    graph: EventGraph
    node_index: np.ndarray
    edge_index_parent: np.ndarray


def induced_edge_mask(graph: EventGraph, nodes: np.ndarray) -> np.ndarray:
    """Boolean mask over the parent's edges with both endpoints in ``nodes``."""
    member = np.zeros(graph.num_nodes, dtype=bool)
    member[np.asarray(nodes, dtype=np.int64)] = True
    return member[graph.rows] & member[graph.cols]


def induced_subgraph(graph: EventGraph, nodes: np.ndarray) -> InducedSubgraph:
    """Extract the subgraph of ``graph`` induced by the vertex set ``nodes``.

    Parameters
    ----------
    graph:
        Parent event graph.
    nodes:
        Vertex ids to keep.  Duplicates are removed; order of first
        occurrence is **not** preserved (vertices are sorted), which is
        irrelevant to message passing but keeps the relabelling a single
        ``searchsorted``.

    Returns
    -------
    InducedSubgraph
        Relabelled subgraph plus the index maps back into the parent.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise ValueError("node ids out of range")
    mask = induced_edge_mask(graph, nodes)
    edge_parent = np.flatnonzero(mask)
    rows = np.searchsorted(nodes, graph.rows[edge_parent])
    cols = np.searchsorted(nodes, graph.cols[edge_parent])
    sub = EventGraph(
        edge_index=np.stack([rows, cols]),
        x=graph.x[nodes],
        y=graph.y[edge_parent],
        edge_labels=None if graph.edge_labels is None else graph.edge_labels[edge_parent],
        particle_ids=None if graph.particle_ids is None else graph.particle_ids[nodes],
        event_id=graph.event_id,
    )
    return InducedSubgraph(graph=sub, node_index=nodes, edge_index_parent=edge_parent)


def selection_matrix(nodes: np.ndarray, n: int) -> sp.csr_matrix:
    """Build the ``k × n`` row-selection matrix ``S`` with ``S[i, nodes[i]] = 1``.

    Extraction in the matrix-based sampler is the SpGEMM sandwich
    ``S A Sᵀ`` (Figure 2's "row and column selection SpGEMMs"); this helper
    constructs ``S``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    k = nodes.shape[0]
    return sp.csr_matrix(
        (np.ones(k, dtype=np.float64), (np.arange(k, dtype=np.int64), nodes)),
        shape=(k, n),
    )
