"""Connected components — the final track-building stage (Stage 5).

After the GNN scores every edge and low-scoring edges are removed, the
remaining connected components *are* the candidate particle tracks.  Two
implementations are provided:

* :class:`UnionFind` — array-based disjoint-set with union by rank and
  path halving, the production path;
* :func:`connected_components_scipy` — delegation to
  ``scipy.sparse.csgraph``, used as an independent oracle in tests next to
  a networkx cross-check.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

__all__ = ["UnionFind", "connected_components", "connected_components_scipy", "components_as_lists"]


class UnionFind:
    """Array-based disjoint-set forest.

    Supports vectorised edge insertion via :meth:`union_edges` so that
    building tracks from millions of surviving edges stays NumPy-speed.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, v: int) -> int:
        """Return the root of ``v``'s set, halving paths along the way."""
        parent = self.parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]  # path halving
            v = parent[v]
        return int(v)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True

    def union_edges(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Union every edge ``(rows[i], cols[i])``."""
        for a, b in zip(np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)):
            self.union(int(a), int(b))

    def labels(self) -> np.ndarray:
        """Return a canonical component label per element (root indices
        renumbered consecutively from zero in first-seen order)."""
        n = len(self.parent)
        roots = np.empty(n, dtype=np.int64)
        for v in range(n):
            roots[v] = self.find(v)
        _, labels = np.unique(roots, return_inverse=True)
        return labels

    def num_components(self) -> int:
        """Number of disjoint sets."""
        return int(np.sum(self.parent == np.arange(len(self.parent))))


def connected_components(rows: np.ndarray, cols: np.ndarray, num_nodes: int) -> np.ndarray:
    """Component label per vertex for the graph given by edge lists.

    Uses the scipy csgraph BFS-based implementation, which is much faster
    than a Python-loop union-find on large events; :class:`UnionFind`
    remains available for incremental use.
    """
    return connected_components_scipy(rows, cols, num_nodes)


def connected_components_scipy(
    rows: np.ndarray, cols: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Component labels via ``scipy.sparse.csgraph.connected_components``."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have equal length")
    adj = sp.coo_matrix(
        (np.ones(len(rows), dtype=np.int8), (rows, cols)),
        shape=(num_nodes, num_nodes),
    )
    _, labels = csgraph.connected_components(adj, directed=False)
    return labels.astype(np.int64)


def components_as_lists(labels: np.ndarray, min_size: int = 1) -> List[np.ndarray]:
    """Group vertex indices by component label.

    Parameters
    ----------
    labels:
        ``(n,)`` component label per vertex.
    min_size:
        Drop components smaller than this (track candidates shorter than
        ~3 hits are unusable and discarded by the pipeline).
    """
    labels = np.asarray(labels)
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)
    return [g for g in groups if len(g) >= min_size]
