"""Combinatorial seed-and-follow track finder — the "traditional" baseline.

The paper's introduction motivates the GNN pipeline with the scaling of
classical algorithms: "Traditional reconstruction algorithms scale
superlinearly with the number of particles within the accelerator."  This
module implements that baseline in its standard form so the claim can be
measured (``benchmarks/bench_pileup_scaling.py``):

1. **seeding** — hit triplets on the three innermost layers compatible
   with a track from the luminous region; the triplet combinatorics are
   the superlinear term (the candidate count grows like the product of
   per-window occupancies, which themselves grow with pileup);
2. **following** — each seed's circle fit is propagated layer by layer,
   capturing the nearest hit inside a road;
3. **ambiguity resolution** — candidates are ranked (hit count, then fit
   residual) and greedily accepted unless they share too many hits with
   an already-accepted track.

The implementation is deliberately classical — per-seed Python/NumPy
work, no learned components — but not strawman-slow: per-layer hits are
φ-sorted for O(log n + k) window queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..detector.events import Event
from ..detector.geometry import DetectorGeometry

__all__ = ["CombinatorialConfig", "CombinatorialTrackFinder"]


@dataclass(frozen=True)
class CombinatorialConfig:
    """Gates of the combinatorial finder.

    Windows are in detector units (rad, mm) and sized for the default
    simulator (B = 2 T, pT ≥ 0.5 GeV, |η| ≤ 1.5, beam spot σ_z = 30 mm).
    """

    seed_dphi: float = 0.10       # φ window, consecutive seed layers
    seed_dz: float = 120.0        # z window, consecutive seed layers
    bend_tolerance: float = 0.04  # allowed φ-kink difference between doublets
    road_rphi: float = 12.0       # r·Δφ road half-width when following [mm]
    road_z: float = 30.0          # z road half-width when following [mm]
    min_hits: int = 4             # candidate length cut
    max_shared_fraction: float = 0.5  # ambiguity: max overlap with accepted

    def __post_init__(self) -> None:
        if self.seed_dphi <= 0 or self.seed_dz <= 0:
            raise ValueError("seed windows must be positive")
        if self.min_hits < 3:
            raise ValueError("min_hits must be >= 3")


def _circle_through(p1, p2, p3) -> Optional[Tuple[float, float, float]]:
    """Circumcircle (cx, cy, r) of three transverse points, or None."""
    ax, ay = p1
    bx, by = p2
    cx_, cy_ = p3
    d = 2.0 * (ax * (by - cy_) + bx * (cy_ - ay) + cx_ * (ay - by))
    if abs(d) < 1e-9:
        return None
    ux = (
        (ax * ax + ay * ay) * (by - cy_)
        + (bx * bx + by * by) * (cy_ - ay)
        + (cx_ * cx_ + cy_ * cy_) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx_ - bx)
        + (bx * bx + by * by) * (ax - cx_)
        + (cx_ * cx_ + cy_ * cy_) * (bx - ax)
    ) / d
    r = float(np.hypot(ax - ux, ay - uy))
    return float(ux), float(uy), r


class _LayerIndex:
    """φ-sorted per-layer hit index supporting wrap-around window queries."""

    def __init__(self, event: Event) -> None:
        r, phi, z = event.cylindrical()
        self.phi = phi
        self.z = z
        self.r = r
        self.by_layer: Dict[int, np.ndarray] = {}
        self.sorted_phi: Dict[int, np.ndarray] = {}
        for lid in np.unique(event.layer_ids):
            idx = np.flatnonzero(event.layer_ids == lid)
            order = np.argsort(phi[idx])
            self.by_layer[int(lid)] = idx[order]
            self.sorted_phi[int(lid)] = phi[idx[order]]

    def query(self, layer: int, phi0: float, dphi: float) -> np.ndarray:
        """Hit ids on ``layer`` with φ within ``±dphi`` of ``phi0``."""
        idx = self.by_layer.get(layer)
        if idx is None:
            return np.zeros(0, dtype=np.int64)
        sp = self.sorted_phi[layer]
        out = []
        for lo, hi in _wrap_intervals(phi0 - dphi, phi0 + dphi):
            a = np.searchsorted(sp, lo)
            b = np.searchsorted(sp, hi)
            out.append(idx[a:b])
        return np.concatenate(out) if out else np.zeros(0, dtype=np.int64)


def _wrap_intervals(lo: float, hi: float) -> List[Tuple[float, float]]:
    """Split a φ interval into [-π, π) pieces (wrap-around)."""
    if hi - lo >= 2 * np.pi:
        return [(-np.pi, np.pi)]
    lo = (lo + np.pi) % (2 * np.pi) - np.pi
    hi = (hi + np.pi) % (2 * np.pi) - np.pi
    if lo <= hi:
        return [(lo, hi)]
    return [(-np.pi, hi), (lo, np.pi)]


class CombinatorialTrackFinder:
    """Seed-and-follow pattern recognition on one event."""

    def __init__(
        self,
        geometry: DetectorGeometry,
        config: Optional[CombinatorialConfig] = None,
    ) -> None:
        self.geometry = geometry
        self.config = config if config is not None else CombinatorialConfig()

    # ------------------------------------------------------------------
    def find_tracks(self, event: Event) -> List[np.ndarray]:
        """Reconstruct track candidates (hit-index arrays)."""
        if event.num_hits == 0:
            return []
        index = _LayerIndex(event)
        seeds = self._make_seeds(event, index)
        candidates = [self._follow(event, index, seed) for seed in seeds]
        candidates = [c for c in candidates if len(c) >= self.config.min_hits]
        return self._resolve_ambiguities(candidates)

    # ------------------------------------------------------------------
    def seed_count(self, event: Event) -> int:
        """Number of seed triplets (the superlinear combinatorial term)."""
        return len(self._make_seeds(event, _LayerIndex(event)))

    def _make_seeds(self, event: Event, index: _LayerIndex) -> List[Tuple[int, int, int]]:
        cfg = self.config
        layers = sorted(index.by_layer)
        if len(layers) < 3:
            return []
        l0, l1, l2 = layers[:3]
        phi, z = index.phi, index.z
        seeds: List[Tuple[int, int, int]] = []
        for a in index.by_layer[l0]:
            bs = index.query(l1, float(phi[a]), cfg.seed_dphi)
            bs = bs[np.abs(z[bs] - z[a]) <= cfg.seed_dz]
            for b in bs:
                dphi_ab = _dphi(phi[b], phi[a])
                cs = index.query(l2, float(phi[b]) + dphi_ab, cfg.seed_dphi)
                cs = cs[np.abs(z[cs] - z[b]) <= cfg.seed_dz]
                for c in cs:
                    # bend consistency: the doublet kinks must agree
                    dphi_bc = _dphi(phi[c], phi[b])
                    if abs(dphi_bc - dphi_ab) <= cfg.bend_tolerance:
                        seeds.append((int(a), int(b), int(c)))
        return seeds

    # ------------------------------------------------------------------
    def _follow(self, event: Event, index: _LayerIndex, seed) -> np.ndarray:
        cfg = self.config
        pos = event.positions
        track = list(seed)
        circle = _circle_through(pos[seed[0], :2], pos[seed[1], :2], pos[seed[2], :2])
        layers = sorted(index.by_layer)
        phi, z, r = index.phi, index.z, index.r
        for layer in layers[3:]:
            radius = None
            for bl in self.geometry.barrel:
                if bl.layer_id == layer:
                    radius = bl.radius
            if radius is None:
                continue
            last, prev = track[-1], track[-2]
            # predicted φ: circle–layer intersection nearest the rotation
            # direction; fall back to linear φ(r) extrapolation
            pred_phi = self._predict_phi(circle, radius, phi[last], phi[prev], r[last], r[prev])
            # predicted z: linear in r (good within a road for |η| ≤ 1.5)
            dr = r[last] - r[prev]
            slope = (z[last] - z[prev]) / dr if abs(dr) > 1e-6 else 0.0
            pred_z = z[last] + slope * (radius - r[last])

            window = cfg.road_rphi / max(radius, 1.0)
            cands = index.query(layer, pred_phi, window)
            if cands.size == 0:
                continue
            dz = np.abs(z[cands] - pred_z)
            cands = cands[dz <= cfg.road_z]
            if cands.size == 0:
                continue
            dphi = np.abs(
                np.arctan2(np.sin(phi[cands] - pred_phi), np.cos(phi[cands] - pred_phi))
            )
            best = cands[np.argmin(dphi * radius + np.abs(z[cands] - pred_z))]
            track.append(int(best))
            circle = _circle_through(
                pos[track[-3], :2], pos[track[-2], :2], pos[track[-1], :2]
            )
        return np.asarray(track, dtype=np.int64)

    def _predict_phi(self, circle, radius, phi_last, phi_prev, r_last, r_prev) -> float:
        if circle is not None:
            cx, cy, rc = circle
            d = float(np.hypot(cx, cy))
            if abs(d - rc) <= radius <= d + rc and d > 1e-9 and rc > 1e-9:
                cos_alpha = (d * d + radius * radius - rc * rc) / (2.0 * d * radius)
                cos_alpha = float(np.clip(cos_alpha, -1.0, 1.0))
                alpha = float(np.arccos(cos_alpha))
                phi_c = float(np.arctan2(cy, cx))
                options = [phi_c + alpha, phi_c - alpha]
                return min(
                    options, key=lambda p: abs(_dphi(p, phi_last))
                )
        # linear extrapolation fallback
        dr = r_last - r_prev
        rate = _dphi(phi_last, phi_prev) / dr if abs(dr) > 1e-6 else 0.0
        return float(phi_last + rate * (radius - r_last))

    # ------------------------------------------------------------------
    def _resolve_ambiguities(self, candidates: List[np.ndarray]) -> List[np.ndarray]:
        cfg = self.config
        # rank: longer first (then lower index for determinism)
        order = sorted(range(len(candidates)), key=lambda i: (-len(candidates[i]), i))
        used: set = set()
        accepted: List[np.ndarray] = []
        for i in order:
            cand = candidates[i]
            shared = sum(1 for h in cand if int(h) in used)
            if shared > cfg.max_shared_fraction * len(cand):
                continue
            accepted.append(cand)
            used.update(int(h) for h in cand)
        return accepted


def _dphi(a: float, b: float) -> float:
    """Signed smallest difference a − b on the circle."""
    return float(np.arctan2(np.sin(a - b), np.cos(a - b)))
