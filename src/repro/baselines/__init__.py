"""Non-ML baselines the paper compares against conceptually.

Currently the combinatorial seed-and-follow track finder — the
"traditional reconstruction algorithm" whose superlinear pileup scaling
motivates the GNN pipeline (paper §I).
"""

from .combinatorial import CombinatorialConfig, CombinatorialTrackFinder

__all__ = ["CombinatorialConfig", "CombinatorialTrackFinder"]
