"""Weight-shared (recurrent) Interaction GNN.

acorn's production IGNN shares one message MLP and one node-update MLP
across all message-passing iterations — an 8-layer network with the
parameter count of one layer.  Functionally identical dataflow to
:class:`repro.models.InteractionGNN`; kept as a separate class so the
ablation bench can compare parameter count, all-reduce volume, and
convergence between the two.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops
from .interaction_gnn import IGNNConfig, _IGNNLayer

__all__ = ["RecurrentInteractionGNN"]


class RecurrentInteractionGNN(Module):
    """Interaction GNN applying one shared layer ``num_layers`` times."""

    def __init__(self, config: IGNNConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        h = config.hidden
        self.node_encoder = MLP(
            config.node_features, h, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=True, rng=rng,
        )
        self.edge_encoder = MLP(
            config.edge_features, h, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=True, rng=rng,
        )
        self.shared_layer = _IGNNLayer(h, config.mlp_layers, config.layer_norm, rng)
        self.output_mlp = MLP(
            h, h, out_features=1, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=False, rng=rng,
        )

    def forward(self, x: Tensor, y: Tensor, rows: np.ndarray, cols: np.ndarray) -> Tensor:
        """Edge logits, sharing the same layer weights per iteration."""
        x = x if isinstance(x, Tensor) else Tensor(x)
        y = y if isinstance(y, Tensor) else Tensor(y)
        num_nodes = x.shape[0]
        x0 = self.node_encoder(x)
        y0 = self.edge_encoder(y)
        xl, yl = x0, y0
        for _ in range(self.config.num_layers):
            xl, yl = self.shared_layer(xl, yl, x0, y0, rows, cols, num_nodes)
        return self.output_mlp(yl).reshape(-1)

    def predict_proba(self, graph) -> np.ndarray:
        """Edge probabilities for an :class:`repro.graph.EventGraph`
        (inference path, no autograd)."""
        from ..tensor import no_grad

        self.eval()
        with no_grad():
            logits = self.forward(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -60, 60)))
