"""Interaction GNN with GRU vertex updates.

acorn's production configuration replaces the node-update MLP of
Algorithm 1 with a GRU: the concatenated aggregates ``[M_src  M_dst]``
are the GRU input and the previous vertex state the hidden state.  The
gating lets very deep stacks (the paper uses 8 iterations) propagate
information without washing out early-layer features, complementing the
residual concatenation.

Weight-shared across iterations like
:class:`repro.models.RecurrentInteractionGNN` (a recurrent cell implies a
recurrent stack).
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, GRUCell, Module
from ..tensor import Tensor, no_grad, ops
from .interaction_gnn import IGNNConfig

__all__ = ["GRUInteractionGNN"]


class GRUInteractionGNN(Module):
    """IGNN with a shared message MLP and a GRU vertex update."""

    def __init__(self, config: IGNNConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        h = config.hidden
        self.node_encoder = MLP(
            config.node_features, h, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=True, rng=rng,
        )
        self.edge_encoder = MLP(
            config.edge_features, h, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=True, rng=rng,
        )
        # message: [Y'  X'[rows]  X'[cols]] with the residual concatenation
        self.edge_mlp = MLP(
            6 * h, h, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=True, rng=rng,
        )
        self.node_gru = GRUCell(2 * h, h, rng=rng)
        self.output_mlp = MLP(
            h, h, out_features=1, num_layers=config.mlp_layers,
            layer_norm=config.layer_norm, output_activation=False, rng=rng,
        )

    def forward(
        self, x: Tensor, y: Tensor, rows: np.ndarray, cols: np.ndarray
    ) -> Tensor:
        """Edge logits after ``num_layers`` gated message-passing steps."""
        x = x if isinstance(x, Tensor) else Tensor(x)
        y = y if isinstance(y, Tensor) else Tensor(y)
        num_nodes = x.shape[0]
        x0 = self.node_encoder(x)
        y0 = self.edge_encoder(y)
        xl, yl = x0, y0
        for _ in range(self.config.num_layers):
            x_res = ops.concat([xl, x0], axis=1)
            y_res = ops.concat([yl, y0], axis=1)
            if self.config.fused:
                # Fused message path (see _IGNNLayer): first edge-MLP
                # Linear absorbed into the endpoint gathers.
                first = self.edge_mlp.first_linear
                yl = self.edge_mlp.forward_tail(
                    ops.gather_concat_matmul(
                        y_res, x_res, rows, cols, first.weight, first.bias
                    )
                )
            else:
                msg_in = ops.concat(
                    [y_res, ops.gather_rows(x_res, rows), ops.gather_rows(x_res, cols)],
                    axis=1,
                )
                yl = self.edge_mlp(msg_in)
            m_src = ops.segment_sum(yl, rows, num_nodes)
            m_dst = ops.segment_sum(yl, cols, num_nodes)
            xl = self.node_gru(ops.concat([m_src, m_dst], axis=1), xl)
        return self.output_mlp(yl).reshape(-1)

    def predict_proba(self, graph) -> np.ndarray:
        """Edge probabilities for an EventGraph (no autograd)."""
        self.eval()
        with no_grad():
            logits = self.forward(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -60, 60)))
