"""Stage-3 edge-filter network.

A cheap MLP classifier that scores each candidate edge from the
concatenation of its endpoint hit features and its edge features, so that
obviously-false edges can be pruned before the memory-intensive GNN ("the
pipeline shrinks this graph with an MLP before being fed into the
memory-intensive GNN").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, no_grad, ops

__all__ = ["FilterConfig", "FilterNet"]


@dataclass(frozen=True)
class FilterConfig:
    """Hyper-parameters of the filter MLP."""

    node_features: int
    edge_features: int
    hidden: int = 64
    mlp_layers: int = 3
    seed: int = 0


class FilterNet(Module):
    """Edge scorer: ``φ([x_src  x_dst  y_edge]) → logit``."""

    def __init__(self, config: FilterConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.mlp = MLP(
            2 * config.node_features + config.edge_features,
            config.hidden,
            out_features=1,
            num_layers=config.mlp_layers,
            layer_norm=True,
            output_activation=False,
            rng=rng,
        )

    def forward(
        self, x: Tensor, y: Tensor, rows: np.ndarray, cols: np.ndarray
    ) -> Tensor:
        """Return ``(m,)`` edge logits."""
        x = x if isinstance(x, Tensor) else Tensor(x)
        y = y if isinstance(y, Tensor) else Tensor(y)
        feats = ops.concat(
            [ops.gather_rows(x, rows), ops.gather_rows(x, cols), y], axis=1
        )
        return self.mlp(feats).reshape(-1)

    def predict_proba(self, graph) -> np.ndarray:
        """Edge pass-probabilities for an EventGraph (no autograd)."""
        self.eval()
        with no_grad():
            logits = self.forward(Tensor(graph.x), Tensor(graph.y), graph.rows, graph.cols)
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -60, 60)))
