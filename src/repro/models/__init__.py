"""Learned components of the pipeline: IGNN, embedding and filter MLPs."""

from .interaction_gnn import IGNNConfig, InteractionGNN
from .recurrent_ignn import RecurrentInteractionGNN
from .checkpointing import CheckpointedIGNN
from .gru_ignn import GRUInteractionGNN
from .embedding_net import EmbeddingConfig, EmbeddingNet, sample_training_pairs
from .filter_net import FilterConfig, FilterNet

__all__ = [
    "IGNNConfig",
    "InteractionGNN",
    "RecurrentInteractionGNN",
    "CheckpointedIGNN",
    "GRUInteractionGNN",
    "EmbeddingConfig",
    "EmbeddingNet",
    "sample_training_pairs",
    "FilterConfig",
    "FilterNet",
]
