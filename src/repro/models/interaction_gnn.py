"""Interaction GNN — Algorithm 1 of the paper.

The Exa.TrkX pipeline's edge classifier is an Interaction Network
(Battaglia et al., 2016): each layer builds a message per edge from the
edge's state and its endpoints' states, aggregates messages at each vertex
by summation, and updates vertex states with an MLP.  After ``L`` layers a
scoring MLP maps the final edge states to one logit per edge.

Faithful to Algorithm 1:

* node/edge encoders first lift raw features to the hidden width
  (``X⁰ ← φ(X)``, ``Y⁰ ← φ(Y)``);
* every layer concatenates the current state with the layer-0 encoding
  (the residual concatenation ``X' ← [Xˡ X⁰]``, ``Y' ← [Yˡ Y⁰]``);
* the message step is ``Yˡ⁺¹ ← φ([Y'  X'[A.rows]  X'[A.cols]])``;
* aggregation is two segment sums, over sources and destinations
  (``M_src ← REDUCTION(Y, A.rows, +)``, ``M_dst ← REDUCTION(Y, A.cols, +)``);
* the vertex update is ``Xˡ⁺¹ ← φ([M_src  M_dst  X'])``.

Each layer holds *distinct* MLPs (the paper: "While each MLP is distinct,
superscripts are omitted"); :class:`RecurrentInteractionGNN` in
:mod:`repro.models.recurrent_ignn` provides the weight-shared variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, ops

__all__ = ["IGNNConfig", "InteractionGNN"]


@dataclass(frozen=True)
class IGNNConfig:
    """Hyper-parameters of the Interaction GNN.

    Defaults follow Section IV-A: hidden dimension 64, 8 message-passing
    layers; ``mlp_layers`` is per-dataset (Table I: 3 for CTD, 2 for Ex3).
    """

    node_features: int
    edge_features: int
    hidden: int = 64
    num_layers: int = 8
    mlp_layers: int = 2
    layer_norm: bool = True
    seed: int = 0
    #: Route the message path through the fused gather/scatter kernels
    #: (same math, tolerance-level float differences from the unfused
    #: reference; set False to fall back to gather → concat → matmul).
    fused: bool = True

    def __post_init__(self) -> None:
        if self.node_features < 1 or self.edge_features < 1:
            raise ValueError("feature dims must be positive")
        if self.hidden < 1 or self.num_layers < 1 or self.mlp_layers < 1:
            raise ValueError("hidden/num_layers/mlp_layers must be positive")


class _IGNNLayer(Module):
    """One message-passing iteration (lines 5-10 of Algorithm 1)."""

    def __init__(
        self, hidden: int, mlp_layers: int, layer_norm: bool, rng, fused: bool = True
    ) -> None:
        super().__init__()
        self.fused = fused
        # Inputs: Y' (2h) ++ X'[rows] (2h) ++ X'[cols] (2h)
        self.edge_mlp = MLP(
            6 * hidden,
            hidden,
            num_layers=mlp_layers,
            layer_norm=layer_norm,
            output_activation=True,
            rng=rng,
        )
        # Inputs: M_src (h) ++ M_dst (h) ++ X' (2h)
        self.node_mlp = MLP(
            4 * hidden,
            hidden,
            num_layers=mlp_layers,
            layer_norm=layer_norm,
            output_activation=True,
            rng=rng,
        )

    def forward(
        self,
        x: Tensor,
        y: Tensor,
        x0: Tensor,
        y0: Tensor,
        rows: np.ndarray,
        cols: np.ndarray,
        num_nodes: int,
    ):
        x_res = ops.concat([x, x0], axis=1)  # X' ← [Xˡ X⁰]
        y_res = ops.concat([y, y0], axis=1)  # Y' ← [Yˡ Y⁰]
        if self.fused:
            # MSG: the first edge-MLP Linear is fused with the endpoint
            # gathers (matmul-then-gather: n·f·h instead of m·f·h per
            # endpoint block), then the MLP tail runs as usual.
            first = self.edge_mlp.first_linear
            y_next = self.edge_mlp.forward_tail(
                ops.gather_concat_matmul(
                    y_res, x_res, rows, cols, first.weight, first.bias
                )
            )
            # AGG + vertex update: both segment sums and the concat with
            # X' are fused into the first node-MLP Linear.
            first = self.node_mlp.first_linear
            x_next = self.node_mlp.forward_tail(
                ops.scatter_mlp_input(
                    y_next, rows, cols, x_res, first.weight, first.bias, num_nodes
                )
            )
            return x_next, y_next
        # Reference (unfused) path: gather → concat → matmul.
        msg_in = ops.concat(
            [y_res, ops.gather_rows(x_res, rows), ops.gather_rows(x_res, cols)], axis=1
        )
        y_next = self.edge_mlp(msg_in)
        # AGG: sum incoming messages over both endpoints
        m_src = ops.segment_sum(y_next, rows, num_nodes)
        m_dst = ops.segment_sum(y_next, cols, num_nodes)
        # Vertex update: Xˡ⁺¹ ← φ([M_src  M_dst  X'])
        x_next = self.node_mlp(ops.concat([m_src, m_dst, x_res], axis=1))
        return x_next, y_next


class InteractionGNN(Module):
    """The full Interaction GNN with a per-edge scoring head.

    Call signature matches Algorithm 1's inputs: the COO adjacency
    (``rows``/``cols``), node features ``X`` and edge features ``Y``.

    Returns the ``(m,)`` edge logits (``σ`` is applied by the loss / the
    evaluation code, never inside the network).
    """

    def __init__(self, config: IGNNConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        h = config.hidden
        self.node_encoder = MLP(
            config.node_features,
            h,
            num_layers=config.mlp_layers,
            layer_norm=config.layer_norm,
            output_activation=True,
            rng=rng,
        )
        self.edge_encoder = MLP(
            config.edge_features,
            h,
            num_layers=config.mlp_layers,
            layer_norm=config.layer_norm,
            output_activation=True,
            rng=rng,
        )
        for l in range(config.num_layers):
            self.register_module(
                f"layer{l}",
                _IGNNLayer(
                    h, config.mlp_layers, config.layer_norm, rng, fused=config.fused
                ),
            )
        # scoring head: no output activation — raw logits
        self.output_mlp = MLP(
            h,
            h,
            out_features=1,
            num_layers=config.mlp_layers,
            layer_norm=config.layer_norm,
            output_activation=False,
            rng=rng,
        )

    def forward(
        self,
        x: Tensor,
        y: Tensor,
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> Tensor:
        """Run edge classification.

        Parameters
        ----------
        x:
            ``(n, f_v)`` node features.
        y:
            ``(m, f_e)`` edge features.
        rows, cols:
            ``(m,)`` COO adjacency (``A.rows`` / ``A.cols``).

        Returns
        -------
        Tensor
            ``(m,)`` edge logits.
        """
        x = x if isinstance(x, Tensor) else Tensor(x)
        y = y if isinstance(y, Tensor) else Tensor(y)
        if y.shape[0] != len(rows) or len(rows) != len(cols):
            raise ValueError("edge feature rows must match adjacency length")
        num_nodes = x.shape[0]
        x0 = self.node_encoder(x)
        y0 = self.edge_encoder(y)
        xl, yl = x0, y0
        for l in range(self.config.num_layers):
            layer: _IGNNLayer = getattr(self, f"layer{l}")
            xl, yl = layer(xl, yl, x0, y0, rows, cols, num_nodes)
        logits = self.output_mlp(yl)
        return logits.reshape(-1)

    def predict_proba(self, graph) -> np.ndarray:
        """Edge probabilities for an :class:`repro.graph.EventGraph`
        (inference path, no autograd)."""
        from ..tensor import no_grad

        dt = next(self.parameters()).data.dtype
        self.eval()
        with no_grad():
            logits = self.forward(
                Tensor(graph.x.astype(dt, copy=False)),
                Tensor(graph.y.astype(dt, copy=False)),
                graph.rows,
                graph.cols,
            )
        self.train()
        return 1.0 / (1.0 + np.exp(-np.clip(logits.numpy(), -60, 60)))
