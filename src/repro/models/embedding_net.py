"""Stage-1 metric-learning embedding network.

An MLP mapping each hit's feature vector into a ``d``-dimensional space in
which hits of the same particle sit close together; the fixed-radius
nearest-neighbour construction (Stage 2) then connects nearby embeddings.
Trained with a contrastive hinge loss over hit pairs: positive pairs
(consecutive hits of one particle) are pulled together, random negative
pairs are pushed beyond a margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor, no_grad, ops

__all__ = ["EmbeddingConfig", "EmbeddingNet", "sample_training_pairs"]


@dataclass(frozen=True)
class EmbeddingConfig:
    """Hyper-parameters of the embedding network."""

    node_features: int
    embedding_dim: int = 8
    hidden: int = 64
    mlp_layers: int = 3
    margin: float = 1.0
    seed: int = 0


class EmbeddingNet(Module):
    """Hit-feature → embedding-space MLP with L2-normalised outputs.

    Normalising embeddings to the unit sphere bounds all pairwise
    distances to [0, 2], which makes the FRNN radius a scale-free
    hyper-parameter.
    """

    def __init__(self, config: EmbeddingConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.mlp = MLP(
            config.node_features,
            config.hidden,
            out_features=config.embedding_dim,
            num_layers=config.mlp_layers,
            layer_norm=True,
            output_activation=False,
            rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        """Embed and L2-normalise: ``(n, f) -> (n, d)`` on the unit sphere."""
        z = self.mlp(x if isinstance(x, Tensor) else Tensor(x))
        norm_sq = ops.sum(ops.mul(z, z), axis=1, keepdims=True)
        inv = ops.pow(ops.add(norm_sq, Tensor(np.float32(1e-12))), -0.5)
        return ops.mul(z, inv)

    def embed(self, x: np.ndarray) -> np.ndarray:
        """Inference path: embeddings as a plain array (no autograd)."""
        self.eval()
        with no_grad():
            z = self.forward(Tensor(np.asarray(x, dtype=np.float32)))
        self.train()
        return z.numpy()


def sample_training_pairs(
    true_segments: np.ndarray,
    num_nodes: int,
    num_negatives_per_positive: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a pair-training set for the embedding loss.

    Parameters
    ----------
    true_segments:
        ``(2, s)`` truth segment hit pairs (positives).
    num_nodes:
        Total hit count (negatives are uniform random pairs, which are
        overwhelmingly likely to be from different particles).
    num_negatives_per_positive:
        Negative-sampling rate.

    Returns
    -------
    (src, dst, labels):
        Parallel arrays; ``labels`` is 1 for positive pairs.
    """
    s = true_segments.shape[1]
    n_neg = s * num_negatives_per_positive
    neg_src = rng.integers(0, num_nodes, size=n_neg)
    neg_dst = rng.integers(0, num_nodes, size=n_neg)
    keep = neg_src != neg_dst
    neg_src, neg_dst = neg_src[keep], neg_dst[keep]
    src = np.concatenate([true_segments[0], neg_src]).astype(np.int64)
    dst = np.concatenate([true_segments[1], neg_dst]).astype(np.int64)
    labels = np.concatenate(
        [np.ones(s, dtype=np.float32), np.zeros(len(neg_src), dtype=np.float32)]
    )
    return src, dst, labels
