"""Gradient checkpointing for the Interaction GNN.

Section III-B's motivation for minibatching is that full-graph training
stores every layer's activations (the ``m·f`` matrices) and therefore
skips large events.  Checkpointing is the classical third option the paper
leaves on the table: store only the *layer-boundary* states during the
forward pass and recompute each layer's interior activations during
backward, cutting the stored footprint from ``O(L · m · f)`` layer
interiors to ``O(L · (n+m) · f)`` boundary states plus a single layer's
working set — at the cost of one extra forward per layer.

:class:`CheckpointedIGNN` wraps a trained/untrained
:class:`repro.models.InteractionGNN` and provides a ``training_step`` that
produces parameter gradients numerically equal to ordinary
backpropagation (verified to tolerance by the tests), while the
:class:`repro.memory.ActivationMemoryModel` companion method
``checkpointed_bytes`` prices the reduced footprint for the ablation
bench.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..tensor import Tensor, no_grad, ops
from .interaction_gnn import InteractionGNN

__all__ = ["CheckpointedIGNN"]


def _seeded_scalar(outputs, seeds) -> Tensor:
    """Build ``Σ_i <output_i, seed_i>`` so one backward pass delivers the
    vector-Jacobian product for several outputs at once."""
    total: Optional[Tensor] = None
    for out, seed in zip(outputs, seeds):
        if seed is None:
            continue
        term = ops.sum(ops.mul(out, Tensor(seed)))
        total = term if total is None else ops.add(total, term)
    if total is None:
        raise ValueError("at least one non-None seed required")
    return total


class CheckpointedIGNN:
    """Memory-frugal training wrapper around an :class:`InteractionGNN`.

    Parameters
    ----------
    model:
        The wrapped network.  Its parameters receive the gradients; the
        wrapper holds no state of its own.
    """

    def __init__(self, model: InteractionGNN) -> None:
        self.model = model

    # ------------------------------------------------------------------
    def training_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        labels: np.ndarray,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    ) -> float:
        """Forward + checkpointed backward; accumulates parameter grads.

        Returns the loss value.  Equivalent to::

            loss = loss_fn(model(x, y, rows, cols), labels)
            loss.backward()

        but with only layer-boundary activations retained between the
        passes.
        """
        model = self.model
        L = model.config.num_layers
        num_nodes = x.shape[0]

        # ---- forward, grad-free, checkpointing the boundary states ----
        with no_grad():
            x0 = model.node_encoder(Tensor(np.asarray(x, dtype=np.float32)))
            y0 = model.edge_encoder(Tensor(np.asarray(y, dtype=np.float32)))
            states: list[Tuple[np.ndarray, np.ndarray]] = [(x0.numpy(), y0.numpy())]
            xl, yl = x0, y0
            for l in range(L):
                layer = getattr(model, f"layer{l}")
                xl, yl = layer(xl, yl, x0, y0, rows, cols, num_nodes)
                states.append((xl.numpy(), yl.numpy()))

        x0_np, y0_np = states[0]

        # ---- head: recompute with grad, seed the edge-state gradient ----
        yL = Tensor(states[L][1], requires_grad=True)
        logits = model.output_mlp(yL).reshape(-1)
        loss = loss_fn(logits, np.asarray(labels, dtype=np.float32))
        loss.backward()
        dyl: Optional[np.ndarray] = yL.grad
        dxl: Optional[np.ndarray] = None  # the final vertex update is dead

        # running gradient w.r.t. the encoder outputs (x0, y0 feed every
        # layer through the residual concatenation)
        dx0 = np.zeros_like(x0_np)
        dy0 = np.zeros_like(y0_np)

        # ---- layers, deepest first: recompute then VJP ----
        for l in reversed(range(L)):
            layer = getattr(model, f"layer{l}")
            x_in = Tensor(states[l][0], requires_grad=True)
            y_in = Tensor(states[l][1], requires_grad=True)
            x0_t = Tensor(x0_np, requires_grad=True)
            y0_t = Tensor(y0_np, requires_grad=True)
            x_out, y_out = layer(x_in, y_in, x0_t, y0_t, rows, cols, num_nodes)
            _seeded_scalar((x_out, y_out), (dxl, dyl)).backward()
            dxl = x_in.grad
            dyl = y_in.grad
            if x0_t.grad is not None:
                dx0 += x0_t.grad
            if y0_t.grad is not None:
                dy0 += y0_t.grad

        # layer 0's inputs *are* the encoder outputs
        if dxl is not None:
            dx0 += dxl
        if dyl is not None:
            dy0 += dyl

        # ---- encoders: recompute with grad, seed with accumulated VJPs ----
        x0_live = model.node_encoder(Tensor(np.asarray(x, dtype=np.float32)))
        _seeded_scalar((x0_live,), (dx0,)).backward()
        y0_live = model.edge_encoder(Tensor(np.asarray(y, dtype=np.float32)))
        _seeded_scalar((y0_live,), (dy0,)).backward()

        return loss.item()
