"""GNN-stage trainers: full-graph, sequential ShaDow, and bulk ShaDow.

This module implements the three training regimes Figure 3 / Figure 4
compare:

* **full** — the original Exa.TrkX behaviour: each training step consumes
  one entire event graph; events whose activation memory exceeds the
  device budget are *skipped* (Section III-B).
* **shadow** — minibatch training over 256-vertex batches with the
  sequential ShaDow sampler (the "PyG implementation" baseline).
* **bulk** — the paper's pipeline: matrix-based bulk ShaDow sampling of
  ``k`` minibatches per step, DDP gradient sync with the coalesced
  all-reduce.

All regimes share the evaluation path (pooled validation-edge precision /
recall at threshold 0.5 — the Figure-4 definition), the optimiser (Adam),
and the loss (BCE-with-logits with a class-balance ``pos_weight``).
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import EpochPlan, PrefetchLoader
from ..distributed import (
    CommStats,
    DistributedDataParallel,
    create_communicator,
    replicate_model,
)
from ..faults import FaultPlan, RetryPolicy, SimClock, call_with_retries
from ..graph import EventGraph
from ..guard import (
    DivergenceError,
    GraphValidator,
    Quarantine,
    StabilityWatchdog,
    TrainingUnstableError,
    WatchdogConfig,
    global_grad_norm,
)
from ..io.serialization import clean_stale_tmp
from ..memory import ActivationMemoryModel
from ..metrics import EpochRecord, TrainingHistory, pooled_precision_recall
from ..models import IGNNConfig, InteractionGNN
from ..nn import Adam, BCEWithLogitsLoss
from ..obs import get_telemetry, get_tracer
from ..perf import StageTimer
from ..sampling import BulkShadowSampler, SampledBatch, ShadowSampler
from ..tensor import Tensor, no_grad
from .checkpoint import TrainerState, load_with_fallback, save_trainer_checkpoint
from .config import GNNTrainConfig

__all__ = ["GNNTrainResult", "train_gnn", "evaluate_edge_classifier", "derive_pos_weight"]


@dataclass
class GNNTrainResult:
    """Everything a bench or a pipeline stage needs after GNN training."""

    model: InteractionGNN
    history: TrainingHistory
    timers: StageTimer
    comm_stats: Optional[CommStats] = None
    skipped_graphs: int = 0
    trained_steps: int = 0
    checkpointed_steps: int = 0
    config: Optional[GNNTrainConfig] = None
    resumed_epoch: Optional[int] = None  # first epoch of a resumed run
    checkpoints_written: int = 0
    # Guardrail accounting (see docs/resilience.md):
    quarantined_graphs: int = 0  # inputs dropped by validate_inputs
    watchdog_rollbacks: int = 0  # divergence rollbacks consumed
    resume_fallback_path: Optional[str] = None  # history checkpoint used
    # when the one at resume_from was corrupt (None = no fallback)


class _TrainingGovernor:
    """Scheduler stepping, early stopping, and best-checkpoint tracking.

    Shared by the full-graph and minibatch trainers so all regimes get the
    same conveniences: an optional LR schedule ("cosine" anneals over the
    epoch budget, "step" decays 10× at 2/3 of it), patience-based early
    stopping on validation F1, and best-weights restoration.
    """

    def __init__(self, config: GNNTrainConfig, optimizers: Sequence[Adam]) -> None:
        from ..nn import CosineAnnealingLR, StepLR

        self.config = config
        self.schedulers = []
        if config.scheduler == "cosine":
            self.schedulers = [
                CosineAnnealingLR(o, t_max=config.epochs, eta_min=config.lr * 0.01)
                for o in optimizers
            ]
        elif config.scheduler == "step":
            step = max(2 * config.epochs // 3, 1)
            self.schedulers = [StepLR(o, step_size=step, gamma=0.1) for o in optimizers]
        self.best_f1 = -1.0
        self.best_state = None
        self.evals_since_best = 0

    def end_epoch(self, model, record: EpochRecord) -> bool:
        """Advance schedules; returns True when training should stop."""
        for s in self.schedulers:
            s.step()
        f1 = record.val_f1
        if np.isnan(f1):
            return False  # epoch without evaluation
        if f1 > self.best_f1:
            self.best_f1 = f1
            self.evals_since_best = 0
            if self.config.restore_best:
                self.best_state = model.state_dict()
        else:
            self.evals_since_best += 1
        patience = self.config.early_stopping_patience
        return patience is not None and self.evals_since_best >= patience

    def finalize(self, model) -> None:
        """Restore the best-validation weights if requested."""
        if self.config.restore_best and self.best_state is not None:
            model.load_state_dict(self.best_state)

    # -- checkpoint support (best_state travels separately as arrays) --
    def state_dict(self) -> dict:
        return {
            "best_f1": self.best_f1,
            "evals_since_best": self.evals_since_best,
            "scheduler_epoch": self.schedulers[0].epoch if self.schedulers else 0,
        }

    def load_state_dict(self, state: dict, best_state=None) -> None:
        self.best_f1 = float(state["best_f1"])
        self.evals_since_best = int(state["evals_since_best"])
        for s in self.schedulers:
            s.epoch = int(state["scheduler_epoch"])
        if best_state:
            self.best_state = best_state


class _FaultToleranceRuntime:
    """Checkpoint / resume / retry wiring shared by every training regime.

    One instance per :func:`train_gnn` call.  It applies a resume
    checkpoint to freshly built models/optimizers, and writes periodic
    checkpoints with transient-I/O retry (deterministic simulated
    backoff — the trainer never sleeps wall-time).
    """

    def __init__(
        self,
        config: GNNTrainConfig,
        fault_plan: Optional[FaultPlan],
        retry_policy: Optional[RetryPolicy],
        clock: Optional[SimClock] = None,
        rollback_resume: bool = False,
    ) -> None:
        self.config = config
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else SimClock()
        self.checkpoints_written = 0
        self.resumed_epoch: Optional[int] = None
        # Watchdog-rollback resumes deliberately change the lr (backoff),
        # which the config-match validation must exempt and the restored
        # optimiser state must not clobber.
        self.rollback_resume = rollback_resume
        self.resume_fallback_path: Optional[str] = None
        if config.checkpoint_path is not None:
            # interrupted atomic writes strand *.tmp.npz siblings; sweep
            # them at writer startup (never valid checkpoints)
            clean_stale_tmp(os.path.dirname(os.path.abspath(config.checkpoint_path)))

    def resume(self, models, optimizers, rng, governor) -> Optional[TrainerState]:
        """Restore checkpointed state into every replica; None if fresh.

        A corrupt checkpoint at ``resume_from`` (checksum mismatch,
        truncation) falls back to the newest retained history checkpoint
        that verifies — see :func:`~repro.pipeline.checkpoint.load_with_fallback`.
        """
        if self.config.resume_from is None:
            return None
        extra_exempt = ("lr",) if self.rollback_resume else ()
        with get_tracer().span(
            "checkpoint.resume",
            category="checkpoint",
            path=self.config.resume_from,
        ) as span:
            state, used_path, fell_back = load_with_fallback(
                self.config.resume_from, self.config, extra_exempt
            )
            if fell_back:
                self.resume_fallback_path = used_path
                telemetry = get_telemetry()
                if telemetry is not None:
                    telemetry.metrics.counter("guard.resume.fallback").add(1)
                get_tracer().event(
                    "guard.resume_fallback",
                    category="guard",
                    requested=self.config.resume_from,
                    used=used_path,
                )
            for m in models:
                m.load_state_dict(state.model_state)
            for opt in optimizers:
                opt.load_state_dict(state.optimizer_state)
            if self.rollback_resume:
                # the archive restored the pre-backoff lr with the Adam
                # moments; re-apply the backed-off one
                for opt in optimizers:
                    opt.lr = self.config.lr
            governor.load_state_dict(state.governor_state, state.best_state)
            rng.bit_generator.state = state.rng_state
            self.resumed_epoch = state.epochs_done
            span.set(epochs_done=state.epochs_done, fallback=fell_back)
        return state

    def maybe_checkpoint(
        self,
        epoch: int,
        model,
        optimizer: Adam,
        rng: np.random.Generator,
        history: TrainingHistory,
        governor: _TrainingGovernor,
        steps: int,
        skipped: int = 0,
        checkpointed_steps: int = 0,
    ) -> None:
        """Write a checkpoint if epoch ``epoch`` completes a period."""
        cfg = self.config
        if cfg.checkpoint_every is None or (epoch + 1) % cfg.checkpoint_every != 0:
            return
        state = TrainerState(
            epochs_done=epoch + 1,
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=rng.bit_generator.state,
            history=history,
            governor_state=governor.state_dict(),
            best_state=governor.best_state,
            trained_steps=steps,
            skipped_graphs=skipped,
            checkpointed_steps=checkpointed_steps,
        )
        with get_tracer().span(
            "checkpoint.save",
            category="checkpoint",
            epoch=epoch,
            path=cfg.checkpoint_path,
        ):
            call_with_retries(
                lambda: save_trainer_checkpoint(
                    cfg.checkpoint_path, cfg, state,
                    fault_plan=self.fault_plan, keep_last=cfg.keep_last,
                ),
                self.retry_policy,
                self.clock,
                retry_on=(OSError,),
            )
        self.checkpoints_written += 1

    def maybe_step_checkpoint(
        self,
        epoch: int,
        step_in_epoch: int,
        model,
        optimizer: Adam,
        epoch_rng_state: Dict[str, Any],
        history: TrainingHistory,
        governor: _TrainingGovernor,
        steps: int,
        epoch_losses: Sequence[float],
    ) -> None:
        """Write a mid-epoch checkpoint every ``checkpoint_every_steps``.

        Unlike the epoch-boundary checkpoint, the archive records the
        *epoch-start* RNG state plus the loader cursor (bulk steps
        consumed) and the partial-epoch losses; the resuming run rebuilds
        the identical :class:`~repro.data.EpochPlan` and skips ahead.
        """
        cfg = self.config
        if (
            cfg.checkpoint_every_steps is None
            or step_in_epoch == 0
            or step_in_epoch % cfg.checkpoint_every_steps != 0
        ):
            return
        state = TrainerState(
            epochs_done=epoch,
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=epoch_rng_state,
            history=history,
            governor_state=governor.state_dict(),
            best_state=governor.best_state,
            trained_steps=steps,
            step_in_epoch=step_in_epoch,
            epoch_losses=list(epoch_losses),
        )
        with get_tracer().span(
            "checkpoint.save",
            category="checkpoint",
            epoch=epoch,
            step=step_in_epoch,
            path=cfg.checkpoint_path,
        ):
            call_with_retries(
                lambda: save_trainer_checkpoint(
                    cfg.checkpoint_path, cfg, state,
                    fault_plan=self.fault_plan, keep_last=cfg.keep_last,
                ),
                self.retry_policy,
                self.clock,
                retry_on=(OSError,),
            )
        self.checkpoints_written += 1


def derive_pos_weight(graphs: Sequence[EventGraph]) -> float:
    """Class-balance positive weight: (#negative edges) / (#positive edges)."""
    pos = sum(int(g.edge_labels.sum()) for g in graphs)
    neg = sum(g.num_edges for g in graphs) - pos
    if pos == 0:
        return 1.0
    return max(neg / pos, 1.0)


def evaluate_edge_classifier(
    model: InteractionGNN,
    graphs: Sequence[EventGraph],
    threshold: float = 0.5,
) -> Tuple[float, float]:
    """Pooled precision/recall over full validation graphs (Figure 4)."""
    pairs = []
    for g in graphs:
        scores = model.predict_proba(g)
        pairs.append((scores, g.edge_labels))
    return pooled_precision_recall(pairs, threshold=threshold)


def _model_factory(config: GNNTrainConfig, sample_graph: EventGraph) -> Callable[[], InteractionGNN]:
    ignn_config = IGNNConfig(
        node_features=sample_graph.num_node_features,
        edge_features=sample_graph.num_edge_features,
        hidden=config.hidden,
        num_layers=config.num_layers,
        mlp_layers=config.mlp_layers,
        seed=config.seed,
        fused=config.fused_kernels,
    )
    dtype = np.dtype(config.precision)

    def factory() -> InteractionGNN:
        model = InteractionGNN(ignn_config)
        if dtype != np.float32:
            model.astype(dtype)  # float64 reference mode
        return model

    return factory


def _step(
    model: InteractionGNN,
    graph: EventGraph,
    loss_fn: BCEWithLogitsLoss,
    fault_plan: Optional[FaultPlan] = None,
    watchdog: Optional[StabilityWatchdog] = None,
) -> Tensor:
    """One forward/backward on a (sub)graph; returns the loss tensor.

    With a ``fault_plan``, a scheduled :class:`~repro.faults.NumericFault`
    corrupts this execution: target ``"loss"`` overwrites the observed
    loss with NaN before the finiteness check (the step fails before
    ``backward``); target ``"grad"`` poisons the first parameter gradient
    after ``backward``.  With a ``watchdog``, the loss and the global
    gradient norm are fed to it, so divergence raises
    :class:`~repro.guard.DivergenceError` for the rollback loop in
    :func:`train_gnn`.

    Raises
    ------
    FloatingPointError
        If the loss is not finite and no watchdog is observing — a
        diverged run must fail loudly rather than silently poison the
        replicas (under DDP a NaN gradient spreads to every rank at the
        next all-reduce).
    DivergenceError
        The watchdog-observed variant of the same condition, plus
        loss-spike and non-finite-grad-norm triggers.
    """
    tracer = get_tracer()
    fault_target = fault_plan.numeric_fault_target() if fault_plan is not None else None
    dt = next(model.parameters()).data.dtype
    with tracer.span("forward", category="train", edges=graph.num_edges):
        logits = model(
            Tensor(graph.x.astype(dt, copy=False)),
            Tensor(graph.y.astype(dt, copy=False)),
            graph.rows,
            graph.cols,
        )
        loss = loss_fn(logits, graph.edge_labels.astype(np.float32))
    loss_value = float("nan") if fault_target == "loss" else loss.item()
    if watchdog is not None:
        watchdog.observe_loss(loss_value)
    if not np.isfinite(loss_value):
        raise FloatingPointError(
            f"non-finite training loss ({loss_value}) on event "
            f"{graph.event_id} — check the learning rate / input features"
        )
    with tracer.span("backward", category="train"):
        loss.backward()
    if fault_target == "grad":
        for p in model.parameters():
            if p.grad is not None:
                p.grad[...] = np.nan
                break
    if watchdog is not None:
        watchdog.observe_grad_norm(global_grad_norm(model))
    return loss


# ----------------------------------------------------------------------
# full-graph regime
# ----------------------------------------------------------------------
def _train_full_graph(
    train_graphs: Sequence[EventGraph],
    val_graphs: Sequence[EventGraph],
    config: GNNTrainConfig,
    loss_fn: BCEWithLogitsLoss,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    watchdog: Optional[StabilityWatchdog] = None,
) -> GNNTrainResult:
    if config.world_size != 1:
        raise ValueError("full-graph mode is single-rank (as in the original pipeline)")
    from ..models import CheckpointedIGNN

    model = _model_factory(config, train_graphs[0])()
    checkpointed = CheckpointedIGNN(model)
    optimizer = Adam(model.parameters(), lr=config.lr)
    memory = ActivationMemoryModel(model.config)
    timers = StageTimer()
    history = TrainingHistory(label="full-graph")
    rng = np.random.default_rng(config.seed)
    governor = _TrainingGovernor(config, [optimizer])
    runtime = _FaultToleranceRuntime(
        config, fault_plan, retry_policy,
        rollback_resume=watchdog is not None and watchdog.rollbacks > 0,
    )
    skipped = 0
    checkpointed_steps = 0
    steps = 0
    start_epoch = 0
    resumed = runtime.resume([model], [optimizer], rng, governor)
    if resumed is not None:
        start_epoch = resumed.epochs_done
        history = resumed.history
        skipped = resumed.skipped_graphs
        checkpointed_steps = resumed.checkpointed_steps
        steps = resumed.trained_steps

    for epoch in range(start_epoch, config.epochs):
        order = rng.permutation(len(train_graphs))
        losses = []
        epoch_t0 = timers.total("epoch")
        train_t0 = timers.total("training")
        with timers.scope("epoch"):
            for gi in order:
                graph = train_graphs[gi]
                use_checkpoint = False
                if config.capacity_bytes is not None and not memory.fits(
                    graph.num_nodes, graph.num_edges, config.capacity_bytes
                ):
                    # graph exceeds the activation budget: retry with
                    # gradient checkpointing if enabled, else skip (the
                    # original Exa.TrkX behaviour)
                    if config.checkpoint_activations and (
                        memory.checkpointed_bytes(graph.num_nodes, graph.num_edges)
                        <= config.capacity_bytes
                    ):
                        use_checkpoint = True
                    else:
                        skipped += 1
                        continue
                with timers.scope("training"):
                    optimizer.zero_grad()
                    if use_checkpoint:
                        loss_value = checkpointed.training_step(
                            graph.x,
                            graph.y,
                            graph.rows,
                            graph.cols,
                            graph.edge_labels.astype(np.float32),
                            loss_fn,
                        )
                        checkpointed_steps += 1
                        if watchdog is not None:
                            watchdog.observe_loss(loss_value)
                    else:
                        loss_value = _step(
                            model, graph, loss_fn, fault_plan, watchdog
                        ).item()
                    optimizer.step()
                losses.append(loss_value)
                steps += 1
        precision, recall = (
            evaluate_edge_classifier(model, val_graphs, config.threshold)
            if (epoch + 1) % config.eval_every == 0
            else (float("nan"), float("nan"))
        )
        history.append(
            EpochRecord(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                val_precision=precision,
                val_recall=recall,
                epoch_seconds=timers.total("epoch") - epoch_t0,
                training_seconds=timers.total("training") - train_t0,
            )
        )
        stop = governor.end_epoch(model, history.final)
        runtime.maybe_checkpoint(
            epoch, model, optimizer, rng, history, governor,
            steps, skipped, checkpointed_steps,
        )
        if stop:
            break
    governor.finalize(model)
    return GNNTrainResult(
        model=model,
        history=history,
        timers=timers,
        skipped_graphs=skipped,
        trained_steps=steps,
        checkpointed_steps=checkpointed_steps,
        config=config,
        resumed_epoch=runtime.resumed_epoch,
        checkpoints_written=runtime.checkpoints_written,
        resume_fallback_path=runtime.resume_fallback_path,
    )


# ----------------------------------------------------------------------
# minibatch regimes (sequential ShaDow and bulk ShaDow), with DDP
# ----------------------------------------------------------------------
def _train_minibatch(
    train_graphs: Sequence[EventGraph],
    val_graphs: Sequence[EventGraph],
    config: GNNTrainConfig,
    loss_fn: BCEWithLogitsLoss,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    watchdog: Optional[StabilityWatchdog] = None,
) -> GNNTrainResult:
    factory = _model_factory(config, train_graphs[0])
    world = config.world_size
    models = replicate_model(factory, world)
    # The communicator must exist before PrefetchLoader starts worker
    # threads: the proc backend forks, and forking a multi-threaded
    # process is unsafe (the child may inherit held locks).
    comm = create_communicator(config.backend, world, fault_plan=fault_plan)
    clock = SimClock()
    ddp = DistributedDataParallel(
        models,
        comm,
        strategy=config.allreduce,
        retry_policy=retry_policy,
        clock=clock,
    )
    # Optimisers are keyed by *global* rank so elastic recovery (a rank
    # permanently failing mid-run) drops exactly the dead rank's state.
    optimizers = {
        grank: Adam(m.parameters(), lr=config.lr)
        for grank, m in zip(ddp.global_ranks, ddp.models)
    }

    try:
        if config.mode == "shadow":
            sampler = ShadowSampler(depth=config.depth, fanout=config.fanout)
            k = 1
            label = f"shadow-seq (P={world})"
        elif config.mode == "bulk":
            sampler = BulkShadowSampler(depth=config.depth, fanout=config.fanout)
            k = config.bulk_k
            label = f"shadow-bulk k={config.bulk_k} (P={world})"
        elif config.mode == "nodewise":
            from ..sampling import BulkNodeWiseSampler

            sampler = BulkNodeWiseSampler([config.fanout] * config.depth)
            k = config.bulk_k
            label = f"nodewise-bulk k={config.bulk_k} (P={world})"
        else:  # saint
            from ..sampling import SaintRWSampler

            sampler = SaintRWSampler(walk_length=config.depth)
            k = 1
            label = f"saint-rw (P={world})"

        timers = StageTimer()
        history = TrainingHistory(label=label)
        rng = np.random.default_rng(config.seed)
        governor = _TrainingGovernor(config, list(optimizers.values()))
        runtime = _FaultToleranceRuntime(
            config, fault_plan, retry_policy, clock,
            rollback_resume=watchdog is not None and watchdog.rollbacks > 0,
        )
        loader = PrefetchLoader(
            sampler, workers=config.prefetch_workers, depth=config.prefetch_depth
        )
        steps = 0
        start_epoch = 0
        resume_step = 0
        resume_losses: List[float] = []
        resumed = runtime.resume(
            ddp.models, list(optimizers.values()), rng, governor
        )
        if resumed is not None:
            start_epoch = resumed.epochs_done
            history = resumed.history
            steps = resumed.trained_steps
            # mid-epoch checkpoint: rng_state above is the epoch-start state;
            # rebuild the interrupted epoch's plan and skip the consumed steps
            resume_step = resumed.step_in_epoch
            resume_losses = list(resumed.epoch_losses)

        budget_exhausted = False
        for epoch in range(start_epoch, config.epochs):
            # Snapshot before the plan consumes the RNG: a mid-epoch
            # checkpoint stores this state so the resuming run can rebuild
            # the identical plan (EpochPlan.build is the epoch's only RNG
            # consumer — see repro.data.prefetch).
            epoch_rng_state = copy.deepcopy(rng.bit_generator.state)
            first = epoch == start_epoch
            losses = list(resume_losses) if first else []
            start_step = resume_step if first else 0
            step_in_epoch = start_step
            epoch_t0 = timers.total("epoch")
            sample_t0 = timers.total("sampling")
            train_t0 = timers.total("training")
            comm_t0 = comm.stats.modeled_seconds
            with timers.scope("epoch"):
                plan = EpochPlan.build(train_graphs, config.batch_size, k, rng)
                # Each live rank samples & trains its shard of every batch
                # in a step's group.  Ranks execute sequentially here (one
                # CPU), so measured sampling/training time is the *sum over
                # ranks*; benches divide by P when projecting.  After an
                # elastic rank eviction the loader re-shards queued steps
                # over the survivors, so no shard is silently dropped.
                # With prefetch workers the "sampling" scope measures only
                # the trainer-thread *stall* — sampler work hidden behind
                # training compute no longer shows up in epoch time.
                stepper = loader.iter_epoch(
                    plan, lambda: tuple(ddp.global_ranks), start=start_step
                )
                while True:
                    with get_tracer().span("batch", category="train") as batch_span:
                        with timers.scope("sampling"):
                            item = next(stepper, None)
                        if item is None:
                            break
                        step, rank_sampled = item
                        batch_span.set(group_size=len(step.batches))
                        # one optimisation step per batch in the group
                        for bi in range(len(step.batches)):
                            with timers.scope("training"):
                                for grank, model in zip(ddp.global_ranks, ddp.models):
                                    optimizers[grank].zero_grad()
                                    sb = rank_sampled[grank][bi]
                                    loss = _step(
                                        model, sb.graph, loss_fn, fault_plan, watchdog
                                    )
                                    if grank == ddp.global_ranks[0]:
                                        losses.append(loss.item())
                                # may evict permanently failed ranks (elastic
                                # recovery) or retry transient comm faults
                                with get_tracer().span("allreduce", category="train"):
                                    ddp.synchronize_gradients()
                                for grank in ddp.global_ranks:
                                    optimizers[grank].step()
                            steps += 1
                    step_in_epoch += 1
                    runtime.maybe_step_checkpoint(
                        epoch, step_in_epoch, ddp.models[0],
                        optimizers[ddp.global_ranks[0]], epoch_rng_state,
                        history, governor, steps, losses,
                    )
                    if config.max_steps is not None and steps >= config.max_steps:
                        budget_exhausted = True
                        break
            if budget_exhausted and step_in_epoch < len(plan):
                # stopped mid-epoch: no epoch record — exactly the state a
                # crash would leave, with the step checkpoint as resume point
                break
            lead = ddp.models[0]
            precision, recall = (
                evaluate_edge_classifier(lead, val_graphs, config.threshold)
                if (epoch + 1) % config.eval_every == 0
                else (float("nan"), float("nan"))
            )
            history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)) if losses else float("nan"),
                    val_precision=precision,
                    val_recall=recall,
                    epoch_seconds=timers.total("epoch") - epoch_t0,
                    sampling_seconds=timers.total("sampling") - sample_t0,
                    training_seconds=timers.total("training") - train_t0,
                    comm_modeled_seconds=comm.stats.modeled_seconds - comm_t0,
                )
            )
            stop = governor.end_epoch(lead, history.final)
            runtime.maybe_checkpoint(
                epoch, lead, optimizers[ddp.global_ranks[0]], rng, history,
                governor, steps,
            )
            # Multi-process backends buffer per-rank spans/metrics worker-side;
            # pull the deltas into the driver's trace at each epoch boundary
            # (close() collects whatever the final partial epoch leaves).
            collect = getattr(comm, "collect_worker_telemetry", None)
            if collect is not None:
                collect()
            if stop or budget_exhausted:
                break
        governor.finalize(ddp.models[0])
        if config.restore_best and governor.best_state is not None:
            # keep the replicas bit-identical after restoration
            for m in ddp.models[1:]:
                m.load_state_dict(governor.best_state)
        return GNNTrainResult(
            model=ddp.models[0],
            history=history,
            timers=timers,
            comm_stats=comm.stats,
            trained_steps=steps,
            config=config,
            resumed_epoch=runtime.resumed_epoch,
            checkpoints_written=runtime.checkpoints_written,
            resume_fallback_path=runtime.resume_fallback_path,
        )
    finally:
        comm.close()


# ----------------------------------------------------------------------
def train_gnn(
    train_graphs: Sequence[EventGraph],
    val_graphs: Sequence[EventGraph],
    config: GNNTrainConfig,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> GNNTrainResult:
    """Train the GNN stage under the configured regime.

    Parameters
    ----------
    train_graphs, val_graphs:
        Labelled event graphs (candidate-segment graphs).
    config:
        See :class:`repro.pipeline.config.GNNTrainConfig`.  With
        ``checkpoint_every`` / ``checkpoint_path`` set, complete trainer
        state is checkpointed periodically (atomic + checksummed); with
        ``resume_from``, training continues from that checkpoint and is
        bit-identical to an uninterrupted run.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` injecting deterministic
        communication / checkpoint-I/O failures, for exercising the
        recovery paths (tests and chaos drills).
    retry_policy:
        Backoff schedule for transient faults (defaults to
        :class:`repro.faults.RetryPolicy`); all delays run on a simulated
        clock.

    Guardrails (see ``docs/resilience.md``)
    ---------------------------------------
    With ``config.validate_inputs``, malformed graphs (non-finite
    features, out-of-range edges, missing labels) are quarantined at
    ingestion instead of crashing an epoch deep into training.  With
    ``config.watchdog``, a :class:`~repro.guard.StabilityWatchdog`
    observes every step; on divergence (NaN/Inf loss or gradient, loss
    spike) training rolls back to the last checkpoint, backs off the
    learning rate by ``watchdog_lr_backoff``, and retries — at most
    ``watchdog_max_rollbacks`` times before
    :class:`~repro.guard.TrainingUnstableError` escapes.
    """
    if not train_graphs:
        raise ValueError("no training graphs")
    quarantined = 0
    if config.validate_inputs:
        quarantine = Quarantine(GraphValidator(), context="train_gnn", kind="graph")
        train_graphs = quarantine.filter(list(train_graphs))
        val_graphs = quarantine.filter(list(val_graphs))
        quarantined = quarantine.quarantined
        if not train_graphs:
            raise ValueError(
                "every training graph was quarantined "
                f"({quarantined} dropped); nothing left to train on"
            )
    if any(g.edge_labels is None for g in list(train_graphs) + list(val_graphs)):
        raise ValueError("all graphs must carry edge labels")
    pos_weight = (
        config.pos_weight
        if config.pos_weight is not None
        else derive_pos_weight(train_graphs)
    )
    loss_fn = BCEWithLogitsLoss(pos_weight=pos_weight)

    watchdog: Optional[StabilityWatchdog] = None
    if config.watchdog:
        watchdog = StabilityWatchdog(
            WatchdogConfig(
                window=config.watchdog_window,
                spike_factor=config.watchdog_spike_factor,
                max_rollbacks=config.watchdog_max_rollbacks,
                lr_backoff=config.watchdog_lr_backoff,
            )
        )

    regime = _train_full_graph if config.mode == "full" else _train_minibatch
    attempt = config
    while True:
        try:
            result = regime(
                train_graphs, val_graphs, attempt, loss_fn,
                fault_plan, retry_policy, watchdog,
            )
            break
        except (DivergenceError, FloatingPointError) as exc:
            if watchdog is None:
                raise
            rollback_target = attempt.checkpoint_path
            if (
                not watchdog.can_rollback()
                or rollback_target is None
                or not os.path.exists(rollback_target)
            ):
                raise TrainingUnstableError(
                    f"training diverged ({exc}) with no rollback available "
                    f"(rollbacks used: {watchdog.rollbacks}/"
                    f"{watchdog.config.max_rollbacks})",
                    rollbacks=watchdog.rollbacks,
                    last_error=exc,
                ) from exc
            factor = watchdog.register_rollback()
            new_lr = attempt.lr * factor
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.metrics.counter("guard.watchdog.rollbacks").add(1)
                telemetry.metrics.gauge("guard.watchdog.lr").set(new_lr)
            get_tracer().event(
                "guard.rollback",
                category="guard",
                reason=str(exc),
                lr=new_lr,
                rollback=watchdog.rollbacks,
            )
            attempt = attempt.replace(lr=new_lr, resume_from=rollback_target)

    if watchdog is not None:
        result.watchdog_rollbacks = watchdog.rollbacks
    result.quarantined_graphs = quarantined
    telemetry = get_telemetry()
    if telemetry is not None:
        # snapshot training + comm counters into the exported metrics
        telemetry.record_training(result)
    return result
