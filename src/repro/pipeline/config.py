"""Configuration dataclasses for the five-stage pipeline and GNN training."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["GNNTrainConfig", "PipelineConfig"]


@dataclass(frozen=True)
class GNNTrainConfig:
    """GNN-stage training recipe.

    Defaults follow Section IV-A: batch size 256, hidden 64, 8 GNN layers,
    30 epochs, ShaDow depth 3 / fanout 6.  The benchmark harness passes
    scaled-down values (documented in EXPERIMENTS.md) to fit the CPU
    budget; the semantics are unchanged.

    Parameters
    ----------
    mode:
        ``"full"`` — full-graph training with memory-based skipping (the
        original Exa.TrkX behaviour);
        ``"shadow"`` — minibatch + sequential ShaDow (the PyG baseline);
        ``"bulk"`` — minibatch + matrix-based bulk ShaDow (ours);
        ``"nodewise"`` — minibatch + bulk node-wise (GraphSAGE-family)
        sampling;
        ``"saint"`` — minibatch + GraphSAINT random-walk sampling.
        The last two exist for the sampler-family convergence ablation;
        the paper's comparison is full vs shadow vs bulk.
    bulk_k:
        Minibatches sampled per bulk step (``k`` in Figure 3); ignored for
        other modes.
    world_size:
        Simulated DDP rank count; local batch is ``batch_size / world_size``.
    allreduce:
        ``"coalesced"`` (Section III-D) or ``"per_parameter"``.
    backend:
        Communication backend: ``"sim"`` (default; in-process simulated
        ranks with α–β modeled time) or ``"proc"`` (one worker process
        per rank, real shared-memory ring all-reduce with crash-tolerant
        supervision — see docs/distributed.md).  Both are bit-exact on
        the same seeded run.
    capacity_bytes:
        Activation budget for the full-graph skip decision (``None`` =
        never skip).
    checkpoint_activations:
        Full-graph mode only: when a graph exceeds ``capacity_bytes``,
        retry with layer-boundary gradient checkpointing
        (:class:`repro.models.CheckpointedIGNN`) before skipping — the
        memory/compute trade the original pipeline leaves unused.
    checkpoint_every:
        Write a resumable trainer checkpoint every this many epochs
        (``None`` = never).  Requires ``checkpoint_path``.  Checkpoints
        capture *complete* trainer state (weights, Adam moments, RNG,
        history, early-stop bookkeeping) so a resumed run is bit-equal
        to an uninterrupted one; see :mod:`repro.pipeline.checkpoint`.
    checkpoint_path:
        Destination ``.npz`` for trainer checkpoints (written atomically,
        with an integrity checksum).
    resume_from:
        Path of a checkpoint written by a previous (interrupted) run of
        the *same configuration*; training continues from the epoch after
        the checkpoint instead of starting over.
    prefetch_workers:
        Background sampling threads for the minibatch regimes (see
        :mod:`repro.data`).  ``0`` (default) samples synchronously on
        the trainer thread; any value keeps batch contents bit-identical
        (the determinism contract of the prefetch pipeline), so it is a
        pure throughput knob and may differ between a checkpointing run
        and the run resuming it.
    prefetch_depth:
        Bound on in-flight prefetched bulk steps (double-buffer depth).
    checkpoint_every_steps:
        Additionally checkpoint every this many *bulk steps* within an
        epoch (minibatch regimes; ``None`` = epoch boundaries only).
        Requires ``checkpoint_path``.  Mid-epoch checkpoints record the
        loader cursor so a resumed run replays the identical epoch plan
        and continues bit-exactly from the next step.
    max_steps:
        Hard stop after this many optimisation steps, mid-epoch if
        necessary (``None`` = run the full epoch budget).  Useful for
        smoke runs and for exercising mid-epoch crash/resume.
    fused_kernels:
        Route the IGNN message path through the fused
        ``gather_concat_matmul`` / ``scatter_mlp_input`` kernels
        (default).  ``False`` restores the unfused gather → concat →
        matmul reference path; results agree to float tolerance (the
        convergence-parity suite pins this).
    precision:
        ``"float32"`` (default, as in the paper's training runs) or
        ``"float64"`` — an end-to-end high-precision reference mode:
        model weights, inputs, and every intermediate run in float64.
        Used by the convergence-parity gates that qualify the float32
        mode.
    """

    mode: str = "bulk"
    epochs: int = 30
    batch_size: int = 256
    hidden: int = 64
    num_layers: int = 8
    mlp_layers: int = 2
    lr: float = 1e-3
    depth: int = 3
    fanout: int = 6
    bulk_k: int = 4
    world_size: int = 1
    allreduce: str = "coalesced"
    backend: str = "sim"  # comm backend: "sim" (in-process) or "proc"
    capacity_bytes: Optional[int] = None
    checkpoint_activations: bool = False
    pos_weight: Optional[float] = None  # None = derive from label balance
    threshold: float = 0.5
    seed: int = 0
    eval_every: int = 1
    # Optional training conveniences (acorn trains with a scheduler and
    # keeps the best-validation checkpoint):
    scheduler: Optional[str] = None  # None | "cosine" | "step"
    early_stopping_patience: Optional[int] = None  # evals without F1 gain
    restore_best: bool = False  # reload the best-val-F1 weights at the end
    # Fault tolerance (see docs/fault_tolerance.md):
    checkpoint_every: Optional[int] = None  # epochs between checkpoints
    checkpoint_path: Optional[str] = None  # where checkpoints are written
    resume_from: Optional[str] = None  # checkpoint to continue from
    # Async data pipeline (see docs/data_pipeline.md):
    prefetch_workers: int = 0  # background sampling threads (0 = sync)
    prefetch_depth: int = 2  # in-flight prefetched bulk steps
    checkpoint_every_steps: Optional[int] = None  # mid-epoch checkpoint cadence
    max_steps: Optional[int] = None  # stop after N optimisation steps
    # Guardrails (see docs/resilience.md):
    validate_inputs: bool = False  # quarantine malformed graphs at ingestion
    keep_last: Optional[int] = None  # retained checkpoint history depth
    watchdog: bool = False  # loss/grad-norm divergence watchdog
    watchdog_window: int = 8  # rolling loss window for spike detection
    watchdog_spike_factor: float = 10.0  # spike = loss > factor * median
    watchdog_max_rollbacks: int = 2  # rollback budget before giving up
    watchdog_lr_backoff: float = 0.5  # lr multiplier applied per rollback
    # Kernel / precision knobs (see docs/kernels.md):
    fused_kernels: bool = True  # fused gather/scatter message path
    precision: str = "float32"  # "float32" (paper) | "float64" reference

    def __post_init__(self) -> None:
        if self.mode not in ("full", "shadow", "bulk", "nodewise", "saint"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.allreduce not in ("coalesced", "per_parameter"):
            raise ValueError(f"unknown allreduce {self.allreduce!r}")
        if self.backend not in ("sim", "proc"):
            raise ValueError(
                f"unknown comm backend {self.backend!r}; choose 'sim' or 'proc'"
            )
        if self.batch_size % self.world_size != 0:
            raise ValueError("batch_size must be divisible by world_size")
        if self.epochs < 1 or self.batch_size < 1 or self.world_size < 1:
            raise ValueError("epochs/batch_size/world_size must be positive")
        if self.bulk_k < 1:
            raise ValueError("bulk_k must be >= 1")
        if self.scheduler not in (None, "cosine", "step"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 1:
            raise ValueError("early_stopping_patience must be >= 1")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if self.checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        if self.prefetch_workers < 0:
            raise ValueError("prefetch_workers must be >= 0")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if self.checkpoint_every_steps is not None:
            if self.checkpoint_every_steps < 1:
                raise ValueError("checkpoint_every_steps must be >= 1")
            if self.checkpoint_path is None:
                raise ValueError("checkpoint_every_steps requires checkpoint_path")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                f"unknown precision {self.precision!r}; choose 'float32' or 'float64'"
            )
        if self.keep_last is not None and self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if self.keep_last is not None and self.checkpoint_path is None:
            raise ValueError("keep_last requires checkpoint_path")
        if self.watchdog:
            if self.watchdog_window < 1:
                raise ValueError("watchdog_window must be >= 1")
            if self.watchdog_spike_factor <= 1.0:
                raise ValueError("watchdog_spike_factor must be > 1")
            if self.watchdog_max_rollbacks < 0:
                raise ValueError("watchdog_max_rollbacks must be >= 0")
            if not 0.0 < self.watchdog_lr_backoff < 1.0:
                raise ValueError("watchdog_lr_backoff must be in (0, 1)")
            if self.watchdog_max_rollbacks > 0 and self.checkpoint_path is None:
                raise ValueError(
                    "watchdog rollback requires checkpoint_path (set "
                    "watchdog_max_rollbacks=0 for detect-only mode)"
                )

    def replace(self, **kwargs) -> "GNNTrainConfig":
        """Copy with overrides."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end pipeline recipe.

    Stage thresholds follow acorn's philosophy: the filter threshold is
    low (prune aggressively-false edges but keep recall near 1), the GNN
    threshold is the 0.5 classification point.
    """

    # Stage 1–2 strategy: "metric_learning" (embedding MLP + FRNN) or
    # "module_map" (data-driven detector-element connectivity).
    construction: str = "metric_learning"
    embedding_dim: int = 8
    embedding_hidden: int = 64
    embedding_epochs: int = 30
    embedding_lr: float = 1e-2
    embedding_margin: float = 1.0
    negatives_per_positive: int = 4
    # Hard-negative mining (acorn's HNM): after a warmup, negatives are
    # drawn from the false pairs the current embedding would wrongly
    # connect (FRNN neighbours of different particles) instead of random
    # pairs, sharpening the decision boundary where it matters.
    hard_negative_mining: bool = False
    hnm_warmup_epochs: int = 8
    frnn_radius: float = 0.25
    frnn_max_neighbors: Optional[int] = 40
    filter_hidden: int = 64
    filter_epochs: int = 30
    filter_lr: float = 1e-2
    filter_threshold: float = 0.1
    feature_scheme: str = "compact"
    mlp_layers: int = 2
    gnn: GNNTrainConfig = field(default_factory=GNNTrainConfig)
    min_track_hits: int = 3
    # Stage 5 builder: "cc" (the paper's connected components) or
    # "walkthrough" (score-ordered with degree constraints).
    track_builder: str = "cc"
    seed: int = 0
    # module-map strategy knobs (used when construction == "module_map")
    module_map_phi_sectors: int = 16
    module_map_z_sectors: int = 8
    # Guardrails: validate raw events at fit() ingestion, quarantining
    # malformed ones (see repro.guard.validation / docs/resilience.md).
    validate_inputs: bool = False
    quarantine_log: Optional[str] = None  # JSONL quarantine record path

    def __post_init__(self) -> None:
        if self.construction not in ("metric_learning", "module_map"):
            raise ValueError(f"unknown construction strategy {self.construction!r}")
        if self.track_builder not in ("cc", "walkthrough"):
            raise ValueError(f"unknown track builder {self.track_builder!r}")
