"""Multi-seed experiment running.

Convergence comparisons (Figure 4) are single runs in the paper; proper
claims need seed variance.  :func:`run_with_seeds` repeats a GNN-stage
training across seeds and aggregates the final metrics, so benches and
users can report mean ± std instead of a lucky draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..graph import EventGraph
from .config import GNNTrainConfig
from .trainers import GNNTrainResult, train_gnn

__all__ = ["SeedSweepResult", "run_with_seeds"]


@dataclass
class SeedSweepResult:
    """Aggregated outcome of a multi-seed training sweep."""

    seeds: List[int]
    results: List[GNNTrainResult]

    def _finals(self, metric: str) -> np.ndarray:
        return np.array([getattr(r.history.final, metric) for r in self.results])

    def mean(self, metric: str = "val_f1") -> float:
        """Mean of a final-epoch metric across seeds."""
        return float(self._finals(metric).mean())

    def std(self, metric: str = "val_f1") -> float:
        """Standard deviation of a final-epoch metric across seeds."""
        return float(self._finals(metric).std())

    def summary(self) -> Dict[str, str]:
        return {
            m: f"{self.mean(m):.3f} ± {self.std(m):.3f}"
            for m in ("val_precision", "val_recall", "val_f1")
        }

    def __len__(self) -> int:
        return len(self.results)


def run_with_seeds(
    train_graphs: Sequence[EventGraph],
    val_graphs: Sequence[EventGraph],
    config: GNNTrainConfig,
    seeds: Sequence[int],
) -> SeedSweepResult:
    """Train once per seed (model init + batch order both reseeded).

    Parameters
    ----------
    config:
        Template configuration; its ``seed`` field is replaced per run.
    seeds:
        Seeds to sweep (≥ 1).
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    results = [
        train_gnn(train_graphs, val_graphs, config.replace(seed=int(s)))
        for s in seeds
    ]
    return SeedSweepResult(seeds=seeds, results=results)
