"""End-to-end Exa.TrkX-style pipeline (Figure 1).

``fit`` trains the three learned stages in order — embedding, filter,
GNN — each consuming the previous stage's output on the training events;
``reconstruct`` runs all five stages on a new event and returns track
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..detector import Event
from ..detector.geometry import DetectorGeometry
from ..graph import EventGraph
from ..guard import EventValidator, Quarantine, QuarantineLog
from ..metrics import TrackingScore, match_tracks
from ..obs import get_tracer
from ..tensor import row_stable_matmul
from .config import PipelineConfig
from .embedding_stage import EmbeddingStage
from .filter_stage import FilterStage
from .gnn_stage import GNNStage
from .graph_construction import GraphConstructionStage
from .track_building import build_tracks

__all__ = ["PipelineReport", "ExaTrkXPipeline"]


class _ModuleMapConstruction:
    """Adapter giving :class:`repro.detector.ModuleMap` the construction-
    stage interface (``build`` / ``edge_efficiency``) the pipeline and the
    diagnostics expect."""

    def __init__(self, module_map) -> None:
        self.module_map = module_map

    def build(self, event: Event):
        return self.module_map.build(event)

    def edge_efficiency(self, event: Event, graph=None) -> float:
        return self.module_map.edge_efficiency(event)


@dataclass
class PipelineReport:
    """Diagnostics collected while fitting the pipeline."""

    graph_edge_efficiency: float = 0.0
    filter_segment_recall: float = 0.0
    filter_kept_fraction: float = 0.0
    gnn_final_precision: float = 0.0
    gnn_final_recall: float = 0.0
    quarantined_events: int = 0  # inputs dropped by validate_inputs
    extras: Dict[str, float] = field(default_factory=dict)


class ExaTrkXPipeline:
    """The five-stage tracking pipeline.

    Parameters
    ----------
    config:
        All stage hyper-parameters.
    geometry:
        Detector description used for feature extraction.
    """

    def __init__(self, config: PipelineConfig, geometry: DetectorGeometry) -> None:
        self.config = config
        self.geometry = geometry
        self.embedding = EmbeddingStage(config, geometry)
        self.construction: Optional[GraphConstructionStage] = None
        self.filter = FilterStage(config)
        self.gnn = GNNStage(config)
        self.report = PipelineReport()

    # ------------------------------------------------------------------
    def fit(
        self,
        train_events: Sequence[Event],
        val_events: Sequence[Event],
        rng: Optional[np.random.Generator] = None,
    ) -> PipelineReport:
        """Train every learned stage; returns fit diagnostics.

        With ``config.validate_inputs``, malformed events (NaN
        coordinates, duplicate hits, layer ids outside the geometry,
        inconsistent truth arrays, …) are quarantined at ingestion —
        dropped with a structured reason (``guard.quarantine.*``
        counters, optional JSONL log at ``config.quarantine_log``) —
        instead of crashing a stage mid-fit.  See ``docs/resilience.md``.
        """
        rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        tracer = get_tracer()

        if self.config.validate_inputs:
            quarantine = Quarantine(
                EventValidator.for_geometry(self.geometry),
                context="pipeline.fit",
                log=(
                    QuarantineLog(self.config.quarantine_log)
                    if self.config.quarantine_log
                    else None
                ),
                kind="event",
            )
            train_events = quarantine.filter(list(train_events))
            val_events = quarantine.filter(list(val_events))
            self.report.quarantined_events = quarantine.quarantined
            if not train_events:
                raise ValueError(
                    "every training event was quarantined "
                    f"({quarantine.quarantined} dropped); nothing to fit"
                )

        with tracer.span(
            "pipeline.fit", category="pipeline", events=len(train_events)
        ):
            # Stages 1–2: candidate-graph construction strategy
            with tracer.span(
                "pipeline.embedding", category="pipeline",
                strategy=self.config.construction,
            ):
                if self.config.construction == "module_map":
                    from ..detector import ModuleMap, ModuleMapConfig

                    mm = ModuleMap(
                        self.geometry,
                        ModuleMapConfig(
                            num_phi_sectors=self.config.module_map_phi_sectors,
                            num_z_sectors=self.config.module_map_z_sectors,
                            feature_scheme=self.config.feature_scheme,
                        ),
                    ).fit(train_events)
                    self.construction = _ModuleMapConstruction(mm)
                else:
                    self.embedding.fit(train_events, rng)
                    self.construction = GraphConstructionStage(
                        self.config, self.geometry, self.embedding
                    )

            with tracer.span("pipeline.graph_construction", category="pipeline"):
                train_graphs = [self.construction.build(e) for e in train_events]
                val_graphs = [self.construction.build(e) for e in val_events]
            effs = [
                self.construction.edge_efficiency(e, g)
                for e, g in zip(train_events, train_graphs)
            ]
            self.report.graph_edge_efficiency = float(np.mean(effs))

            # Stage 3: filter
            with tracer.span("pipeline.filter", category="pipeline"):
                self.filter.fit(train_graphs, rng)
                pruned_train, recalls, kept = [], [], []
                for g in train_graphs:
                    pg, keep = self.filter.prune(g)
                    pruned_train.append(pg)
                    recalls.append(self.filter.segment_recall(g, keep))
                    kept.append(keep.mean() if keep.size else 1.0)
                pruned_val = [self.filter.prune(g)[0] for g in val_graphs]
            self.report.filter_segment_recall = float(np.mean(recalls))
            self.report.filter_kept_fraction = float(np.mean(kept))

            # Stage 4: GNN
            with tracer.span("pipeline.gnn", category="pipeline"):
                self.gnn.fit(pruned_train, pruned_val)
            final = self.gnn.result.history.final
            self.report.gnn_final_precision = final.val_precision
            self.report.gnn_final_recall = final.val_recall
        return self.report

    # ------------------------------------------------------------------
    def astype(self, dtype) -> "ExaTrkXPipeline":
        """Cast every fitted stage network to ``dtype`` in place.

        The serving engine's ``precision`` knob uses this to run a
        fitted pipeline in the float64 reference mode (or back to the
        float32 deployment mode).  Unfitted stages are skipped.
        """
        for net in (
            self.embedding.net,
            self.filter.net,
            self.gnn.result.model if self.gnn.result is not None else None,
        ):
            if net is not None:
                net.astype(dtype)
        return self

    def reconstruct(self, event: Event) -> List[np.ndarray]:
        """Run inference: hits → track candidates (hit-index arrays).

        Inference runs under :func:`repro.tensor.row_stable_matmul`, so
        an event's result is bit-identical whether it is reconstructed
        alone or inside a serving micro-batch (:mod:`repro.serve`).
        """
        if self.construction is None:
            raise RuntimeError("pipeline not fitted")
        tracer = get_tracer()
        with tracer.span(
            "pipeline.reconstruct", category="pipeline", event=event.event_id
        ), row_stable_matmul():
            with tracer.span("pipeline.graph_construction", category="pipeline"):
                graph = self.construction.build(event)
            with tracer.span("pipeline.filter", category="pipeline"):
                graph, _ = self.filter.prune(graph)
            return self.finish_from_filtered(graph)

    def finish_from_filtered(self, graph: EventGraph) -> List[np.ndarray]:
        """Stages 4–5 on a filter-pruned graph: GNN scoring + building.

        The tail of :meth:`reconstruct`, exposed separately so the
        serving engine (:mod:`repro.serve`) runs the exact same code on
        graphs it obtained from its batched/cached upstream stages.
        """
        tracer = get_tracer()
        if self.config.track_builder == "walkthrough":
            from .track_building import build_tracks_walkthrough

            with tracer.span("pipeline.gnn", category="pipeline"):
                scores = self.gnn.model.predict_proba(graph)
            with tracer.span("pipeline.track_building", category="pipeline"):
                return build_tracks_walkthrough(
                    graph,
                    scores,
                    min_hits=self.config.min_track_hits,
                    min_score=self.config.gnn.threshold,
                )
        with tracer.span("pipeline.gnn", category="pipeline"):
            graph, _ = self.gnn.prune(graph)
        with tracer.span("pipeline.track_building", category="pipeline"):
            return build_tracks(graph, min_hits=self.config.min_track_hits)

    def score_event(self, event: Event) -> TrackingScore:
        """Reconstruct and score one event against its truth."""
        with get_tracer().span(
            "pipeline.score", category="pipeline", event=event.event_id
        ):
            candidates = self.reconstruct(event)
            return match_tracks(
                candidates, event.particle_ids, min_hits=self.config.min_track_hits
            )
