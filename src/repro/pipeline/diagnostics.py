"""Per-stage pipeline diagnostics.

Tracking pipelines are tuned stage by stage: graph construction is pushed
toward recall (a truth segment missing from the candidate graph can never
be recovered), the filter toward high-recall pruning, the GNN toward
purity.  This module measures each stage's contribution on one event so
regressions can be localised — the numbers behind acorn's per-stage
validation plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..detector import Event
from ..graph import EventGraph
from ..metrics import TrackingScore, match_tracks, roc_auc
from ..obs import get_tracer
from .pipeline import ExaTrkXPipeline
from .track_building import build_tracks

__all__ = ["StageReport", "EventDiagnostics", "diagnose_event"]


@dataclass(frozen=True)
class StageReport:
    """One stage's edge accounting.

    Attributes
    ----------
    name:
        Stage label.
    num_edges:
        Edges surviving after the stage.
    segment_recall:
        Fraction of the event's truth segments still present.
    purity:
        Fraction of surviving edges that are true segments.
    """

    name: str
    num_edges: int
    segment_recall: float
    purity: float


@dataclass
class EventDiagnostics:
    """Full per-stage trace of one event through the pipeline."""

    stages: List[StageReport]
    gnn_auc: Optional[float]
    tracking: TrackingScore

    def render(self) -> List[str]:
        lines = [f"{'stage':<22} | {'edges':>7} | {'seg recall':>10} | {'purity':>7}"]
        for s in self.stages:
            lines.append(
                f"{s.name:<22} | {s.num_edges:>7} | {s.segment_recall:>10.3f} | {s.purity:>7.3f}"
            )
        if self.gnn_auc is not None:
            lines.append(f"GNN edge-classifier ROC AUC: {self.gnn_auc:.3f}")
        t = self.tracking
        lines.append(
            f"tracking: efficiency={t.efficiency:.3f} fake rate={t.fake_rate:.3f} "
            f"duplicates={t.duplicate_rate:.3f} "
            f"({t.num_matched}/{t.num_reconstructable} matched)"
        )
        return lines


def _stage_report(name: str, event: Event, graph: EventGraph) -> StageReport:
    segments = event.true_segments()
    total_segments = segments.shape[1]
    n = event.num_hits
    present = 0
    if total_segments and graph.num_edges:
        built = set((graph.rows * n + graph.cols).tolist())
        built |= set((graph.cols * n + graph.rows).tolist())
        present = sum(1 for a, b in segments.T if int(a) * n + int(b) in built)
    recall = present / total_segments if total_segments else 1.0
    purity = (
        float(graph.edge_labels.mean()) if graph.num_edges and graph.edge_labels is not None else 0.0
    )
    return StageReport(
        name=name, num_edges=graph.num_edges, segment_recall=recall, purity=purity
    )


def diagnose_event(pipeline: ExaTrkXPipeline, event: Event) -> EventDiagnostics:
    """Trace one event through a fitted pipeline, measuring every stage.

    Raises
    ------
    RuntimeError
        If the pipeline has not been fitted.
    """
    if pipeline.construction is None:
        raise RuntimeError("pipeline not fitted")
    tracer = get_tracer()
    stages: List[StageReport] = []

    with tracer.span(
        "pipeline.diagnose_event", category="pipeline", event=event.event_id
    ):
        with tracer.span("pipeline.graph_construction", category="pipeline"):
            constructed = pipeline.construction.build(event)
        stages.append(_stage_report("graph construction", event, constructed))

        with tracer.span("pipeline.filter", category="pipeline"):
            filtered, _ = pipeline.filter.prune(constructed)
        stages.append(_stage_report("filter MLP", event, filtered))

        auc: Optional[float] = None
        if filtered.num_edges and filtered.edge_labels is not None:
            scores = pipeline.gnn.model.predict_proba(filtered)
            labels = filtered.edge_labels
            if 0 < labels.sum() < labels.size:
                auc = roc_auc(scores, labels)

        with tracer.span("pipeline.gnn", category="pipeline"):
            pruned, _ = pipeline.gnn.prune(filtered)
        stages.append(_stage_report("interaction GNN", event, pruned))

        with tracer.span("pipeline.track_building", category="pipeline"):
            candidates = build_tracks(pruned, min_hits=pipeline.config.min_track_hits)
        tracking = match_tracks(
            candidates, event.particle_ids, min_hits=pipeline.config.min_track_hits
        )
    return EventDiagnostics(stages=stages, gnn_auc=auc, tracking=tracking)
