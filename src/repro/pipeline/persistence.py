"""Pipeline checkpointing: save/load a fitted pipeline to one ``.npz``.

A fitted :class:`repro.pipeline.ExaTrkXPipeline` holds three trained
networks (embedding, filter, GNN) plus its configuration.  This module
serialises all of it into a single compressed archive so inference can
run in a fresh process without retraining — the deployment path of the
production pipeline.

Configs are stored as JSON (dataclasses → dict); parameter arrays are
stored under namespaced keys (``embedding/…``, ``filter/…``, ``gnn/…``).

Durability: archives are written atomically (temp file + ``os.replace``)
with an embedded SHA-256 content checksum, and loading translates every
low-level corruption symptom (truncated zip, bit-flipped member, missing
entry) into a :class:`repro.io.CheckpointError` that names the file.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

import numpy as np

from ..detector.geometry import DetectorGeometry
from ..io.serialization import CheckpointError, atomic_savez, open_archive
from ..models import (
    EmbeddingConfig,
    EmbeddingNet,
    FilterConfig,
    FilterNet,
    IGNNConfig,
    InteractionGNN,
)
from .config import GNNTrainConfig, PipelineConfig
from .embedding_stage import EmbeddingStage
from .filter_stage import FilterStage
from .gnn_stage import GNNStage
from .graph_construction import GraphConstructionStage
from .pipeline import ExaTrkXPipeline
from .trainers import GNNTrainResult

__all__ = ["save_pipeline", "load_pipeline", "CheckpointError"]

_META_FIELDS = 5  # network widths stored in the "meta" entry


def _config_to_json(config: PipelineConfig) -> str:
    payload = dataclasses.asdict(config)
    return json.dumps(payload)


def _config_from_json(text: str) -> PipelineConfig:
    payload = json.loads(text)
    gnn = GNNTrainConfig(**payload.pop("gnn"))
    return PipelineConfig(gnn=gnn, **payload)


def _pack(prefix: str, state: Dict[str, np.ndarray], out: Dict[str, np.ndarray]) -> None:
    for name, arr in state.items():
        out[f"{prefix}/{name}"] = arr


def _unpack(prefix: str, archive) -> Dict[str, np.ndarray]:
    plen = len(prefix) + 1
    return {
        key[plen:]: archive[key]
        for key in archive.files
        if key.startswith(prefix + "/")
    }


def _load_stage_state(net, prefix: str, archive, path: str) -> None:
    """Load one stage's weights, naming the archive on any mismatch."""
    try:
        net.load_state_dict(_unpack(prefix, archive))
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"pipeline archive {path!r} has incomplete or mismatched "
            f"{prefix!r} stage weights: {exc}"
        ) from exc


def save_pipeline(pipeline: ExaTrkXPipeline, path: str) -> None:
    """Serialise a fitted pipeline to ``path`` (.npz).

    Raises
    ------
    RuntimeError
        If any stage has not been fitted.
    """
    if pipeline.config.construction != "metric_learning":
        raise NotImplementedError(
            "persistence currently supports the metric_learning construction "
            "strategy (the module map holds set-valued state, not tensors)"
        )
    if (
        pipeline.embedding.net is None
        or pipeline.filter.net is None
        or pipeline.gnn.result is None
    ):
        raise RuntimeError("cannot save an unfitted pipeline")
    payload: Dict[str, np.ndarray] = {
        "config_json": np.frombuffer(
            _config_to_json(pipeline.config).encode("utf-8"), dtype=np.uint8
        )
    }
    _pack("embedding", pipeline.embedding.net.state_dict(), payload)
    _pack("filter", pipeline.filter.net.state_dict(), payload)
    _pack("gnn", pipeline.gnn.model.state_dict(), payload)
    # widths needed to rebuild the networks
    payload["meta"] = np.array(
        [
            pipeline.embedding.net.config.node_features,
            pipeline.filter.net.config.node_features,
            pipeline.filter.net.config.edge_features,
            pipeline.gnn.model.config.node_features,
            pipeline.gnn.model.config.edge_features,
        ],
        dtype=np.int64,
    )
    # atomic write + checksum: a crash mid-save can never leave a
    # truncated archive under the target name
    atomic_savez(path, payload)


def load_pipeline(path: str, geometry: DetectorGeometry) -> ExaTrkXPipeline:
    """Rebuild a fitted pipeline from :func:`save_pipeline` output.

    The returned pipeline supports ``reconstruct`` / ``score_event`` /
    ``diagnose_event`` immediately; ``fit`` would retrain from scratch.

    Raises
    ------
    CheckpointError
        If the archive is missing, truncated, bit-flipped (checksum
        mismatch), or structurally incomplete — never a raw
        ``zipfile.BadZipFile`` / ``KeyError``.
    """
    with open_archive(path) as archive:
        try:
            config = _config_from_json(bytes(archive["config_json"]).decode("utf-8"))
            meta = archive["meta"]
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"pipeline archive {path!r} is missing or has a malformed "
                f"config/meta entry: {exc}"
            ) from exc
        if meta.ndim != 1 or meta.size != _META_FIELDS:
            raise CheckpointError(
                f"pipeline archive {path!r} has a malformed 'meta' entry: "
                f"expected {_META_FIELDS} network widths, found shape {meta.shape}"
            )
        emb_nf, fil_nf, fil_ef, gnn_nf, gnn_ef = (int(v) for v in meta)

        pipeline = ExaTrkXPipeline(config, geometry)

        emb_net = EmbeddingNet(
            EmbeddingConfig(
                node_features=emb_nf,
                embedding_dim=config.embedding_dim,
                hidden=config.embedding_hidden,
                mlp_layers=config.mlp_layers,
                margin=config.embedding_margin,
                seed=config.seed,
            )
        )
        _load_stage_state(emb_net, "embedding", archive, path)
        pipeline.embedding.net = emb_net
        pipeline.construction = GraphConstructionStage(
            config, geometry, pipeline.embedding
        )

        fil_net = FilterNet(
            FilterConfig(
                node_features=fil_nf,
                edge_features=fil_ef,
                hidden=config.filter_hidden,
                mlp_layers=config.mlp_layers,
                seed=config.seed,
            )
        )
        _load_stage_state(fil_net, "filter", archive, path)
        pipeline.filter.net = fil_net

        gnn_model = InteractionGNN(
            IGNNConfig(
                node_features=gnn_nf,
                edge_features=gnn_ef,
                hidden=config.gnn.hidden,
                num_layers=config.gnn.num_layers,
                mlp_layers=config.gnn.mlp_layers,
                seed=config.gnn.seed,
            )
        )
        _load_stage_state(gnn_model, "gnn", archive, path)
        from ..metrics import TrainingHistory
        from ..perf import StageTimer

        pipeline.gnn.result = GNNTrainResult(
            model=gnn_model,
            history=TrainingHistory(label="loaded"),
            timers=StageTimer(),
            config=config.gnn,
        )
    return pipeline
