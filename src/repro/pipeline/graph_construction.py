"""Pipeline Stage 2: fixed-radius graph construction in the embedding space.

Connects every pair of hits whose embeddings lie within the configured
radius, attaches the feature scheme's vertex/edge features, and labels
edges against the event truth.  Edges are oriented from the lower- to the
higher-radius hit (tracks propagate outward).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..detector import Event, edge_features, label_edges, vertex_features
from ..detector.geometry import DetectorGeometry
from ..graph import EventGraph, fixed_radius_graph
from .config import PipelineConfig
from .embedding_stage import EmbeddingStage

__all__ = ["GraphConstructionStage"]


class GraphConstructionStage:
    """FRNN candidate-graph builder on top of a fitted embedding stage."""

    def __init__(
        self,
        config: PipelineConfig,
        geometry: DetectorGeometry,
        embedding: EmbeddingStage,
    ) -> None:
        self.config = config
        self.geometry = geometry
        self.embedding = embedding

    def build(self, event: Event, z: Optional[np.ndarray] = None) -> EventGraph:
        """Construct the labelled candidate graph of one event.

        ``z`` lets a caller supply precomputed embeddings (the batched
        serving path embeds a whole micro-batch in one forward pass);
        everything downstream of the embedding is per-event regardless.
        """
        if z is None:
            z = self.embedding.embed(event)
        edge_index = fixed_radius_graph(
            z,
            radius=self.config.frnn_radius,
            max_neighbors=self.config.frnn_max_neighbors,
        )
        # orient outward: src = inner hit
        r = np.hypot(event.positions[:, 0], event.positions[:, 1])
        src, dst = edge_index
        swap = r[src] > r[dst]
        src2 = np.where(swap, dst, src)
        dst2 = np.where(swap, src, dst)
        edge_index = np.stack([src2, dst2])

        labels = label_edges(event, edge_index)
        return EventGraph(
            edge_index=edge_index,
            x=vertex_features(event, self.geometry, self.config.feature_scheme),
            y=edge_features(event, self.geometry, edge_index, self.config.feature_scheme),
            edge_labels=labels,
            particle_ids=event.particle_ids,
            event_id=event.event_id,
        )

    def build_many(self, events: Sequence[Event]) -> List[EventGraph]:
        """Construct several events' graphs with ONE fused embedding pass.

        The embedding forward runs once over the concatenated hit arrays
        (:meth:`EmbeddingStage.embed_many`); the FRNN search, edge
        orientation, feature attachment, and truth labelling stay
        strictly per-event, so no cross-event edges can ever appear.
        """
        zs = self.embedding.embed_many(events)
        return [self.build(event, z=z) for event, z in zip(events, zs)]

    def edge_efficiency(self, event: Event, graph: Optional[EventGraph] = None) -> float:
        """Fraction of truth segments present in the constructed graph —
        the graph-construction recall the embedding stage is tuned for."""
        graph = graph if graph is not None else self.build(event)
        segments = event.true_segments()
        if segments.shape[1] == 0:
            return 1.0
        n = event.num_hits
        built = set(
            (graph.edge_index[0] * n + graph.edge_index[1]).tolist()
        ) | set((graph.edge_index[1] * n + graph.edge_index[0]).tolist())
        present = sum(
            1 for a, b in segments.T if int(a) * n + int(b) in built
        )
        return present / segments.shape[1]
