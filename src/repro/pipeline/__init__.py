"""The five-stage Exa.TrkX-style tracking pipeline and its GNN trainers."""

from .config import GNNTrainConfig, PipelineConfig
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    TrainerState,
    checkpoint_history_paths,
    describe_checkpoint,
    load_trainer_checkpoint,
    load_with_fallback,
    save_trainer_checkpoint,
)
from .trainers import (
    GNNTrainResult,
    derive_pos_weight,
    evaluate_edge_classifier,
    train_gnn,
)
from .embedding_stage import EmbeddingStage
from .graph_construction import GraphConstructionStage
from .filter_stage import FilterStage
from .gnn_stage import GNNStage
from .track_building import build_tracks, build_tracks_walkthrough
from .pipeline import ExaTrkXPipeline, PipelineReport
from .diagnostics import EventDiagnostics, StageReport, diagnose_event
from .persistence import load_pipeline, save_pipeline
from .experiments import SeedSweepResult, run_with_seeds

__all__ = [
    "PipelineConfig",
    "GNNTrainConfig",
    "GNNTrainResult",
    "train_gnn",
    "evaluate_edge_classifier",
    "derive_pos_weight",
    "EmbeddingStage",
    "GraphConstructionStage",
    "FilterStage",
    "GNNStage",
    "build_tracks",
    "build_tracks_walkthrough",
    "ExaTrkXPipeline",
    "PipelineReport",
    "EventDiagnostics",
    "StageReport",
    "diagnose_event",
    "save_pipeline",
    "load_pipeline",
    "CheckpointError",
    "CheckpointCorruptError",
    "TrainerState",
    "save_trainer_checkpoint",
    "load_trainer_checkpoint",
    "load_with_fallback",
    "checkpoint_history_paths",
    "describe_checkpoint",
    "SeedSweepResult",
    "run_with_seeds",
]
