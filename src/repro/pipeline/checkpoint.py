"""Resumable-trainer checkpoints: complete state, atomic, verifiable.

A 30-epoch multi-rank GNN training run must survive a crash without
losing everything — the fault-tolerance premise of a production
pipeline.  This module serialises the *complete* trainer state to one
versioned, checksummed ``.npz`` archive (written atomically through
:func:`repro.io.serialization.atomic_savez`):

* model parameters (rank 0 — replicas are bit-identical at epoch
  boundaries after DDP synchronisation);
* Adam moments and step count (:meth:`repro.nn.Adam.state_dict`);
* the ``np.random.Generator`` bit-generator state, so the resumed epoch
  draws exactly the permutations / ShaDow fanouts the uninterrupted run
  would have drawn;
* the :class:`~repro.metrics.TrainingHistory` recorded so far;
* early-stop / best-checkpoint governor state (best F1, evals since
  best, scheduler epoch, and the best-model weights when
  ``restore_best`` is on);
* step / skip counters.

The guarantee (verified by the resume-equivalence tests): *train 2N
epochs* is bit-identical to *train N epochs, crash, resume, train N
more* — same final ``state_dict()``, same history — in every training
mode.

Checkpoints refuse to resume under a different training configuration:
every :class:`~repro.pipeline.config.GNNTrainConfig` field except the
checkpoint plumbing itself (``checkpoint_every`` / ``checkpoint_path`` /
``resume_from``) and the epoch budget (``epochs``, which legitimately
grows when extending a finished run) must match.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..io.serialization import CheckpointError, atomic_savez, open_archive
from ..metrics import EpochRecord, TrainingHistory
from .config import GNNTrainConfig

__all__ = [
    "CheckpointError",
    "TrainerState",
    "save_trainer_checkpoint",
    "load_trainer_checkpoint",
    "describe_checkpoint",
]

FORMAT_VERSION = 1
_KIND = "repro.gnn-trainer"
# Fields allowed to differ between the checkpointing run and the
# resuming run; everything else participates in training math and must
# match exactly for the deterministic-resume guarantee to hold.  The
# prefetch knobs are exempt by the data-pipeline determinism contract:
# batch contents are bit-identical at any worker count / queue depth.
_RESUME_EXEMPT_FIELDS = (
    "checkpoint_every",
    "checkpoint_path",
    "resume_from",
    "epochs",
    "checkpoint_every_steps",
    "max_steps",
    "prefetch_workers",
    "prefetch_depth",
)


@dataclass
class TrainerState:
    """Everything the epoch loop needs to continue where it stopped."""

    epochs_done: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    rng_state: Dict[str, Any]
    history: TrainingHistory
    governor_state: Dict[str, Any]
    best_state: Optional[Dict[str, np.ndarray]] = None
    trained_steps: int = 0
    skipped_graphs: int = 0
    checkpointed_steps: int = 0
    # Mid-epoch cursor (minibatch regimes): how many bulk steps of the
    # current epoch were already consumed, and the losses they produced.
    # ``rng_state`` is then the *epoch-start* state, from which the
    # resuming run rebuilds the identical EpochPlan and skips ahead.
    step_in_epoch: int = 0
    epoch_losses: List[float] = field(default_factory=list)


def _text_entry(text: str) -> np.ndarray:
    return np.frombuffer(text.encode("utf-8"), dtype=np.uint8)


def _entry_text(arr: np.ndarray) -> str:
    return bytes(np.asarray(arr, dtype=np.uint8)).decode("utf-8")


def _history_to_jsonable(history: TrainingHistory) -> Dict[str, Any]:
    return {
        "label": history.label,
        "records": [dataclasses.asdict(r) for r in history.records],
    }


def _history_from_jsonable(payload: Dict[str, Any]) -> TrainingHistory:
    history = TrainingHistory(label=payload["label"])
    for rec in payload["records"]:
        history.append(EpochRecord(**rec))
    return history


def save_trainer_checkpoint(
    path: str,
    config: GNNTrainConfig,
    state: TrainerState,
    fault_plan=None,
) -> None:
    """Atomically write a trainer checkpoint to ``path``.

    The archive carries a format version, the full training config (for
    resume validation), a JSON meta block (counters, RNG state, history,
    governor bookkeeping), and the parameter / optimiser arrays — all
    covered by a SHA-256 content checksum.

    Parameters
    ----------
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; its scheduled I/O
        faults fire *before* anything is written, modelling a transient
        storage failure.  Because the write is atomic, a failed attempt
        never damages an existing checkpoint at ``path``.
    """
    if fault_plan is not None:
        fault_plan.before_checkpoint_write(path)
    meta = {
        "kind": _KIND,
        "format_version": FORMAT_VERSION,
        "epochs_done": state.epochs_done,
        "trained_steps": state.trained_steps,
        "skipped_graphs": state.skipped_graphs,
        "checkpointed_steps": state.checkpointed_steps,
        "rng_state": state.rng_state,
        "step_in_epoch": state.step_in_epoch,
        "epoch_losses": list(state.epoch_losses),
        "governor": state.governor_state,
        "history": _history_to_jsonable(state.history),
        "has_best_state": state.best_state is not None,
    }
    payload: Dict[str, np.ndarray] = {
        "meta_json": _text_entry(json.dumps(meta)),
        "config_json": _text_entry(json.dumps(dataclasses.asdict(config))),
    }
    for name, arr in state.model_state.items():
        payload[f"model/{name}"] = arr
    for name, arr in state.optimizer_state.items():
        payload[f"optim/{name}"] = arr
    if state.best_state is not None:
        for name, arr in state.best_state.items():
            payload[f"best/{name}"] = arr
    atomic_savez(path, payload)


def _unpack_prefix(archive, prefix: str) -> Dict[str, np.ndarray]:
    plen = len(prefix) + 1
    return {
        key[plen:]: archive[key]
        for key in archive.files
        if key.startswith(prefix + "/")
    }


def _check_config(path: str, saved: Dict[str, Any], config: GNNTrainConfig) -> None:
    current = dataclasses.asdict(config)
    mismatched: List[str] = []
    for key, value in saved.items():
        if key in _RESUME_EXEMPT_FIELDS:
            continue
        if key in current and current[key] != value:
            mismatched.append(f"{key}: checkpoint={value!r} vs run={current[key]!r}")
    if mismatched:
        raise CheckpointError(
            f"checkpoint {path!r} was written under a different training "
            "configuration; refusing to resume (" + "; ".join(mismatched) + ")"
        )


def load_trainer_checkpoint(path: str, config: GNNTrainConfig) -> TrainerState:
    """Load and validate a checkpoint for resuming under ``config``.

    Raises
    ------
    CheckpointError
        If the file is missing, corrupt (bad checksum / truncated), of an
        unknown format version, or written under an incompatible
        configuration.
    """
    with open_archive(path) as archive:
        try:
            meta = json.loads(_entry_text(archive["meta_json"]))
            saved_config = json.loads(_entry_text(archive["config_json"]))
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is missing or has a malformed meta block: {exc}"
            ) from exc
        if meta.get("kind") != _KIND:
            raise CheckpointError(
                f"{path!r} is not a trainer checkpoint (kind={meta.get('kind')!r})"
            )
        if meta.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has format version "
                f"{meta.get('format_version')!r}; this build reads version "
                f"{FORMAT_VERSION}"
            )
        _check_config(path, saved_config, config)
        if meta["epochs_done"] >= config.epochs and not meta.get("step_in_epoch"):
            raise CheckpointError(
                f"checkpoint {path!r} already covers {meta['epochs_done']} "
                f"epochs; nothing to resume for an epoch budget of "
                f"{config.epochs}"
            )
        model_state = _unpack_prefix(archive, "model")
        if not model_state:
            raise CheckpointError(f"checkpoint {path!r} contains no model parameters")
        best_state = _unpack_prefix(archive, "best") if meta.get("has_best_state") else None
        return TrainerState(
            epochs_done=int(meta["epochs_done"]),
            model_state=model_state,
            optimizer_state=_unpack_prefix(archive, "optim"),
            rng_state=meta["rng_state"],
            history=_history_from_jsonable(meta["history"]),
            governor_state=meta["governor"],
            best_state=best_state,
            trained_steps=int(meta["trained_steps"]),
            skipped_graphs=int(meta["skipped_graphs"]),
            checkpointed_steps=int(meta["checkpointed_steps"]),
            # absent in pre-mid-epoch-checkpoint archives (same format
            # version; the keys default to "epoch boundary")
            step_in_epoch=int(meta.get("step_in_epoch", 0)),
            epoch_losses=[float(x) for x in meta.get("epoch_losses", [])],
        )


def describe_checkpoint(path: str) -> Dict[str, Any]:
    """Human-oriented summary of a checkpoint (CLI / debugging helper)."""
    with open_archive(path) as archive:
        meta = json.loads(_entry_text(archive["meta_json"]))
        config = json.loads(_entry_text(archive["config_json"]))
    return {
        "kind": meta.get("kind"),
        "format_version": meta.get("format_version"),
        "epochs_done": meta.get("epochs_done"),
        "trained_steps": meta.get("trained_steps"),
        "step_in_epoch": meta.get("step_in_epoch", 0),
        "mode": config.get("mode"),
        "world_size": config.get("world_size"),
        "seed": config.get("seed"),
    }
