"""Resumable-trainer checkpoints: complete state, atomic, verifiable.

A 30-epoch multi-rank GNN training run must survive a crash without
losing everything — the fault-tolerance premise of a production
pipeline.  This module serialises the *complete* trainer state to one
versioned, checksummed ``.npz`` archive (written atomically through
:func:`repro.io.serialization.atomic_savez`):

* model parameters (rank 0 — replicas are bit-identical at epoch
  boundaries after DDP synchronisation);
* Adam moments and step count (:meth:`repro.nn.Adam.state_dict`);
* the ``np.random.Generator`` bit-generator state, so the resumed epoch
  draws exactly the permutations / ShaDow fanouts the uninterrupted run
  would have drawn;
* the :class:`~repro.metrics.TrainingHistory` recorded so far;
* early-stop / best-checkpoint governor state (best F1, evals since
  best, scheduler epoch, and the best-model weights when
  ``restore_best`` is on);
* step / skip counters.

The guarantee (verified by the resume-equivalence tests): *train 2N
epochs* is bit-identical to *train N epochs, crash, resume, train N
more* — same final ``state_dict()``, same history — in every training
mode.

Checkpoints refuse to resume under a different training configuration:
every :class:`~repro.pipeline.config.GNNTrainConfig` field except the
checkpoint plumbing itself (``checkpoint_every`` / ``checkpoint_path`` /
``resume_from``) and the epoch budget (``epochs``, which legitimately
grows when extending a finished run) must match.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..io.serialization import (
    CheckpointCorruptError,
    CheckpointError,
    atomic_savez,
    open_archive,
)
from ..metrics import EpochRecord, TrainingHistory
from .config import GNNTrainConfig

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "TrainerState",
    "save_trainer_checkpoint",
    "load_trainer_checkpoint",
    "checkpoint_history_paths",
    "load_with_fallback",
    "describe_checkpoint",
]

FORMAT_VERSION = 1
_KIND = "repro.gnn-trainer"
# Fields allowed to differ between the checkpointing run and the
# resuming run; everything else participates in training math and must
# match exactly for the deterministic-resume guarantee to hold.  The
# prefetch knobs are exempt by the data-pipeline determinism contract:
# batch contents are bit-identical at any worker count / queue depth.
_RESUME_EXEMPT_FIELDS = (
    "checkpoint_every",
    "checkpoint_path",
    "resume_from",
    "epochs",
    "checkpoint_every_steps",
    "max_steps",
    "prefetch_workers",
    "prefetch_depth",
    # Guardrail knobs are exempt: the watchdog only intervenes on
    # divergence (which a healthy resume does not hit), retention is
    # pure I/O, and the validator admits healthy datasets unchanged —
    # none perturb the math of a run that needed no intervention.
    "validate_inputs",
    "keep_last",
    "watchdog",
    "watchdog_window",
    "watchdog_spike_factor",
    "watchdog_max_rollbacks",
    "watchdog_lr_backoff",
)


@dataclass
class TrainerState:
    """Everything the epoch loop needs to continue where it stopped."""

    epochs_done: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    rng_state: Dict[str, Any]
    history: TrainingHistory
    governor_state: Dict[str, Any]
    best_state: Optional[Dict[str, np.ndarray]] = None
    trained_steps: int = 0
    skipped_graphs: int = 0
    checkpointed_steps: int = 0
    # Mid-epoch cursor (minibatch regimes): how many bulk steps of the
    # current epoch were already consumed, and the losses they produced.
    # ``rng_state`` is then the *epoch-start* state, from which the
    # resuming run rebuilds the identical EpochPlan and skips ahead.
    step_in_epoch: int = 0
    epoch_losses: List[float] = field(default_factory=list)


def _text_entry(text: str) -> np.ndarray:
    return np.frombuffer(text.encode("utf-8"), dtype=np.uint8)


def _entry_text(arr: np.ndarray) -> str:
    return bytes(np.asarray(arr, dtype=np.uint8)).decode("utf-8")


def _history_to_jsonable(history: TrainingHistory) -> Dict[str, Any]:
    return {
        "label": history.label,
        "records": [dataclasses.asdict(r) for r in history.records],
    }


def _history_from_jsonable(payload: Dict[str, Any]) -> TrainingHistory:
    history = TrainingHistory(label=payload["label"])
    for rec in payload["records"]:
        history.append(EpochRecord(**rec))
    return history


def _split_checkpoint_path(path: str) -> Tuple[str, str]:
    stem, ext = os.path.splitext(path)
    if not ext:
        ext = ".npz"
    return stem, ext


def _history_name(path: str, state: TrainerState) -> str:
    stem, ext = _split_checkpoint_path(path)
    return f"{stem}.e{state.epochs_done:04d}s{state.step_in_epoch:06d}{ext}"


_HISTORY_RE = re.compile(r"\.e(\d{4,})s(\d{6,})$")


def checkpoint_history_paths(path: str) -> List[str]:
    """Retained sibling checkpoints of ``path``, newest first.

    Retention (``keep_last``) writes every checkpoint both to ``path``
    (the latest) and to ``{stem}.e<EPOCHS>s<STEP>{ext}`` history names;
    this returns the surviving history files ordered by their
    ``(epochs_done, step_in_epoch)`` cursor, newest first.
    """
    stem, ext = _split_checkpoint_path(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    prefix = os.path.basename(stem)
    found: List[Tuple[Tuple[int, int], str]] = []
    if not os.path.isdir(directory):
        return []
    for name in os.listdir(directory):
        if not (name.startswith(prefix + ".") and name.endswith(ext)):
            continue
        core = name[: -len(ext)][len(prefix):]
        match = _HISTORY_RE.fullmatch(core)
        if match is None:
            continue
        key = (int(match.group(1)), int(match.group(2)))
        found.append((key, os.path.join(directory, name)))
    found.sort(reverse=True)
    return [p for _, p in found]


def _retain_and_prune(path: str, state: TrainerState, keep_last: int) -> None:
    """Copy the fresh checkpoint at ``path`` into history; prune old ones."""
    history = _history_name(path, state)
    tmp = history + ".tmp.npz"  # swept by clean_stale_tmp if interrupted
    shutil.copyfile(path, tmp)
    os.replace(tmp, history)
    for stale in checkpoint_history_paths(path)[keep_last:]:
        try:
            os.unlink(stale)
        except OSError:
            pass  # already gone / unremovable: retention is best-effort


def save_trainer_checkpoint(
    path: str,
    config: GNNTrainConfig,
    state: TrainerState,
    fault_plan=None,
    keep_last: Optional[int] = None,
) -> None:
    """Atomically write a trainer checkpoint to ``path``.

    The archive carries a format version, the full training config (for
    resume validation), a JSON meta block (counters, RNG state, history,
    governor bookkeeping), and the parameter / optimiser arrays — all
    covered by a SHA-256 content checksum.

    Parameters
    ----------
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; its scheduled I/O
        faults fire *before* anything is written, modelling a transient
        storage failure.  Because the write is atomic, a failed attempt
        never damages an existing checkpoint at ``path``.
    keep_last:
        When set, additionally retain this checkpoint under its history
        name (``{stem}.e<EPOCHS>s<STEP>{ext}``) and prune history beyond
        the newest ``keep_last`` files — giving resume a verified
        fallback should the latest checkpoint be corrupted on disk.
    """
    if fault_plan is not None:
        fault_plan.before_checkpoint_write(path)
    meta = {
        "kind": _KIND,
        "format_version": FORMAT_VERSION,
        "epochs_done": state.epochs_done,
        "trained_steps": state.trained_steps,
        "skipped_graphs": state.skipped_graphs,
        "checkpointed_steps": state.checkpointed_steps,
        "rng_state": state.rng_state,
        "step_in_epoch": state.step_in_epoch,
        "epoch_losses": list(state.epoch_losses),
        "governor": state.governor_state,
        "history": _history_to_jsonable(state.history),
        "has_best_state": state.best_state is not None,
    }
    payload: Dict[str, np.ndarray] = {
        "meta_json": _text_entry(json.dumps(meta)),
        "config_json": _text_entry(json.dumps(dataclasses.asdict(config))),
    }
    for name, arr in state.model_state.items():
        payload[f"model/{name}"] = arr
    for name, arr in state.optimizer_state.items():
        payload[f"optim/{name}"] = arr
    if state.best_state is not None:
        for name, arr in state.best_state.items():
            payload[f"best/{name}"] = arr
    atomic_savez(path, payload)
    if keep_last is not None and keep_last > 0:
        _retain_and_prune(path, state, keep_last)


def _unpack_prefix(archive, prefix: str) -> Dict[str, np.ndarray]:
    plen = len(prefix) + 1
    return {
        key[plen:]: archive[key]
        for key in archive.files
        if key.startswith(prefix + "/")
    }


def _check_config(
    path: str,
    saved: Dict[str, Any],
    config: GNNTrainConfig,
    extra_exempt: Tuple[str, ...] = (),
) -> None:
    current = dataclasses.asdict(config)
    mismatched: List[str] = []
    for key, value in saved.items():
        if key in _RESUME_EXEMPT_FIELDS or key in extra_exempt:
            continue
        if key in current and current[key] != value:
            mismatched.append(f"{key}: checkpoint={value!r} vs run={current[key]!r}")
    if mismatched:
        raise CheckpointError(
            f"checkpoint {path!r} was written under a different training "
            "configuration; refusing to resume (" + "; ".join(mismatched) + ")"
        )


def load_trainer_checkpoint(
    path: str,
    config: GNNTrainConfig,
    extra_exempt: Tuple[str, ...] = (),
) -> TrainerState:
    """Load and validate a checkpoint for resuming under ``config``.

    ``extra_exempt`` names config fields additionally allowed to differ
    from the checkpointed run, beyond the standard plumbing exemptions.
    The stability watchdog passes ``("lr",)`` when resuming after a
    rollback, because LR backoff is exactly a deliberate lr change.

    Raises
    ------
    CheckpointError
        If the file is missing, corrupt (bad checksum / truncated), of an
        unknown format version, or written under an incompatible
        configuration.
    """
    with open_archive(path) as archive:
        try:
            meta = json.loads(_entry_text(archive["meta_json"]))
            saved_config = json.loads(_entry_text(archive["config_json"]))
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is missing or has a malformed meta block: {exc}"
            ) from exc
        if meta.get("kind") != _KIND:
            raise CheckpointError(
                f"{path!r} is not a trainer checkpoint (kind={meta.get('kind')!r})"
            )
        if meta.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has format version "
                f"{meta.get('format_version')!r}; this build reads version "
                f"{FORMAT_VERSION}"
            )
        _check_config(path, saved_config, config, extra_exempt)
        if meta["epochs_done"] >= config.epochs and not meta.get("step_in_epoch"):
            raise CheckpointError(
                f"checkpoint {path!r} already covers {meta['epochs_done']} "
                f"epochs; nothing to resume for an epoch budget of "
                f"{config.epochs}"
            )
        model_state = _unpack_prefix(archive, "model")
        if not model_state:
            raise CheckpointError(f"checkpoint {path!r} contains no model parameters")
        best_state = _unpack_prefix(archive, "best") if meta.get("has_best_state") else None
        return TrainerState(
            epochs_done=int(meta["epochs_done"]),
            model_state=model_state,
            optimizer_state=_unpack_prefix(archive, "optim"),
            rng_state=meta["rng_state"],
            history=_history_from_jsonable(meta["history"]),
            governor_state=meta["governor"],
            best_state=best_state,
            trained_steps=int(meta["trained_steps"]),
            skipped_graphs=int(meta["skipped_graphs"]),
            checkpointed_steps=int(meta["checkpointed_steps"]),
            # absent in pre-mid-epoch-checkpoint archives (same format
            # version; the keys default to "epoch boundary")
            step_in_epoch=int(meta.get("step_in_epoch", 0)),
            epoch_losses=[float(x) for x in meta.get("epoch_losses", [])],
        )


def load_with_fallback(
    path: str,
    config: GNNTrainConfig,
    extra_exempt: Tuple[str, ...] = (),
) -> Tuple[TrainerState, str, bool]:
    """Load ``path``; on *byte corruption*, fall back to retained history.

    Only :class:`CheckpointCorruptError` (bad zip, checksum mismatch,
    truncation) triggers the fallback scan — a missing file, unknown
    format, or config mismatch is a caller mistake and propagates
    unchanged rather than being papered over with stale state.  History
    candidates (see :func:`checkpoint_history_paths`) are tried newest
    first; each one re-verifies its checksum, so a fallback never
    resumes from silently damaged bytes.

    Returns ``(state, used_path, fell_back)``; when no candidate
    verifies, the *original* corruption error is re-raised so the root
    cause stays visible.
    """
    try:
        return load_trainer_checkpoint(path, config, extra_exempt), path, False
    except CheckpointCorruptError as primary:
        for candidate in checkpoint_history_paths(path):
            if os.path.abspath(candidate) == os.path.abspath(path):
                continue
            try:
                state = load_trainer_checkpoint(candidate, config, extra_exempt)
            except CheckpointError:
                continue
            return state, candidate, True
        raise primary


def describe_checkpoint(path: str) -> Dict[str, Any]:
    """Human-oriented summary of a checkpoint (CLI / debugging helper)."""
    with open_archive(path) as archive:
        meta = json.loads(_entry_text(archive["meta_json"]))
        config = json.loads(_entry_text(archive["config_json"]))
    return {
        "kind": meta.get("kind"),
        "format_version": meta.get("format_version"),
        "epochs_done": meta.get("epochs_done"),
        "trained_steps": meta.get("trained_steps"),
        "step_in_epoch": meta.get("step_in_epoch", 0),
        "mode": config.get("mode"),
        "world_size": config.get("world_size"),
        "seed": config.get("seed"),
    }
