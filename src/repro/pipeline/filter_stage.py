"""Pipeline Stage 3: edge-filter MLP.

Scores every candidate edge with a cheap MLP and removes edges below a
low threshold, shrinking the graph before the memory-intensive GNN while
keeping the truth-segment recall close to one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..graph import EventGraph
from ..models import FilterConfig, FilterNet
from ..nn import Adam, BCEWithLogitsLoss
from ..tensor import Tensor
from .config import PipelineConfig
from .trainers import derive_pos_weight

__all__ = ["FilterStage"]


class FilterStage:
    """Trainable edge pre-filter."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.net: FilterNet | None = None
        self.losses: List[float] = []

    # ------------------------------------------------------------------
    def fit(
        self, graphs: Sequence[EventGraph], rng: np.random.Generator
    ) -> "FilterStage":
        """Train the filter MLP on labelled candidate graphs."""
        if not graphs:
            raise ValueError("no training graphs")
        g0 = graphs[0]
        net = FilterNet(
            FilterConfig(
                node_features=g0.num_node_features,
                edge_features=g0.num_edge_features,
                hidden=self.config.filter_hidden,
                mlp_layers=self.config.mlp_layers,
                seed=self.config.seed,
            )
        )
        optimizer = Adam(net.parameters(), lr=self.config.filter_lr)
        loss_fn = BCEWithLogitsLoss(pos_weight=derive_pos_weight(graphs))
        self.losses = []
        for _ in range(self.config.filter_epochs):
            epoch_losses = []
            for g in graphs:
                if g.num_edges == 0:
                    continue
                optimizer.zero_grad()
                logits = net(Tensor(g.x), Tensor(g.y), g.rows, g.cols)
                loss = loss_fn(logits, g.edge_labels.astype(np.float32))
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            self.losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        self.net = net
        return self

    # ------------------------------------------------------------------
    def prune(self, graph: EventGraph) -> Tuple[EventGraph, np.ndarray]:
        """Remove edges scoring below the filter threshold.

        Returns the pruned graph and the boolean keep-mask over the input
        edges.
        """
        if self.net is None:
            raise RuntimeError("filter stage not fitted")
        if graph.num_edges == 0:
            return graph, np.zeros(0, dtype=bool)
        scores = self.net.predict_proba(graph)
        keep = scores >= self.config.filter_threshold
        return graph.edge_mask_subgraph(keep), keep

    def segment_recall(self, graph: EventGraph, keep: np.ndarray) -> float:
        """Fraction of true edges surviving the filter."""
        labels = graph.edge_labels.astype(bool)
        total = int(labels.sum())
        if total == 0:
            return 1.0
        return float(np.sum(labels & keep)) / total
