"""Pipeline Stage 3: edge-filter MLP.

Scores every candidate edge with a cheap MLP and removes edges below a
low threshold, shrinking the graph before the memory-intensive GNN while
keeping the truth-segment recall close to one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..graph import EventGraph
from ..models import FilterConfig, FilterNet
from ..nn import Adam, BCEWithLogitsLoss
from ..tensor import Tensor
from .config import PipelineConfig
from .trainers import derive_pos_weight

__all__ = ["FilterStage"]


class FilterStage:
    """Trainable edge pre-filter."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.net: FilterNet | None = None
        self.losses: List[float] = []

    # ------------------------------------------------------------------
    def fit(
        self, graphs: Sequence[EventGraph], rng: np.random.Generator
    ) -> "FilterStage":
        """Train the filter MLP on labelled candidate graphs."""
        if not graphs:
            raise ValueError("no training graphs")
        g0 = graphs[0]
        net = FilterNet(
            FilterConfig(
                node_features=g0.num_node_features,
                edge_features=g0.num_edge_features,
                hidden=self.config.filter_hidden,
                mlp_layers=self.config.mlp_layers,
                seed=self.config.seed,
            )
        )
        optimizer = Adam(net.parameters(), lr=self.config.filter_lr)
        loss_fn = BCEWithLogitsLoss(pos_weight=derive_pos_weight(graphs))
        self.losses = []
        for _ in range(self.config.filter_epochs):
            epoch_losses = []
            for g in graphs:
                if g.num_edges == 0:
                    continue
                optimizer.zero_grad()
                logits = net(Tensor(g.x), Tensor(g.y), g.rows, g.cols)
                loss = loss_fn(logits, g.edge_labels.astype(np.float32))
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            self.losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        self.net = net
        return self

    # ------------------------------------------------------------------
    def prune(self, graph: EventGraph) -> Tuple[EventGraph, np.ndarray]:
        """Remove edges scoring below the filter threshold.

        Returns the pruned graph and the boolean keep-mask over the input
        edges.
        """
        if self.net is None:
            raise RuntimeError("filter stage not fitted")
        if graph.num_edges == 0:
            return graph, np.zeros(0, dtype=bool)
        scores = self.net.predict_proba(graph)
        keep = scores >= self.config.filter_threshold
        return graph.edge_mask_subgraph(keep), keep

    def prune_many(
        self, graphs: Sequence[EventGraph]
    ) -> List[Tuple[EventGraph, np.ndarray, np.ndarray]]:
        """Prune several graphs with ONE fused filter forward pass.

        Node/edge features are concatenated block-diagonally (edge
        endpoint indices offset per graph) and scored in a single MLP
        call; scores are split back per graph and thresholded exactly as
        :meth:`prune` does.  The filter MLP is row-wise over edges, so
        under :func:`repro.tensor.row_stable_matmul` each edge's score is
        bit-identical to the per-graph call.

        Returns one ``(pruned_graph, keep_mask, scores)`` triple per
        input graph — ``scores`` are the pre-threshold filter
        probabilities over the *input* edges, which the serving engine's
        degraded mode reuses in place of GNN scores.
        """
        if self.net is None:
            raise RuntimeError("filter stage not fitted")
        nonempty = [g for g in graphs if g.num_edges > 0]
        if nonempty:
            offsets = np.cumsum([0] + [g.num_nodes for g in nonempty])
            big_x = np.concatenate([g.x for g in nonempty], axis=0)
            big_y = np.concatenate([g.y for g in nonempty], axis=0)
            big_rows = np.concatenate(
                [g.rows + off for g, off in zip(nonempty, offsets)]
            )
            big_cols = np.concatenate(
                [g.cols + off for g, off in zip(nonempty, offsets)]
            )
            self.net.eval()
            from ..tensor import no_grad

            with no_grad():
                logits = self.net(
                    Tensor(big_x), Tensor(big_y), big_rows, big_cols
                )
            self.net.train()
            all_scores = 1.0 / (
                1.0 + np.exp(-np.clip(logits.numpy(), -60, 60))
            )
            edge_splits = np.cumsum([g.num_edges for g in nonempty])[:-1]
            per_graph = iter(np.split(all_scores, edge_splits))
        out: List[Tuple[EventGraph, np.ndarray, np.ndarray]] = []
        for g in graphs:
            if g.num_edges == 0:
                out.append((g, np.zeros(0, dtype=bool), np.zeros(0)))
                continue
            scores = np.ascontiguousarray(next(per_graph))
            keep = scores >= self.config.filter_threshold
            out.append((g.edge_mask_subgraph(keep), keep, scores))
        return out

    def segment_recall(self, graph: EventGraph, keep: np.ndarray) -> float:
        """Fraction of true edges surviving the filter."""
        labels = graph.edge_labels.astype(bool)
        total = int(labels.sum())
        if total == 0:
            return 1.0
        return float(np.sum(labels & keep)) / total
