"""Pipeline Stage 4: Interaction-GNN edge classification.

Thin stage wrapper around :mod:`repro.pipeline.trainers`: trains the IGNN
under the configured regime (full-graph / ShaDow / bulk ShaDow) and, at
inference, scores every edge of a graph and prunes those classified as
non-track.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..graph import EventGraph
from .config import PipelineConfig
from .trainers import GNNTrainResult, train_gnn

__all__ = ["GNNStage"]


class GNNStage:
    """Trainable GNN edge classifier."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.result: GNNTrainResult | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        train_graphs: Sequence[EventGraph],
        val_graphs: Sequence[EventGraph],
    ) -> "GNNStage":
        """Train under ``config.gnn`` (mode, sampler, DDP, …)."""
        self.result = train_gnn(train_graphs, val_graphs, self.config.gnn)
        return self

    @property
    def model(self):
        if self.result is None:
            raise RuntimeError("GNN stage not fitted")
        return self.result.model

    # ------------------------------------------------------------------
    def prune(self, graph: EventGraph) -> Tuple[EventGraph, np.ndarray]:
        """Remove edges the GNN classifies as non-track.

        Returns the pruned graph and the keep-mask over the input edges.
        """
        if graph.num_edges == 0:
            return graph, np.zeros(0, dtype=bool)
        scores = self.model.predict_proba(graph)
        keep = scores >= self.config.gnn.threshold
        return graph.edge_mask_subgraph(keep), keep
