"""Pipeline Stage 1: metric-learning hit embedding.

Trains :class:`repro.models.EmbeddingNet` so that hits of the same
particle land close together in the embedding space ("The MLP maps
coordinates belonging to the same track near each other in the embedding
space").  Positive training pairs are the truth track segments; negatives
are random hit pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..detector import Event, vertex_features
from ..detector.geometry import DetectorGeometry
from ..models import EmbeddingConfig, EmbeddingNet, sample_training_pairs
from ..nn import Adam, HingeEmbeddingLoss
from ..tensor import Tensor, ops
from .config import PipelineConfig

__all__ = ["EmbeddingStage"]


class EmbeddingStage:
    """Trainable wrapper around the embedding network.

    Parameters
    ----------
    config:
        Pipeline configuration (embedding_* fields).
    geometry:
        Detector geometry (needed for feature extraction).
    """

    def __init__(self, config: PipelineConfig, geometry: DetectorGeometry) -> None:
        self.config = config
        self.geometry = geometry
        self.net: EmbeddingNet | None = None
        self.losses: List[float] = []

    # ------------------------------------------------------------------
    def fit(self, events: Sequence[Event], rng: np.random.Generator) -> "EmbeddingStage":
        """Train on the truth segments of the given events."""
        if not events:
            raise ValueError("no training events")
        feats = [vertex_features(e, self.geometry, self.config.feature_scheme) for e in events]
        net = EmbeddingNet(
            EmbeddingConfig(
                node_features=feats[0].shape[1],
                embedding_dim=self.config.embedding_dim,
                hidden=self.config.embedding_hidden,
                mlp_layers=self.config.mlp_layers,
                margin=self.config.embedding_margin,
                seed=self.config.seed,
            )
        )
        optimizer = Adam(net.parameters(), lr=self.config.embedding_lr)
        loss_fn = HingeEmbeddingLoss(margin=self.config.embedding_margin)
        self.losses = []
        for epoch in range(self.config.embedding_epochs):
            mine_hard = (
                self.config.hard_negative_mining
                and epoch >= self.config.hnm_warmup_epochs
            )
            epoch_losses = []
            for event, x in zip(events, feats):
                segments = event.true_segments()
                if segments.shape[1] == 0:
                    continue
                src, dst, labels = sample_training_pairs(
                    segments,
                    event.num_hits,
                    self.config.negatives_per_positive,
                    rng,
                )
                if mine_hard:
                    h_src, h_dst = self._mine_hard_negatives(net, event, x)
                    if h_src.size:
                        src = np.concatenate([src, h_src])
                        dst = np.concatenate([dst, h_dst])
                        labels = np.concatenate(
                            [labels, np.zeros(h_src.size, dtype=np.float32)]
                        )
                optimizer.zero_grad()
                z = net(Tensor(x))
                d2 = ops.squared_distance(
                    ops.gather_rows(z, src), ops.gather_rows(z, dst)
                )
                loss = loss_fn(d2, labels)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            self.losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        self.net = net
        return self

    # ------------------------------------------------------------------
    def _mine_hard_negatives(self, net: EmbeddingNet, event: Event, x: np.ndarray):
        """False pairs the current embedding would wrongly connect.

        Runs the fixed-radius search on the current embeddings and keeps
        neighbour pairs whose hits belong to different particles (or
        noise): exactly the fakes the downstream graph construction would
        produce.
        """
        from ..graph import fixed_radius_graph

        z = net.embed(x)
        edge_index = fixed_radius_graph(
            z, radius=self.config.frnn_radius, max_neighbors=self.config.frnn_max_neighbors
        )
        if edge_index.shape[1] == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        pid = event.particle_ids
        src, dst = edge_index
        fake = (pid[src] != pid[dst]) | (pid[src] == 0)
        return src[fake], dst[fake]

    # ------------------------------------------------------------------
    def embed(self, event: Event) -> np.ndarray:
        """Embed one event's hits (inference)."""
        if self.net is None:
            raise RuntimeError("embedding stage not fitted")
        x = vertex_features(event, self.geometry, self.config.feature_scheme)
        return self.net.embed(x)

    def embed_many(self, events: Sequence[Event]) -> List[np.ndarray]:
        """Embed several events through ONE fused forward pass.

        Hit features of all events are concatenated row-wise, pushed
        through the network once, and split back per event.  Under
        :func:`repro.tensor.row_stable_matmul` (the serving engine's
        inference context) every row is bit-identical to what
        :meth:`embed` produces for that event alone — the MLP is
        row-wise, so batching only amortises the per-call overhead.
        """
        if self.net is None:
            raise RuntimeError("embedding stage not fitted")
        if not events:
            return []
        feats = [
            vertex_features(e, self.geometry, self.config.feature_scheme)
            for e in events
        ]
        z = self.net.embed(np.concatenate(feats, axis=0))
        splits = np.cumsum([f.shape[0] for f in feats])[:-1]
        return [np.ascontiguousarray(part) for part in np.split(z, splits)]
