"""Pipeline Stage 5: track building.

Two builders:

* :func:`build_tracks` — plain connected components ("The final result,
  when removing edges from G not in particle tracks, are connected
  components that represent each particle's track"), the paper's method;
* :func:`build_tracks_walkthrough` — score-guided building: edges are
  accepted in descending GNN-score order under the track topology
  constraint (a hit has at most one inward and one outward segment).  A
  single surviving fake edge merges two tracks under plain CC; the
  walkthrough's degree constraint blocks exactly that failure mode, which
  is why production pipelines (acorn) use it at high pileup.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph import EventGraph, UnionFind, components_as_lists, connected_components

__all__ = ["build_tracks", "build_tracks_walkthrough"]


def build_tracks(graph: EventGraph, min_hits: int = 3) -> List[np.ndarray]:
    """Connected components of the pruned graph, as hit-index arrays.

    Parameters
    ----------
    graph:
        The event graph after GNN pruning (vertices are the original
        hits; only surviving edges remain).
    min_hits:
        Components smaller than this are discarded (unreconstructable
        stubs / isolated hits).
    """
    labels = connected_components(graph.rows, graph.cols, graph.num_nodes)
    return components_as_lists(labels, min_size=min_hits)


def build_tracks_walkthrough(
    graph: EventGraph,
    scores: np.ndarray,
    min_hits: int = 3,
    min_score: float = 0.0,
) -> List[np.ndarray]:
    """Score-ordered track building with in/out-degree constraints.

    Edges (oriented inner→outer by the construction stages) are visited in
    descending score order; an edge is accepted iff its source hit has no
    accepted outgoing segment yet, its destination hit no accepted
    incoming segment, and accepting it does not close a cycle.  Accepted
    edges form vertex-disjoint paths = track candidates.

    Parameters
    ----------
    graph:
        The (possibly pruned) event graph.
    scores:
        ``(m,)`` per-edge GNN scores aligned with ``graph`` edges.
    min_hits:
        Minimum candidate length.
    min_score:
        Edges scoring below this are never considered (lets the caller
        skip the hard-threshold pruning step entirely).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[0] != graph.num_edges:
        raise ValueError("scores length must equal edge count")
    n = graph.num_nodes
    order = np.argsort(-scores, kind="stable")
    has_out = np.zeros(n, dtype=bool)
    has_in = np.zeros(n, dtype=bool)
    uf = UnionFind(n)
    next_hit = np.full(n, -1, dtype=np.int64)
    for e in order:
        if scores[e] < min_score:
            break
        u, v = int(graph.rows[e]), int(graph.cols[e])
        if has_out[u] or has_in[v]:
            continue
        if uf.find(u) == uf.find(v):
            continue  # would close a cycle within one candidate
        has_out[u] = True
        has_in[v] = True
        next_hit[u] = v
        uf.union(u, v)

    # walk the accepted paths from their starts (hits with out but no in)
    tracks: List[np.ndarray] = []
    starts = np.flatnonzero(~has_in & has_out)
    for s in starts:
        path = [int(s)]
        cur = int(s)
        while next_hit[cur] >= 0:
            cur = int(next_hit[cur])
            path.append(cur)
        if len(path) >= min_hits:
            tracks.append(np.asarray(path, dtype=np.int64))
    return tracks
