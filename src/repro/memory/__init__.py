"""GPU activation-memory model driving full-graph skip decisions."""

from .activation import ActivationMemoryModel
from .device import A100_40GB, DeviceSpec, scaled_device

__all__ = ["ActivationMemoryModel", "DeviceSpec", "A100_40GB", "scaled_device"]
