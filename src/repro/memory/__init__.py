"""Memory modelling and management.

Two unrelated-but-cohabiting concerns:

* :mod:`repro.memory.activation` — the GPU activation-memory *model*
  driving full-graph skip decisions (paper Section 4);
* :mod:`repro.memory.arena` — the real buffer-pool arena recycling the
  engine's per-step gradient and scratch buffers.
"""

from .activation import ActivationMemoryModel
from .arena import (
    ArenaStats,
    BufferArena,
    arena_enabled,
    default_arena,
    set_arena_enabled,
)
from .device import A100_40GB, DeviceSpec, scaled_device

__all__ = [
    "ActivationMemoryModel",
    "DeviceSpec",
    "A100_40GB",
    "scaled_device",
    "ArenaStats",
    "BufferArena",
    "arena_enabled",
    "default_arena",
    "set_arena_enabled",
]
