"""Device (GPU) memory capacities for the skip-decision model.

The paper trains on NVIDIA A100s (40 GB); our scaled-down datasets pair
with proportionally scaled capacities so that the *fraction* of skipped
events in the `abl-skip` bench mirrors the full-scale behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100_40GB", "scaled_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """A training device's memory budget.

    Parameters
    ----------
    name:
        Human-readable label.
    memory_bytes:
        Total device memory.
    activation_fraction:
        Fraction usable for activations (the rest holds parameters,
        optimiser state, workspace and the CUDA context; 0.6 is a typical
        planning number).
    """

    name: str
    memory_bytes: int
    activation_fraction: float = 0.6

    def activation_budget(self) -> int:
        """Bytes available for stored activations."""
        return int(self.memory_bytes * self.activation_fraction)


A100_40GB = DeviceSpec(name="A100-40GB", memory_bytes=40 * 1024**3)


def scaled_device(scale: float, base: DeviceSpec = A100_40GB) -> DeviceSpec:
    """A device with ``scale`` times the base memory (for sweeps over the
    scaled-down datasets)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return DeviceSpec(
        name=f"{base.name}×{scale:g}",
        memory_bytes=int(base.memory_bytes * scale),
        activation_fraction=base.activation_fraction,
    )
