"""Buffer-pool arena for per-step scratch and gradient arrays.

Every training step of the IGNN allocates the same set of large arrays:
the ``(m, f)`` gathered-message buffers, the ``(n, f)`` scatter outputs
of ``gather_rows``/``segment_sum`` backward, and the sorted-value
scratch of the fused scatter kernels.  NumPy hands each of these back to
the OS allocator as soon as the autograd staging table drops them, so a
steady-state epoch spends a measurable fraction of its time in
``malloc``/page-faulting memory it freed microseconds earlier.

:class:`BufferArena` recycles those buffers: the fused kernels in
:mod:`repro.tensor.kernels` allocate through :meth:`BufferArena.take`,
and the autograd engine returns dead gradient buffers through
:meth:`BufferArena.reclaim` once they have been consumed (see
``Tensor.backward``).  Safety rules:

* only arrays issued by :meth:`take` are ever pooled — ``reclaim`` of a
  foreign array (a view, a closure pass-through, user data) is a no-op;
* identity is verified with a weak reference, so an ``id()`` recycled by
  the Python allocator can never alias a pooled buffer;
* a buffer is reclaimed at most once (the registry entry is popped).

The arena is process-global (``default_arena``) and lock-protected: the
serving engine's worker threads share it.  ``set_arena_enabled(False)``
turns every ``take`` into a plain allocation — the escape hatch used by
the parity suites to prove pooling never changes results.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArenaStats",
    "BufferArena",
    "default_arena",
    "arena_enabled",
    "set_arena_enabled",
]

#: Default cap on pooled (idle) bytes; beyond it, reclaimed buffers are
#: dropped to the normal allocator instead of being cached.
DEFAULT_MAX_POOLED_BYTES = 256 * 1024 * 1024


class ArenaStats:
    """Counters of one :class:`BufferArena` (all monotonic)."""

    __slots__ = ("hits", "misses", "reclaimed", "rejected", "bytes_reused")

    def __init__(self) -> None:
        self.hits = 0          # take() served from the pool
        self.misses = 0        # take() fell through to np.empty
        self.reclaimed = 0     # buffers returned to the pool
        self.rejected = 0      # reclaim() of a foreign/duplicate array
        self.bytes_reused = 0  # total bytes served from the pool

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaStats({self.to_dict()})"


_Key = Tuple[Tuple[int, ...], str]


class BufferArena:
    """Size-class pool of ndarray scratch buffers.

    Parameters
    ----------
    max_pooled_bytes:
        Upper bound on the *idle* bytes kept in the pool; buffers
        reclaimed beyond it are dropped (garbage-collected normally).
    """

    def __init__(self, max_pooled_bytes: int = DEFAULT_MAX_POOLED_BYTES) -> None:
        if max_pooled_bytes < 0:
            raise ValueError("max_pooled_bytes must be >= 0")
        self.max_pooled_bytes = max_pooled_bytes
        self.stats = ArenaStats()
        self._pools: Dict[_Key, List[np.ndarray]] = {}
        self._registry: Dict[int, weakref.ref] = {}
        self._pooled_bytes = 0
        self._lock = threading.Lock()
        self._sweep_at = 1024  # amortised purge of dead registry entries

    # ------------------------------------------------------------------
    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> _Key:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def take(self, shape, dtype=np.float32, zero: bool = False) -> np.ndarray:
        """Return a C-contiguous array of ``shape``/``dtype``.

        The array is *registered*: handing it back via :meth:`reclaim`
        (or :meth:`give`) returns it to the pool for the next ``take``.
        With ``zero=True`` the buffer is zero-filled (pooled buffers
        hold stale data from their previous life).
        """
        if not arena_enabled():
            return (np.zeros if zero else np.empty)(shape, dtype=dtype)
        if np.isscalar(shape):
            shape = (int(shape),)
        key = self._key(tuple(shape), dtype)
        with self._lock:
            bucket = self._pools.get(key)
            if bucket:
                arr = bucket.pop()
                self._pooled_bytes -= arr.nbytes
                self.stats.hits += 1
                self.stats.bytes_reused += arr.nbytes
            else:
                arr = np.empty(key[0], dtype=np.dtype(key[1]))
                self.stats.misses += 1
            self._registry[id(arr)] = weakref.ref(arr)
            if len(self._registry) >= self._sweep_at:
                # Buffers that died unreclaimed (exceptions, one-shot use)
                # leave dead weakrefs behind; purge them occasionally so
                # the registry stays bounded.
                self._registry = {
                    k: r for k, r in self._registry.items() if r() is not None
                }
                self._sweep_at = max(1024, 2 * len(self._registry))
        if zero:
            arr.fill(0)
        return arr

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        """Shorthand for ``take(shape, dtype, zero=True)``."""
        return self.take(shape, dtype, zero=True)

    def is_issued(self, arr) -> bool:
        """Whether ``arr`` is a live buffer issued by :meth:`take`."""
        if not isinstance(arr, np.ndarray):
            return False
        with self._lock:
            ref = self._registry.get(id(arr))
            return ref is not None and ref() is arr

    def reclaim(self, arr: Optional[np.ndarray]) -> bool:
        """Return a dead arena-issued buffer to the pool.

        A no-op (returning False) for anything the arena did not issue:
        foreign arrays, views, already-reclaimed buffers.  Callers may
        therefore offer *any* dead array without aliasing risk.
        """
        if arr is None or not isinstance(arr, np.ndarray):
            return False
        with self._lock:
            ref = self._registry.get(id(arr))
            if ref is None or ref() is not arr:
                self.stats.rejected += 1
                return False
            del self._registry[id(arr)]
            if self._pooled_bytes + arr.nbytes > self.max_pooled_bytes:
                self.stats.rejected += 1
                return False
            key = self._key(arr.shape, arr.dtype)
            self._pools.setdefault(key, []).append(arr)
            self._pooled_bytes += arr.nbytes
            self.stats.reclaimed += 1
            return True

    # `give` is the explicit-scratch spelling of the same operation: the
    # fused kernels take() a sort buffer, use it, and give() it back
    # before returning.
    give = reclaim

    # ------------------------------------------------------------------
    @property
    def pooled_bytes(self) -> int:
        """Idle bytes currently cached in the pool."""
        with self._lock:
            return self._pooled_bytes

    def clear(self) -> None:
        """Drop every pooled buffer (registered in-flight buffers stay)."""
        with self._lock:
            self._pools.clear()
            self._pooled_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferArena(pooled_bytes={self.pooled_bytes}, "
            f"stats={self.stats.to_dict()})"
        )


# ----------------------------------------------------------------------
# process-global arena
# ----------------------------------------------------------------------
_DEFAULT_ARENA = BufferArena()
_ENABLED = True


def default_arena() -> BufferArena:
    """The process-global arena shared by the fused kernels."""
    return _DEFAULT_ARENA


def arena_enabled() -> bool:
    """Whether pooling is active (``take`` recycles, ``reclaim`` pools)."""
    return _ENABLED


def set_arena_enabled(enabled: bool) -> bool:
    """Toggle pooling globally; returns the previous setting.

    Used by the parity suites to compare pooled vs. plain allocation,
    and available as a kill switch if an embedding application manages
    its own memory.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous
