"""Activation-memory model of Interaction GNN training.

Section III-B: full-graph training must store every layer's output
matrices (``X^{l+1}``, ``Y^{l+1}``, ``M_src``, ``M_dst``) for
backpropagation, "the largest of which have m·f total elements" — so
events with large edge counts exceed GPU memory and the original
Exa.TrkX pipeline *skips* them.  This module computes that footprint
analytically so the full-graph trainer can make the same skip decision,
and so the `abl-skip` bench can sweep device capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.interaction_gnn import IGNNConfig

__all__ = ["ActivationMemoryModel"]

_BYTES_PER_ELEMENT = 4  # float32


@dataclass(frozen=True)
class ActivationMemoryModel:
    """Per-event activation accounting for an IGNN configuration.

    The dominant stored tensors per message-passing layer are:

    * the concatenated message input ``[Y'  X'[rows]  X'[cols]]`` — ``m × 6f``;
    * the edge state ``Y^{l+1}`` — ``m × f`` (plus MLP hidden activations);
    * the two aggregates ``M_src``/``M_dst`` — ``n × f`` each;
    * the node update input ``[M_src  M_dst  X']`` — ``n × 4f`` and state
      ``X^{l+1}`` — ``n × f``.

    ``mlp_hidden_factor`` approximates the intermediate activations inside
    each φ (one ``f``-wide activation per hidden Linear).
    """

    config: IGNNConfig

    def elements_per_layer(self, num_nodes: int, num_edges: int) -> int:
        """Stored activation elements for one message-passing layer."""
        f = self.config.hidden
        hidden_acts = max(self.config.mlp_layers - 1, 0)
        edge_terms = 6 * f + f + hidden_acts * f      # msg input + Y^{l+1} + φ internals
        node_terms = 4 * f + f + 2 * f + hidden_acts * f  # update input + X^{l+1} + M_src/M_dst
        return num_edges * edge_terms + num_nodes * node_terms

    def total_bytes(self, num_nodes: int, num_edges: int) -> int:
        """Activation bytes to train one graph (all layers + encoders)."""
        f = self.config.hidden
        per_layer = self.elements_per_layer(num_nodes, num_edges)
        encoders = (num_nodes + num_edges) * f
        head = num_edges * f
        total_elements = self.config.num_layers * per_layer + encoders + head
        return total_elements * _BYTES_PER_ELEMENT

    def fits(self, num_nodes: int, num_edges: int, capacity_bytes: int) -> bool:
        """Whether training this event fits in ``capacity_bytes``."""
        return self.total_bytes(num_nodes, num_edges) <= capacity_bytes

    def checkpointed_bytes(self, num_nodes: int, num_edges: int) -> int:
        """Activation bytes under layer-boundary gradient checkpointing
        (:class:`repro.models.CheckpointedIGNN`): the stored state is one
        ``(n+m)·f`` boundary pair per layer plus a single layer's working
        set for the recompute window."""
        f = self.config.hidden
        boundaries = (self.config.num_layers + 1) * (num_nodes + num_edges) * f
        window = self.elements_per_layer(num_nodes, num_edges)
        head = num_edges * f
        return (boundaries + window + head) * _BYTES_PER_ELEMENT

    def max_edges(self, num_nodes: int, capacity_bytes: int) -> int:
        """Largest edge count trainable at the given vertex count."""
        f = self.config.hidden
        hidden_acts = max(self.config.mlp_layers - 1, 0)
        edge_terms = 6 * f + f + hidden_acts * f
        node_terms = 4 * f + f + 2 * f + hidden_acts * f
        budget = capacity_bytes // _BYTES_PER_ELEMENT
        fixed = (
            self.config.num_layers * num_nodes * node_terms
            + num_nodes * f  # node encoder
        )
        per_edge = self.config.num_layers * edge_terms + f + f  # + encoder + head
        remaining = budget - fixed
        if remaining <= 0:
            return 0
        return int(remaining // per_edge)
