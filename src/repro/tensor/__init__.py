"""NumPy-backed reverse-mode autograd engine (the PyTorch substitute).

Public surface::

    from repro.tensor import Tensor, no_grad, ops

``Tensor`` provides operator sugar (``+``, ``@``, ``.relu()``, ...); the
full op set — including the graph primitives ``gather_rows`` and
``segment_sum`` used by the Interaction GNN, and their fused variants
``gather_concat_matmul`` / ``scatter_mlp_input`` — lives in
:mod:`repro.tensor.ops`, with the underlying sorted-scatter kernels in
:mod:`repro.tensor.kernels`.
"""

from .tensor import (
    DEFAULT_DTYPE,
    Tensor,
    asarray,
    astensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    unbroadcast,
)
from . import kernels, ops
from .ops import is_row_stable_matmul, row_stable_matmul
from .gradcheck import gradcheck

__all__ = [
    "DEFAULT_DTYPE",
    "Tensor",
    "asarray",
    "astensor",
    "is_grad_enabled",
    "no_grad",
    "unbroadcast",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "ops",
    "kernels",
    "gradcheck",
    "row_stable_matmul",
    "is_row_stable_matmul",
]
