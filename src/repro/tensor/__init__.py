"""NumPy-backed reverse-mode autograd engine (the PyTorch substitute).

Public surface::

    from repro.tensor import Tensor, no_grad, ops

``Tensor`` provides operator sugar (``+``, ``@``, ``.relu()``, ...); the
full op set — including the graph primitives ``gather_rows`` and
``segment_sum`` used by the Interaction GNN — lives in
:mod:`repro.tensor.ops`.
"""

from .tensor import (
    DEFAULT_DTYPE,
    Tensor,
    asarray,
    astensor,
    is_grad_enabled,
    no_grad,
    unbroadcast,
)
from . import ops
from .ops import is_row_stable_matmul, row_stable_matmul
from .gradcheck import gradcheck

__all__ = [
    "DEFAULT_DTYPE",
    "Tensor",
    "asarray",
    "astensor",
    "is_grad_enabled",
    "no_grad",
    "unbroadcast",
    "ops",
    "gradcheck",
    "row_stable_matmul",
    "is_row_stable_matmul",
]
