"""A minimal reverse-mode automatic differentiation engine on NumPy.

This module stands in for PyTorch in the reproduction: the Interaction GNN
(Algorithm 1 of the paper) is a tensor program built from dense matmuls,
concatenations, row gathers (``X[A.rows]``), and segment sums (the ``AGG``
reduction).  :class:`Tensor` wraps a :class:`numpy.ndarray` and records the
operations applied to it so that :meth:`Tensor.backward` can propagate
gradients through the recorded graph.

Design notes
------------
* The graph is built eagerly: each differentiable operation returns a new
  :class:`Tensor` holding references to its parents and a closure that maps
  the output gradient to a tuple of parent gradients (one entry per parent,
  ``None`` for parents that do not require grad).
* Gradients accumulate into ``Tensor.grad`` only on *leaf* tensors (the
  parameters); interior gradients live in a staging table for the duration
  of :meth:`Tensor.backward` and are freed as soon as they are consumed,
  which keeps the memory profile of an 8-layer IGNN backward pass bounded.
* Shapes follow NumPy broadcasting; gradient closures un-broadcast by
  summing over the broadcast axes (see :func:`unbroadcast`).
* ``float32`` is the default dtype (as in the paper's training runs); the
  finite-difference gradient checks in the test-suite build ``float64``
  tensors for accuracy.

Only the operations the pipeline needs are implemented; they live in
:mod:`repro.tensor.ops` and are re-exported from :mod:`repro.tensor`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "asarray",
    "astensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "DEFAULT_DTYPE",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]

#: Historic engine default (the paper trains in float32).  The *active*
#: default is dynamic — see :func:`get_default_dtype` — so the pipeline's
#: ``precision`` flag can switch the whole engine to a float64 reference
#: mode without threading a dtype through every call site.
DEFAULT_DTYPE = np.float32

_ALLOWED_DEFAULT_DTYPES = (np.float32, np.float64)
_DTYPE_STATE = threading.local()
_default_dtype_global = np.float32


def _check_default_dtype(dtype):
    dt = np.dtype(dtype).type
    if dt not in _ALLOWED_DEFAULT_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {np.dtype(dtype)}"
        )
    return dt


def get_default_dtype():
    """The dtype new float tensors adopt (thread override, then global)."""
    return getattr(_DTYPE_STATE, "dtype", None) or _default_dtype_global


def set_default_dtype(dtype):
    """Set the process-global default float dtype; returns the previous one.

    ``float64`` turns the engine into the high-precision reference mode
    used by the convergence-parity gates; ``float32`` (the default)
    matches the paper's training runs.
    """
    global _default_dtype_global
    previous = _default_dtype_global
    _default_dtype_global = _check_default_dtype(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Thread-scoped (re-entrant) override of the default float dtype."""
    dt = _check_default_dtype(dtype)
    previous = getattr(_DTYPE_STATE, "dtype", None)
    _DTYPE_STATE.dtype = dt
    try:
        yield
    finally:
        _DTYPE_STATE.dtype = previous

# Autograd switch, toggled by the `no_grad` context manager.  The
# pipeline's inference paths run under `no_grad()` so that sampling-heavy
# evaluation loops do not accumulate graph nodes.  The switch is a
# per-thread nesting depth, not a process-wide boolean: the serving
# engine's worker pool runs inference scopes concurrently, and a
# save/restore global would let out-of-order exits re-enable grad inside
# another worker's scope or leave it disabled for the whole process.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_GRAD_STATE, "no_grad_depth", 0) == 0


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``).

    Re-entrant, and scoped to the calling thread."""
    _GRAD_STATE.no_grad_depth = getattr(_GRAD_STATE, "no_grad_depth", 0) + 1
    try:
        yield
    finally:
        _GRAD_STATE.no_grad_depth -= 1


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting in the forward pass replicates values along new or size-1
    axes; the adjoint of replication is summation.  This helper is used by
    every binary-op backward closure.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# gradient-buffer recycling
# ----------------------------------------------------------------------
# Backward closures that produce large gradients (gather/scatter/fused
# graph ops) allocate them from the repro.memory buffer arena.  The
# staging loop in Tensor.backward hands each gradient back to the arena
# the moment it is dead — consumed into a leaf `.grad` or folded into a
# staged sum — so steady-state training reuses the same few buffers
# instead of round-tripping through malloc every step.  Reclaiming a
# foreign array is a no-op (the arena only pools what it issued), so the
# loop can offer every dead array without tracking provenance.
_ARENA = None


def _arena():
    global _ARENA
    if _ARENA is None:
        from ..memory.arena import default_arena

        _ARENA = default_arena()
    return _ARENA


def _reclaim_dead(dead, grads) -> None:
    """Return dead gradient buffers to the arena.

    A candidate is skipped when any *live* staged gradient is (or is a
    view of) the same array — closures may pass a gradient through
    unchanged (e.g. identity-like ops), in which case the "dead" buffer
    is still referenced by the staging table under another key.
    """
    arena = _arena()
    # Cheap filter first: only arena-issued buffers can be pooled, so the
    # O(live grads) alias walk below runs for those few candidates only.
    candidates = [
        arr for arr in dead if isinstance(arr, np.ndarray) and arena.is_issued(arr)
    ]
    if not candidates:
        return
    live = list(grads.values())
    for arr in candidates:
        aliased = False
        for g in live:
            v = g
            while isinstance(v, np.ndarray):
                if v is arr:
                    aliased = True
                    break
                v = v.base
            if aliased:
                break
        if not aliased:
            arena.reclaim(arr)


ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

# Backward closure signature: output gradient -> one gradient per parent
# (``None`` for parents that don't require grad).
BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


def asarray(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to an ndarray, unwrapping :class:`Tensor` inputs."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def astensor(value: ArrayLike, dtype=None) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    arr = np.asarray(value)
    if dtype is None and not np.issubdtype(arr.dtype, np.integer):
        dtype = get_default_dtype() if arr.dtype != np.float64 else np.float64
    return Tensor(arr if dtype is None else arr.astype(dtype))


class Tensor:
    """An ndarray with an optional autograd tape entry.

    Parameters
    ----------
    data:
        Array data.  Copied only if dtype conversion is required.
    requires_grad:
        If True, gradients accumulate into :attr:`grad` during
        :meth:`backward`.  Non-leaf tensors produced by operations inherit
        ``requires_grad`` from their parents.

    Attributes
    ----------
    data:
        The underlying :class:`numpy.ndarray`.
    grad:
        Accumulated gradient (same shape as ``data``) or ``None``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        was_ndarray = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data)
        if arr.dtype == np.float64 and not was_ndarray:
            # Python floats/lists adopt the engine default; float64 survives
            # only when passed explicitly as an ndarray (gradcheck inputs).
            self.data = arr.astype(get_default_dtype(), copy=False)
        elif arr.dtype in (np.float32, np.float64):
            self.data = arr
        elif np.issubdtype(arr.dtype, np.floating):
            self.data = arr.astype(get_default_dtype())
        elif np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.bool_:
            # Integer/bool tensors are allowed (indices, labels); they never
            # require gradients.
            self.data = arr
            if requires_grad:
                raise ValueError("integer tensors cannot require gradients")
        else:
            self.data = arr.astype(get_default_dtype())
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[BackwardFn] = None
        self._op: str = ""

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        """Return a zero-filled tensor of the given shape."""
        dtype = get_default_dtype() if dtype is None else dtype
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        """Return a one-filled tensor of the given shape."""
        dtype = get_default_dtype() if dtype is None else dtype
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: BackwardFn,
        op: str = "",
    ) -> "Tensor":
        """Build a non-leaf tensor recording ``backward`` on the tape.

        If autograd is globally disabled or no parent requires a gradient,
        the result is a detached leaf — this is what makes ``no_grad``
        inference cheap.
        """
        parents = tuple(parents)
        req = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req)
        if req:
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0 for scalar outputs (the loss);
            non-scalar outputs require an explicit seed.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a seed requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = grad.reshape(self.data.shape)

        # Iterative post-order DFS: recursion would overflow for deep
        # (8-layer) IGNNs where each layer chains several MLPs.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        # Propagate in reverse topological order.  Interior gradients are
        # staged in `grads` and dropped once consumed; only leaves keep
        # their accumulated gradient in `.grad`.
        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                if node.grad is None:
                    node.grad = np.zeros_like(node.data)
                node.grad += node_grad
                _reclaim_dead((node_grad,), grads)
                continue
            parent_grads = node._backward(node_grad)
            if len(parent_grads) != len(node._parents):
                raise RuntimeError(
                    f"op '{node._op}' returned {len(parent_grads)} gradients "
                    f"for {len(node._parents)} parents"
                )
            dead = [node_grad]
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if pgrad.shape != parent.data.shape:
                    raise RuntimeError(
                        f"op '{node._op}' produced gradient of shape {pgrad.shape} "
                        f"for parent of shape {parent.data.shape}"
                    )
                key = id(parent)
                if key in grads:
                    # Replacing the staged sum kills both addends.
                    dead.append(grads[key])
                    dead.append(pgrad)
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
            _reclaim_dead(dead, grads)

    # ------------------------------------------------------------------
    # operator sugar (implementations live in repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(self, astensor(other))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(self, astensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(astensor(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(self, astensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(self, astensor(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(astensor(other), self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from . import ops

        return ops.matmul(self, astensor(other))

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.pow(self, float(exponent))

    def __getitem__(self, idx) -> "Tensor":
        from . import ops

        return ops.getitem(self, idx)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self) -> "Tensor":
        from . import ops

        return ops.transpose(self)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def relu(self) -> "Tensor":
        from . import ops

        return ops.relu(self)

    def tanh(self) -> "Tensor":
        from . import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from . import ops

        return ops.sigmoid(self)

    def exp(self) -> "Tensor":
        from . import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from . import ops

        return ops.log(self)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)
