"""Finite-difference gradient verification for the autograd engine.

Used throughout the test-suite to validate every op's backward closure and
the composed Interaction-GNN layer.  Checks are run in float64: float32
finite differences are too noisy to distinguish a wrong gradient from
round-off.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic gradients of ``fn`` against central differences.

    Parameters
    ----------
    fn:
        Function mapping the input tensors to a *scalar* output tensor.
    inputs:
        Leaf tensors (float64 recommended) with ``requires_grad=True`` for
        every operand whose gradient should be checked.
    eps:
        Finite-difference step.
    atol, rtol:
        Elementwise tolerance for the comparison.

    Returns
    -------
    bool
        True if all gradients match.

    Raises
    ------
    AssertionError
        With a diagnostic message if any gradient element disagrees.
    """
    inputs = list(inputs)
    for t in inputs:
        if t.requires_grad and t.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs for accuracy")
        t.zero_grad()

    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar output")
    out.backward()

    for k, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = fn(*inputs).item()
            flat[i] = orig - eps
            minus = fn(*inputs).item()
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2.0 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            bad = np.argmax(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {k}: max mismatch at flat index "
                f"{bad}: analytic={analytic.reshape(-1)[bad]:.8g} "
                f"numeric={numeric.reshape(-1)[bad]:.8g}"
            )
    return True
