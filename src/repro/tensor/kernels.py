"""Fused scatter/gather kernels for the IGNN hot path.

The telemetry profiles under ``benchmarks/results/telemetry/`` rank the
Algorithm-1 message path — gather, concat, matmul, segment-reduce — as
the hot set of a training epoch.  Two properties of the old code made it
slow:

* every scatter-add went through ``np.add.at``, which dispatches one
  ufunc inner loop per *row* and is roughly an order of magnitude slower
  than a sort-once + ``np.add.reduceat`` (or per-column ``bincount``)
  reduction over the same data;
* the same ``rows``/``cols`` index arrays are re-sorted for every
  ``segment_sum`` of every layer of every step, although the adjacency
  is fixed for the duration of a forward/backward pass.

This module provides the fast primitives: :class:`ScatterPlan` (the
sort-once artefact, cached per index-array identity) and
:func:`scatter_add_rows` (the sorted segment reduction).  The autograd
ops in :mod:`repro.tensor.ops` and the distributed call sites
(:mod:`repro.distributed.partitioned_gnn`,
:mod:`repro.distributed.compression`) build on them.

Numerical note: ``np.add.reduceat`` reduces each segment with pairwise
summation while ``np.add.at`` accumulates strictly left-to-right, so the
two differ in final float32 bits (pairwise is the *more* accurate one).
The parity suites therefore gate float32 results on tolerance and
float64 results tightly.  Within one kernel the reduction order is a
pure function of the per-segment element sequence, which keeps the
serving engine's batched-vs-sequential bit-parity contract intact.

Scratch buffers come from the :mod:`repro.memory.arena` pool (imported
lazily to avoid an import cycle through the package root).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ScatterPlan",
    "scatter_plan",
    "scatter_add_rows",
    "scatter_add_1d",
    "gather_rows_out",
    "get_arena",
]

# ----------------------------------------------------------------------
# lazy arena access (repro.memory imports repro.models -> repro.tensor,
# so the reverse import must happen after the package is initialised)
# ----------------------------------------------------------------------
_ARENA = None


def get_arena():
    """The process-global :class:`repro.memory.arena.BufferArena`."""
    global _ARENA
    if _ARENA is None:
        from ..memory.arena import default_arena

        _ARENA = default_arena()
    return _ARENA


# ----------------------------------------------------------------------
# scatter plans
# ----------------------------------------------------------------------
class ScatterPlan:
    """Sort-once artefact for scattering rows by an integer index array.

    Attributes
    ----------
    order:
        Stable argsort of the index array, or ``None`` when the array is
        already non-decreasing (CSR-ordered adjacencies hit this path
        and skip both the sort and the gather).
    starts:
        Segment start offsets into the (sorted) value stream.
    unique:
        The distinct segment ids, ascending.
    sizes:
        Rows per distinct segment (``len(unique)``).
    length:
        Number of indexed rows ``m``.
    """

    __slots__ = ("order", "starts", "unique", "sizes", "length")

    def __init__(self, order, starts, unique, sizes, length) -> None:
        self.order = order
        self.starts = starts
        self.unique = unique
        self.sizes = sizes
        self.length = length

    def counts(self, num_segments: int, dtype=np.int64) -> np.ndarray:
        """Dense per-segment row counts (``(num_segments,)``)."""
        out = np.zeros(num_segments, dtype=dtype)
        out[self.unique] = self.sizes
        return out


def _build_plan(index: np.ndarray) -> ScatterPlan:
    m = index.shape[0]
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return ScatterPlan(None, empty, empty, empty, 0)
    if np.all(index[:-1] <= index[1:]):
        order, sorted_ids = None, index
    else:
        order = np.argsort(index, kind="stable")
        sorted_ids = index[order]
    starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
    unique = sorted_ids[starts]
    sizes = np.diff(np.r_[starts, m])
    return ScatterPlan(order, starts, unique, sizes, m)


# Plan cache keyed by index-array identity.  A weak reference guards
# against id() reuse after garbage collection; entries for dead arrays
# are evicted on sight.  The cache is small (one forward/backward pass
# touches at most a handful of distinct adjacency arrays) and assumes
# the cached arrays are not mutated in place — true for every
# ``EventGraph.edge_index`` consumer in the pipeline.
_PLAN_CACHE: "OrderedDict[int, Tuple[weakref.ref, ScatterPlan]]" = OrderedDict()
_PLAN_CACHE_MAX = 128
_PLAN_LOCK = threading.Lock()


def scatter_plan(index: np.ndarray) -> ScatterPlan:
    """Return (building and caching if needed) the plan for ``index``."""
    index = np.asarray(index)
    key = id(index)
    with _PLAN_LOCK:
        entry = _PLAN_CACHE.get(key)
        if entry is not None:
            ref, plan = entry
            if ref() is index:
                _PLAN_CACHE.move_to_end(key)
                return plan
            del _PLAN_CACHE[key]  # id() was recycled by the allocator
    plan = _build_plan(index)
    try:
        ref = weakref.ref(index)
    except TypeError:
        return plan  # non-weakref-able (e.g. np.matrix subclass): no caching
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = (ref, plan)
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan (test hook)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def scatter_add_rows(
    values: np.ndarray,
    index: np.ndarray,
    num_segments: int,
    out: Optional[np.ndarray] = None,
    plan: Optional[ScatterPlan] = None,
    accumulate: bool = False,
) -> np.ndarray:
    """Segment-sum ``values`` rows into ``num_segments`` buckets.

    Drop-in replacement for ``out = zeros(...); np.add.at(out, index,
    values)`` built on a sorted ``np.add.reduceat``: one stable sort
    (cached across calls via :func:`scatter_plan`), one gather, one
    vectorised segment reduction.

    Parameters
    ----------
    values:
        ``(m, f)`` or ``(m,)`` rows to scatter.
    index:
        ``(m,)`` destination row per value row.
    num_segments:
        Output row count; ``index`` must lie in ``[0, num_segments)``.
    out:
        Optional destination (zeroed by this function unless
        ``accumulate``).  Shape must be ``(num_segments,) + values.shape[1:]``.
    plan:
        Precomputed :func:`scatter_plan` of ``index``.
    accumulate:
        Add segment sums onto the existing contents of ``out`` instead of
        overwriting (the partitioned-GNN halo reduction accumulates one
        rank's partial sums at a time).
    """
    values = np.asarray(values)
    index = np.asarray(index)
    shape = (num_segments,) + values.shape[1:]
    if out is None:
        out = np.zeros(shape, dtype=values.dtype)
    else:
        if out.shape != shape:
            raise ValueError(f"out shape {out.shape} != {shape}")
        if not accumulate:
            out[...] = 0
    if index.shape[0] == 0:
        return out
    if values.ndim == 1:
        return scatter_add_1d(values, index, num_segments, out=out)
    if plan is None:
        plan = scatter_plan(index)
    if plan.order is None:
        sorted_vals = values
        segments = np.add.reduceat(sorted_vals, plan.starts, axis=0)
    else:
        arena = get_arena()
        sorted_vals = arena.take(values.shape, values.dtype)
        np.take(values, plan.order, axis=0, out=sorted_vals)
        segments = np.add.reduceat(sorted_vals, plan.starts, axis=0)
        arena.give(sorted_vals)
    if accumulate:
        out[plan.unique] += segments  # `unique` is duplicate-free
    else:
        out[plan.unique] = segments
    return out


def scatter_add_1d(
    values: np.ndarray,
    index: np.ndarray,
    num_segments: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """1-D scatter-add via ``np.bincount`` (fastest for flat payloads)."""
    summed = np.bincount(index, weights=values, minlength=num_segments)
    if summed.shape[0] > num_segments:
        raise IndexError(
            f"index max {int(np.max(index))} out of bounds for "
            f"{num_segments} segments"
        )
    if out is None:
        return summed.astype(values.dtype, copy=False)
    out += summed.astype(out.dtype, copy=False)
    return out


def gather_rows_out(
    values: np.ndarray, index: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Row gather ``values[index]`` into an (arena-pooled) destination."""
    if out is None:
        out = get_arena().take((index.shape[0],) + values.shape[1:], values.dtype)
    np.take(values, index, axis=0, out=out)
    return out
