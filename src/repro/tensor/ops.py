"""Differentiable operations for the :class:`repro.tensor.Tensor` engine.

Every function takes tensors (or array-likes) and returns a new tensor whose
backward closure maps the output gradient to one gradient per parent.  The
op set is exactly what the Exa.TrkX pipeline needs:

* dense algebra — ``matmul``, elementwise arithmetic, activations;
* Algorithm 1 plumbing — ``concat`` (the ``[Y  X[A.rows]  X[A.cols]]``
  message construction), ``gather_rows`` (``X[A.rows]``), and
  ``segment_sum`` (the ``REDUCTION(Y, A.rows, +)`` aggregation);
* losses — numerically-stable ``bce_with_logits`` with ``pos_weight``
  (track/non-track edges are heavily imbalanced), and the hinge-style
  pairwise losses used by the metric-learning embedding stage.

Gradient formulas are checked against central finite differences in
``tests/tensor/test_gradcheck.py``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Optional, Sequence, Tuple

import numpy as np

from . import kernels
from .tensor import Tensor, astensor, unbroadcast

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "matmul",
    "linear",
    "row_stable_matmul",
    "is_row_stable_matmul",
    "sum",
    "mean",
    "reshape",
    "transpose",
    "getitem",
    "concat",
    "stack",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "gather_concat_matmul",
    "scatter_mlp_input",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "dropout",
    "layer_norm",
    "softmax",
    "squared_distance",
    "bce_with_logits",
    "hinge_embedding_loss",
    "mse_loss",
]

_py_sum = sum  # keep a handle on the builtin before we shadow it


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a + b`` with NumPy broadcasting."""
    a, b = astensor(a), astensor(b)
    out = a.data + b.data

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return Tensor.from_op(out, (a, b), backward, op="add")


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a - b`` with NumPy broadcasting."""
    a, b = astensor(a), astensor(b)
    out = a.data - b.data

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return Tensor.from_op(out, (a, b), backward, op="sub")


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a * b`` with NumPy broadcasting."""
    a, b = astensor(a), astensor(b)
    out = a.data * b.data

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor.from_op(out, (a, b), backward, op="mul")


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a / b`` with NumPy broadcasting."""
    a, b = astensor(a), astensor(b)
    out = a.data / b.data

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
        )

    return Tensor.from_op(out, (a, b), backward, op="div")


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    a = astensor(a)

    def backward(grad: np.ndarray):
        return (-grad,)

    return Tensor.from_op(-a.data, (a,), backward, op="neg")


def pow(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant scalar exponent."""
    a = astensor(a)
    out = a.data ** exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return Tensor.from_op(out, (a,), backward, op="pow")


def sqrt(a: Tensor) -> Tensor:
    """Elementwise square root."""
    a = astensor(a)
    root = np.sqrt(a.data)

    def backward(grad: np.ndarray):
        return (grad * 0.5 / root,)

    return Tensor.from_op(root, (a,), backward, op="sqrt")


def abs(a: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient 0 at the kink)."""
    a = astensor(a)

    def backward(grad: np.ndarray):
        return (grad * np.sign(a.data),)

    return Tensor.from_op(np.abs(a.data), (a,), backward, op="abs")


def clip(a: Tensor, lo: Optional[float], hi: Optional[float]) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the range."""
    a = astensor(a)
    out = np.clip(a.data, lo, hi)
    mask = np.ones_like(a.data)
    if lo is not None:
        mask = mask * (a.data >= lo)
    if hi is not None:
        mask = mask * (a.data <= hi)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor.from_op(out, (a,), backward, op="clip")


# ----------------------------------------------------------------------
# linear algebra and shape ops
# ----------------------------------------------------------------------
# Row-stable matmul mode.  BLAS GEMM picks its blocking by matrix shape,
# so row i of ``x @ W`` can round differently depending on how many other
# rows are in the batch — which breaks bit-identity between per-event and
# concatenated-batch inference.  Under ``row_stable_matmul()`` the forward
# product is computed with ``np.einsum``, whose per-row accumulation order
# is independent of the row count: the same input row always produces the
# same output bits, whatever it is batched with.  The backward pass is
# unaffected (training stays on BLAS).
_ROW_STABLE_STATE = threading.local()


def is_row_stable_matmul() -> bool:
    """Whether matmul forwards on this thread use the row-stable kernel."""
    return getattr(_ROW_STABLE_STATE, "depth", 0) > 0


@contextlib.contextmanager
def row_stable_matmul():
    """Scope in which 2-D matmul forwards are bitwise row-stable.

    Inference paths that must produce identical results per event whether
    events are processed one at a time or concatenated into a batch (the
    serving engine's parity contract, see :mod:`repro.serve`) run under
    this context.  Slower than BLAS; never use it for training.

    Re-entrant, and scoped to the calling thread: each serving worker
    enters its own scope, so concurrent threads outside any scope keep
    the fast BLAS kernel.
    """
    _ROW_STABLE_STATE.depth = getattr(_ROW_STABLE_STATE, "depth", 0) + 1
    try:
        yield
    finally:
        _ROW_STABLE_STATE.depth -= 1


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product ``a @ b`` for 1-D or 2-D operands."""
    a, b = astensor(a), astensor(b)
    if is_row_stable_matmul() and a.ndim == 2 and b.ndim == 2:
        out = np.einsum("ij,jk->ik", a.data, b.data)
    else:
        out = a.data @ b.data

    def backward(grad: np.ndarray):
        ga = gb = None
        if a.ndim == 2 and b.ndim == 2:
            ga = grad @ b.data.T
            gb = a.data.T @ grad
        elif a.ndim == 1 and b.ndim == 2:
            ga = grad @ b.data.T
            gb = np.outer(a.data, grad)
        elif a.ndim == 2 and b.ndim == 1:
            ga = np.outer(grad, b.data)
            gb = a.data.T @ grad
        else:  # 1-D dot product
            ga = grad * b.data
            gb = grad * a.data
        return ga, gb

    return Tensor.from_op(out, (a, b), backward, op="matmul")


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Fused affine map ``x @ weight + bias`` as one autograd node.

    The hot-path spelling of ``add(matmul(x, w), b)``: the bias is added
    in place on the matmul output (no broadcast temporary, no extra
    staging-table entry) and its gradient is a single column sum.
    """
    x, weight = astensor(x), astensor(weight)
    out = _mm(x.data, weight.data) if x.ndim == 2 else x.data @ weight.data
    bias_t = None
    if bias is not None:
        bias_t = astensor(bias)
        out += bias_t.data

    def backward(grad: np.ndarray):
        grad = np.asarray(grad)
        if x.ndim == 2:
            gx = grad @ weight.data.T
            gw = x.data.T @ grad
        else:
            gx = grad @ weight.data.T
            gw = np.outer(x.data, grad)
        if bias_t is None:
            return gx, gw
        return gx, gw, grad.sum(axis=0) if grad.ndim > 1 else grad

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)
    return Tensor.from_op(out, parents, backward, op="linear")


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum reduction over ``axis`` (all axes if ``None``)."""
    a = astensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray):
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, a.shape).astype(a.dtype, copy=False) * np.ones(1, dtype=a.dtype),)

    return Tensor.from_op(out, (a,), backward, op="sum")


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction over ``axis`` (all axes if ``None``)."""
    a = astensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.shape[ax]

    def backward(grad: np.ndarray):
        g = np.asarray(grad) / count
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, a.shape) * np.ones(1, dtype=a.dtype),)

    return Tensor.from_op(out, (a,), backward, op="mean")


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    """Reshape; gradient reshapes back."""
    a = astensor(a)
    out = a.data.reshape(shape)

    def backward(grad: np.ndarray):
        return (grad.reshape(a.shape),)

    return Tensor.from_op(out, (a,), backward, op="reshape")


def transpose(a: Tensor) -> Tensor:
    """2-D transpose; gradient transposes back."""
    a = astensor(a)

    def backward(grad: np.ndarray):
        return (grad.T,)

    return Tensor.from_op(a.data.T, (a,), backward, op="transpose")


def getitem(a: Tensor, idx) -> Tensor:
    """Basic and fancy indexing; gradient scatter-adds into the source."""
    a = astensor(a)
    out = a.data[idx]

    def backward(grad: np.ndarray):
        if (
            isinstance(idx, np.ndarray)
            and idx.ndim == 1
            and np.issubdtype(idx.dtype, np.integer)
            and a.ndim >= 1
            and (idx.size == 0 or idx.min() >= 0)
        ):
            # Row gather: use the sorted segment-reduce kernel instead of
            # the per-row ufunc dispatch of ``np.add.at``.
            g = kernels.get_arena().take(a.shape, a.dtype)
            kernels.scatter_add_rows(np.asarray(grad), idx, a.shape[0], out=g)
            return (g,)
        g = np.zeros_like(a.data)
        np.add.at(g, idx, grad)
        return (g,)

    return Tensor.from_op(out, (a,), backward, op="getitem")


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along ``axis``; gradient splits back per input.

    This is the workhorse of Algorithm 1: messages are built as
    ``concat([Y, X[A.rows], X[A.cols]], axis=1)`` and vertex updates as
    ``concat([M_src, M_dst, X], axis=1)``.
    """
    tensors = [astensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    ax = axis % out.ndim
    sizes = [t.shape[ax] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        grads = []
        slicer: list = [slice(None)] * grad.ndim
        for i in range(len(tensors)):
            slicer[ax] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return Tensor.from_op(out, tensors, backward, op="concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new axis; gradient unstacks."""
    tensors = [astensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)
    ax = axis % out.ndim

    def backward(grad: np.ndarray):
        return tuple(np.take(grad, i, axis=ax) for i in range(len(tensors)))

    return Tensor.from_op(out, tensors, backward, op="stack")


# ----------------------------------------------------------------------
# graph ops — the MSG / AGG primitives of Algorithm 1
# ----------------------------------------------------------------------
def gather_rows(a: Tensor, index: np.ndarray) -> Tensor:
    """Row gather ``a[index]`` (``X[A.rows]`` in Algorithm 1).

    Parameters
    ----------
    a:
        ``(n, f)`` feature matrix.
    index:
        Integer array of row indices, one per edge.  Indices may repeat; the
        gradient scatter-adds duplicate rows.
    """
    a = astensor(a)
    index = np.asarray(index, dtype=np.int64)
    out = a.data[index]

    def backward(grad: np.ndarray):
        if index.size and index.min() < 0:  # negative-index fallback
            g = np.zeros_like(a.data)
            np.add.at(g, index, grad)
            return (g,)
        # Sorted segment reduce into an arena-pooled buffer: no fresh
        # ``zeros_like`` allocation and no per-row ``np.add.at`` dispatch.
        g = kernels.get_arena().take(a.shape, a.dtype)
        kernels.scatter_add_rows(np.asarray(grad), index, a.shape[0], out=g)
        return (g,)

    return Tensor.from_op(out, (a,), backward, op="gather_rows")


def segment_sum(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``a`` into ``num_segments`` buckets by ``segment_ids``.

    This is the ``REDUCTION(Y, A.rows, +)`` aggregation of Algorithm 1: each
    vertex sums the messages on its incident edges.  The gradient of a
    segment sum is a row gather.

    Parameters
    ----------
    a:
        ``(m, f)`` per-edge message matrix.
    segment_ids:
        ``(m,)`` vertex index per edge.
    num_segments:
        Number of output rows (vertex count).
    """
    a = astensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.shape[0]:
        raise ValueError(
            f"segment_ids length {segment_ids.shape[0]} != rows {a.shape[0]}"
        )
    out = kernels.scatter_add_rows(a.data, segment_ids, num_segments)

    def backward(grad: np.ndarray):
        return (kernels.gather_rows_out(np.asarray(grad), segment_ids),)

    return Tensor.from_op(out, (a,), backward, op="segment_sum")


def segment_mean(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows per segment; empty segments yield zero rows.

    Fused: the per-segment counts come from the cached scatter plan of
    ``segment_ids`` and the division happens in place on the freshly
    reduced sums — no dense ``(n, 1)`` divisor array and no extra
    autograd node for the division.
    """
    a = astensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.shape[0]:
        raise ValueError(
            f"segment_ids length {segment_ids.shape[0]} != rows {a.shape[0]}"
        )
    plan = kernels.scatter_plan(segment_ids)
    out = kernels.scatter_add_rows(a.data, segment_ids, num_segments, plan=plan)
    # Empty segments keep a zero row: 0 / max(0, 1) == 0.
    safe = np.maximum(plan.counts(num_segments, dtype=a.dtype), 1)
    safe_col = safe.reshape((num_segments,) + (1,) * (a.ndim - 1))
    out /= safe_col

    def backward(grad: np.ndarray):
        scaled = np.asarray(grad) / safe_col
        return (kernels.gather_rows_out(scaled, segment_ids),)

    return Tensor.from_op(out, (a,), backward, op="segment_mean")


def _mm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """2-D matmul honouring the row-stable serving contract."""
    if is_row_stable_matmul():
        return np.einsum("ij,jk->ik", a, b)
    return a @ b


def gather_concat_matmul(
    y: Tensor,
    x: Tensor,
    rows: np.ndarray,
    cols: np.ndarray,
    weight: Tensor,
    bias: Optional[Tensor] = None,
) -> Tensor:
    """Fused MSG-step input: ``concat([y, x[rows], x[cols]], 1) @ W + b``.

    Algebraically identical to gather → concat → first ``Linear`` of the
    edge MLP, but splits ``W`` into its ``y``/``rows``/``cols`` blocks and
    multiplies **before** gathering: with ``n`` vertices and ``m ≫ n``
    edges, ``x @ W_block`` costs ``n·f·h`` instead of gathering two
    ``(m, f)`` copies of ``x`` and paying ``m·f·h`` twice.  Neither the
    gathered rows nor the ``(m, 2f+e)`` concat buffer is ever
    materialised, and the backward pass reduces the output gradient once
    per endpoint (sorted segment reduce) instead of scatter-adding
    ``(m, f)`` intermediates.

    Parameters
    ----------
    y:
        ``(m, e)`` per-edge features (``y_res`` in Algorithm 1).
    x:
        ``(n, f)`` per-vertex features (``x_res``).
    rows, cols:
        ``(m,)`` edge endpoint indices into ``x``.
    weight:
        ``(e + 2f, h)`` first-layer weight, laid out ``[W_y; W_r; W_c]``
        to match the ``concat([y, x[rows], x[cols]])`` column order.
    bias:
        Optional ``(h,)`` first-layer bias.
    """
    y, x, weight = astensor(y), astensor(x), astensor(weight)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    e, f = y.shape[1], x.shape[1]
    if weight.shape[0] != e + 2 * f:
        raise ValueError(
            f"weight rows {weight.shape[0]} != edge_dim + 2*node_dim = {e + 2 * f}"
        )
    w = weight.data
    w_y, w_r, w_c = w[:e], w[e : e + f], w[e + f :]

    arena = kernels.get_arena()
    out = _mm(y.data, w_y)
    xr = _mm(x.data, w_r)
    xc = _mm(x.data, w_c)
    scratch = kernels.gather_rows_out(xr, rows)
    out += scratch
    kernels.gather_rows_out(xc, cols, out=scratch)
    out += scratch
    arena.give(scratch)
    bias_t = None
    if bias is not None:
        bias_t = astensor(bias)
        out += bias_t.data

    def backward(grad: np.ndarray):
        grad = np.asarray(grad)
        n = x.shape[0]
        # Per-endpoint reductions of the output gradient (h columns).
        g_r = kernels.scatter_add_rows(grad, rows, n)
        g_c = kernels.scatter_add_rows(grad, cols, n)
        g_w = np.empty_like(w)
        g_w[:e] = y.data.T @ grad
        g_w[e : e + f] = x.data.T @ g_r
        g_w[e + f :] = x.data.T @ g_c
        g_y = grad @ w_y.T
        g_x = g_r @ w_r.T
        g_x += g_c @ w_c.T
        if bias_t is None:
            return g_y, g_x, g_w
        return g_y, g_x, g_w, grad.sum(axis=0)

    parents = (y, x, weight) if bias_t is None else (y, x, weight, bias_t)
    return Tensor.from_op(out, parents, backward, op="gather_concat_matmul")


def scatter_mlp_input(
    messages: Tensor,
    rows: np.ndarray,
    cols: np.ndarray,
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    num_segments: Optional[int] = None,
) -> Tensor:
    """Fused AGG-step input:
    ``concat([seg_sum(msg, rows), seg_sum(msg, cols), x], 1) @ W + b``.

    The vertex-update twin of :func:`gather_concat_matmul`: both incident
    message aggregations and the concat with the vertex state feed the
    node MLP's first ``Linear`` without materialising the ``(n, 2h+f)``
    concat buffer.  The backward pass pushes the output gradient through
    the weight blocks at vertex granularity (``n`` rows) and gathers to
    edge granularity (``m`` rows) once, instead of twice via separate
    ``segment_sum`` backward passes.

    Parameters
    ----------
    messages:
        ``(m, h)`` per-edge messages (edge-MLP output).
    rows, cols:
        ``(m,)`` edge endpoint indices.
    x:
        ``(n, f)`` per-vertex features (``x_res``).
    weight:
        ``(2h + f, k)`` first-layer weight, laid out ``[W_src; W_dst; W_x]``
        to match ``concat([m_src, m_dst, x])``.
    bias:
        Optional ``(k,)`` first-layer bias.
    num_segments:
        Vertex count ``n``; defaults to ``x.shape[0]``.
    """
    messages, x, weight = astensor(messages), astensor(x), astensor(weight)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    h, f = messages.shape[1], x.shape[1]
    n = x.shape[0] if num_segments is None else int(num_segments)
    if x.shape[0] != n:
        raise ValueError(f"x rows {x.shape[0]} != num_segments {n}")
    if weight.shape[0] != 2 * h + f:
        raise ValueError(
            f"weight rows {weight.shape[0]} != 2*msg_dim + node_dim = {2 * h + f}"
        )
    w = weight.data
    w_s, w_d, w_x = w[:h], w[h : 2 * h], w[2 * h :]

    m_src = kernels.scatter_add_rows(messages.data, rows, n)
    m_dst = kernels.scatter_add_rows(messages.data, cols, n)
    out = _mm(m_src, w_s)
    out += _mm(m_dst, w_d)
    out += _mm(x.data, w_x)
    bias_t = None
    if bias is not None:
        bias_t = astensor(bias)
        out += bias_t.data

    def backward(grad: np.ndarray):
        grad = np.asarray(grad)
        arena = kernels.get_arena()
        t_s = grad @ w_s.T  # (n, h) — gradient w.r.t. m_src
        t_d = grad @ w_d.T
        g_msg = kernels.gather_rows_out(t_s, rows)
        scratch = kernels.gather_rows_out(t_d, cols)
        g_msg += scratch
        arena.give(scratch)
        g_x = grad @ w_x.T
        g_w = np.empty_like(w)
        g_w[:h] = m_src.T @ grad
        g_w[h : 2 * h] = m_dst.T @ grad
        g_w[2 * h :] = x.data.T @ grad
        if bias_t is None:
            return g_msg, g_x, g_w
        return g_msg, g_x, g_w, grad.sum(axis=0)

    parents = (messages, x, weight) if bias_t is None else (messages, x, weight, bias_t)
    return Tensor.from_op(out, parents, backward, op="scatter_mlp_input")


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    a = astensor(a)
    out = np.maximum(a.data, 0)

    def backward(grad: np.ndarray):
        return (grad * (a.data > 0),)

    return Tensor.from_op(out, (a,), backward, op="relu")


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    a = astensor(a)
    out = np.where(a.data > 0, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray):
        return (grad * np.where(a.data > 0, 1.0, negative_slope).astype(a.dtype),)

    return Tensor.from_op(out, (a,), backward, op="leaky_relu")


def tanh(a: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    a = astensor(a)
    out = np.tanh(a.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - out * out),)

    return Tensor.from_op(out, (a,), backward, op="tanh")


def sigmoid(a: Tensor) -> Tensor:
    """Logistic sigmoid, computed stably for large |x|."""
    a = astensor(a)
    x = a.data
    out = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                   np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))))
    out = out.astype(a.dtype, copy=False)

    def backward(grad: np.ndarray):
        return (grad * out * (1.0 - out),)

    return Tensor.from_op(out, (a,), backward, op="sigmoid")


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    a = astensor(a)
    out = np.exp(a.data)

    def backward(grad: np.ndarray):
        return (grad * out,)

    return Tensor.from_op(out, (a,), backward, op="exp")


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    a = astensor(a)

    def backward(grad: np.ndarray):
        return (grad / a.data,)

    return Tensor.from_op(np.log(a.data), (a,), backward, op="log")


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    a = astensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return Tensor.from_op(out, (a,), backward, op="softmax")


# ----------------------------------------------------------------------
# regularisation / normalisation
# ----------------------------------------------------------------------
def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by ``1/(1-p)``.

    A no-op when ``training`` is False or ``p == 0``.
    """
    a = astensor(a)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p <= 0.0:
        return a
    keep = (rng.random(a.shape) >= p).astype(a.dtype)
    scale = 1.0 / (1.0 - p)
    out = a.data * keep * scale

    def backward(grad: np.ndarray):
        return (grad * keep * scale,)

    return Tensor.from_op(out, (a,), backward, op="dropout")


def layer_norm(a: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis with learned affine transform.

    The acorn IGNN applies layer-norm inside each MLP; we match that so the
    8-layer network trains stably at hidden dim 64.
    """
    a, weight, bias = astensor(a), astensor(weight), astensor(bias)
    f = a.shape[-1]
    x = a.data
    # Single-temporary forward: centre once, get the variance from a row
    # dot product of the centred values (einsum: no squared temporary),
    # then normalise the centred buffer in place.
    mu = x.mean(axis=-1, keepdims=True)
    xhat = x - mu
    var = np.einsum("...i,...i->...", xhat, xhat)[..., None] / f
    inv = 1.0 / np.sqrt(var + eps)
    xhat *= inv
    out = xhat * weight.data
    out += bias.data

    def backward(grad: np.ndarray):
        gxhat = grad * weight.data
        # Standard layer-norm backward: project out mean and xhat
        # components, reducing rows with einsum and mutating gxhat in
        # place (it is this closure's private temporary).
        gxhat -= gxhat.mean(axis=-1, keepdims=True)
        dot = np.einsum("...i,...i->...", gxhat, xhat)[..., None] / f
        gxhat -= xhat * dot
        gxhat *= inv
        grad2d, xhat2d = grad.reshape(-1, f), xhat.reshape(-1, f)
        gw = np.einsum("ij,ij->j", grad2d, xhat2d).reshape(weight.shape)
        gb = grad2d.sum(axis=0).reshape(bias.shape)
        return gxhat.astype(a.dtype, copy=False), gw.astype(weight.dtype, copy=False), gb

    return Tensor.from_op(out, (a, weight, bias), backward, op="layer_norm")


# ----------------------------------------------------------------------
# losses
# ----------------------------------------------------------------------
def bce_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    pos_weight: Optional[float] = None,
    reduction: str = "mean",
) -> Tensor:
    """Binary cross-entropy on logits, numerically stable.

    Implements the standard fused form
    ``max(x, 0) - x t + log(1 + exp(-|x|))`` with an optional positive-class
    weight.  Track edges are a small fraction of all candidate edges, so the
    GNN stage trains with ``pos_weight > 1`` exactly as acorn does.

    Parameters
    ----------
    logits:
        ``(m,)`` raw scores.
    targets:
        ``(m,)`` binary labels (0/1), **not** differentiated.
    pos_weight:
        Multiplier on the positive-class term; ``None`` means 1.
    reduction:
        ``"mean"``, ``"sum"``, or ``"none"``.
    """
    logits = astensor(logits)
    t = np.asarray(targets, dtype=logits.dtype)
    x = logits.data
    w = 1.0 if pos_weight is None else float(pos_weight)
    # per-element weight: w on positives, 1 on negatives
    coeff = 1.0 + (w - 1.0) * t
    # With pos_weight the loss is -[w t log s + (1-t) log(1-s)]; expand via
    # the stable log-sigmoid identities (both share one softplus(-|x|)).
    softplus_neg_abs = np.log1p(np.exp(-np.abs(x)))
    log_sig = -(np.maximum(-x, 0) + softplus_neg_abs)       # log σ(x)
    log_one_minus = -(np.maximum(x, 0) + softplus_neg_abs)  # log (1-σ(x))
    loss = -(w * t * log_sig + (1.0 - t) * log_one_minus)

    sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))

    if reduction == "mean":
        scale = 1.0 / x.size
        out = np.asarray(loss.mean(), dtype=x.dtype)
    elif reduction == "sum":
        scale = 1.0
        out = np.asarray(loss.sum(), dtype=x.dtype)
    elif reduction == "none":
        scale = None
        out = loss.astype(x.dtype, copy=False)
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray):
        # d/dx of -[w t log σ + (1-t) log(1-σ)] = (w t + 1 - t) σ - w t
        local = coeff * sig - w * t
        if scale is None:
            g = grad * local
        else:
            g = float(grad) * scale * local
        return (g.astype(x.dtype, copy=False),)

    return Tensor.from_op(out, (logits,), backward, op="bce_with_logits")


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean-squared error against a constant target."""
    pred = astensor(pred)
    t = np.asarray(target, dtype=pred.dtype)
    diff = pred - Tensor(t)
    sq = mul(diff, diff)
    if reduction == "mean":
        return mean(sq)
    if reduction == "sum":
        return sum(sq)
    return sq


def squared_distance(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise squared Euclidean distance between two (m, f) matrices."""
    d = sub(a, b)
    return sum(mul(d, d), axis=-1)


def hinge_embedding_loss(
    dist_sq: Tensor,
    labels: np.ndarray,
    margin: float = 1.0,
    reduction: str = "mean",
) -> Tensor:
    """Metric-learning hinge loss used by the embedding stage.

    For pairs labelled positive (same particle) the loss pulls the squared
    distance toward zero; for negative pairs it pushes the *distance*
    beyond ``margin``:

    ``L = y * d^2 + (1 - y) * max(0, margin - d)^2``

    Parameters
    ----------
    dist_sq:
        ``(m,)`` squared distances between embedded hit pairs.
    labels:
        ``(m,)`` binary pair labels.
    margin:
        Repulsion margin for negative pairs.
    """
    dist_sq = astensor(dist_sq)
    y = np.asarray(labels, dtype=dist_sq.dtype)
    eps = 1e-12
    d = sqrt(clip(dist_sq, eps, None))
    pos_term = mul(Tensor(y), dist_sq)
    hinge = clip(sub(Tensor(np.full_like(y, margin)), d), 0.0, None)
    neg_term = mul(Tensor(1.0 - y), mul(hinge, hinge))
    total = add(pos_term, neg_term)
    if reduction == "mean":
        return mean(total)
    if reduction == "sum":
        return sum(total)
    return total
