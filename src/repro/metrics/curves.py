"""Score-curve metrics: ROC / AUC and kinematics-binned efficiencies.

Beyond the fixed-threshold precision/recall of Figure 4, tracking papers
report threshold-free discrimination (ROC AUC of the edge classifier) and
efficiency as a function of particle kinematics (a pT-binned efficiency
curve exposes the low-momentum region where tracks curl and edges kink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["roc_curve", "roc_auc", "BinnedEfficiency", "binned_efficiency"]


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ROC points (false-positive rate, true-positive rate).

    Computed over all distinct score thresholds, descending; the curve
    starts at (0, 0) and ends at (1, 1).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must share a shape")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC requires both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    # keep one point per distinct threshold (the last index of each run)
    distinct = np.concatenate([np.flatnonzero(np.diff(scores[order])), [scores.size - 1]])
    tpr = np.concatenate([[0.0], tp[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fp[distinct] / n_neg])
    return fpr, tpr


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal; equals the rank statistic)."""
    fpr, tpr = roc_curve(scores, labels)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # NumPy 2.0 rename
    return float(trapezoid(tpr, fpr))


@dataclass(frozen=True)
class BinnedEfficiency:
    """Efficiency in bins of some kinematic variable.

    Attributes
    ----------
    edges:
        ``(B+1,)`` bin edges.
    passed, total:
        Per-bin counts.
    """

    edges: np.ndarray
    passed: np.ndarray
    total: np.ndarray

    @property
    def efficiency(self) -> np.ndarray:
        """Per-bin efficiency; NaN for empty bins."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.total > 0, self.passed / self.total, np.nan)

    @property
    def binomial_error(self) -> np.ndarray:
        """Per-bin binomial uncertainty ``sqrt(e (1-e) / n)``."""
        eff = self.efficiency
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.total > 0, np.sqrt(eff * (1.0 - eff) / self.total), np.nan
            )

    def render(self, label: str = "value") -> List[str]:
        """Human-readable table rows."""
        rows = [f"{'bin':>16} | {'eff':>6} | {'n':>5}"]
        eff = self.efficiency
        for i in range(len(self.total)):
            lo, hi = self.edges[i], self.edges[i + 1]
            e = f"{eff[i]:6.3f}" if self.total[i] else "   —  "
            rows.append(f"[{lo:6.2f},{hi:6.2f}) | {e} | {int(self.total[i]):>5}")
        return rows


def binned_efficiency(
    values: np.ndarray,
    passed_mask: np.ndarray,
    edges: Sequence[float],
) -> BinnedEfficiency:
    """Bin a pass/fail outcome by a kinematic variable.

    Parameters
    ----------
    values:
        Per-object kinematic value (e.g. each particle's truth pT).
    passed_mask:
        Per-object boolean outcome (e.g. "was reconstructed").
    edges:
        Monotonic bin edges; values outside are dropped.
    """
    values = np.asarray(values, dtype=np.float64)
    passed_mask = np.asarray(passed_mask).astype(bool)
    if values.shape != passed_mask.shape:
        raise ValueError("values and passed_mask must share a shape")
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or len(edges) < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be a strictly increasing 1-D array")
    idx = np.digitize(values, edges) - 1
    in_range = (idx >= 0) & (idx < len(edges) - 1)
    nbins = len(edges) - 1
    total = np.bincount(idx[in_range], minlength=nbins)
    passed = np.bincount(idx[in_range & passed_mask], minlength=nbins)
    return BinnedEfficiency(edges=edges, passed=passed, total=total)
