"""Training-history recording (the convergence curves of Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "TrainingHistory"]


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's metrics."""

    epoch: int
    train_loss: float
    val_precision: float
    val_recall: float
    epoch_seconds: float = 0.0
    sampling_seconds: float = 0.0
    training_seconds: float = 0.0
    comm_modeled_seconds: float = 0.0

    @property
    def val_f1(self) -> float:
        p, r = self.val_precision, self.val_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class TrainingHistory:
    """Ordered epoch records plus convenience accessors."""

    label: str = ""
    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, i: int) -> EpochRecord:
        return self.records[i]

    @property
    def final(self) -> EpochRecord:
        if not self.records:
            raise ValueError("empty history")
        return self.records[-1]

    def best(self, metric: str = "val_f1") -> EpochRecord:
        """Record with the best value of ``metric``."""
        if not self.records:
            raise ValueError("empty history")
        return max(self.records, key=lambda r: getattr(r, metric))

    def series(self, metric: str) -> List[float]:
        """The per-epoch series of ``metric`` (for plotting/benching)."""
        return [getattr(r, metric) for r in self.records]

    def summary(self) -> Dict[str, float]:
        f = self.final
        return {
            "epochs": float(len(self.records)),
            "final_precision": f.val_precision,
            "final_recall": f.val_recall,
            "final_f1": f.val_f1,
            "total_seconds": sum(r.epoch_seconds for r in self.records),
        }
