"""Edge-classification metrics.

Figure 4 reports precision and recall "based on the number of correctly
classified edges across validation set particle graphs and the total
number of edges" — i.e. micro-averaged over the pooled edges of all
validation graphs, at a fixed 0.5 score threshold.  These helpers compute
that, plus threshold sweeps for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ConfusionCounts",
    "confusion",
    "precision_recall",
    "f1_score",
    "precision_recall_curve",
    "pooled_precision_recall",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )


def confusion(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> ConfusionCounts:
    """Confusion counts of scores thresholded at ``threshold``."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must share a shape")
    pred = scores >= threshold
    return ConfusionCounts(
        tp=int(np.sum(pred & labels)),
        fp=int(np.sum(pred & ~labels)),
        fn=int(np.sum(~pred & labels)),
        tn=int(np.sum(~pred & ~labels)),
    )


def precision_recall(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> Tuple[float, float]:
    """(precision, recall) at a threshold."""
    c = confusion(scores, labels, threshold)
    return c.precision, c.recall


def f1_score(scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """F1 at a threshold."""
    return confusion(scores, labels, threshold).f1


def pooled_precision_recall(
    per_graph: Iterable[Tuple[np.ndarray, np.ndarray]], threshold: float = 0.5
) -> Tuple[float, float]:
    """Micro-averaged precision/recall over pooled validation graphs
    (the Figure-4 definition)."""
    total = ConfusionCounts(0, 0, 0, 0)
    for scores, labels in per_graph:
        total = total + confusion(scores, labels, threshold)
    return total.precision, total.recall


def precision_recall_curve(
    scores: np.ndarray, labels: np.ndarray, num_thresholds: int = 50
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sweep thresholds uniformly in (0, 1).

    Returns ``(thresholds, precision, recall)`` arrays.
    """
    thresholds = np.linspace(0.0, 1.0, num_thresholds + 2)[1:-1]
    ps, rs = [], []
    for t in thresholds:
        p, r = precision_recall(scores, labels, threshold=float(t))
        ps.append(p)
        rs.append(r)
    return thresholds, np.array(ps), np.array(rs)
