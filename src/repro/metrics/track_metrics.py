"""Track-level reconstruction metrics.

The end product of the pipeline is a set of track candidates (connected
components after edge pruning).  Following the TrackML / Exa.TrkX
convention, a candidate *matches* a truth particle under the
double-majority rule: more than half of the candidate's hits belong to
the particle, and the candidate contains more than half of the particle's
hits.  From the matching we report:

* **efficiency** — matched reconstructable particles / reconstructable particles;
* **fake rate** — candidates matching no particle / candidates;
* **duplicate rate** — extra candidates matching an already-matched particle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["TrackingScore", "match_tracks"]


@dataclass(frozen=True)
class TrackingScore:
    """Summary of candidate-vs-truth matching for one event."""

    num_reconstructable: int
    num_candidates: int
    num_matched: int
    num_fakes: int
    num_duplicates: int

    @property
    def efficiency(self) -> float:
        return (
            self.num_matched / self.num_reconstructable
            if self.num_reconstructable
            else 0.0
        )

    @property
    def fake_rate(self) -> float:
        return self.num_fakes / self.num_candidates if self.num_candidates else 0.0

    @property
    def duplicate_rate(self) -> float:
        return (
            self.num_duplicates / self.num_candidates if self.num_candidates else 0.0
        )


def match_tracks(
    candidates: Sequence[np.ndarray],
    particle_ids: np.ndarray,
    min_hits: int = 3,
) -> TrackingScore:
    """Match track candidates to truth particles (double-majority rule).

    Parameters
    ----------
    candidates:
        Track candidates as arrays of hit indices (components of the
        pruned graph); candidates shorter than ``min_hits`` are ignored.
    particle_ids:
        ``(n,)`` truth particle id per hit (0 = noise).
    min_hits:
        Minimum hits for a particle to count as reconstructable and for a
        candidate to be scored.
    """
    particle_ids = np.asarray(particle_ids)
    pid_counts = np.bincount(particle_ids[particle_ids > 0]) if np.any(particle_ids > 0) else np.zeros(1, dtype=np.int64)
    reconstructable = set(np.flatnonzero(pid_counts >= min_hits).tolist())
    reconstructable.discard(0)

    matched_particles = set()
    num_matched = 0
    num_fakes = 0
    num_duplicates = 0
    scored = 0
    for cand in candidates:
        cand = np.asarray(cand)
        if cand.size < min_hits:
            continue
        scored += 1
        pids = particle_ids[cand]
        pids = pids[pids > 0]
        if pids.size == 0:
            num_fakes += 1
            continue
        values, counts = np.unique(pids, return_counts=True)
        best = int(values[np.argmax(counts)])
        best_count = int(counts.max())
        # double majority: candidate majority AND particle majority
        if (
            best_count * 2 > cand.size
            and best in reconstructable
            and best_count * 2 > pid_counts[best]
        ):
            if best in matched_particles:
                num_duplicates += 1
            else:
                matched_particles.add(best)
                num_matched += 1
        else:
            num_fakes += 1

    return TrackingScore(
        num_reconstructable=len(reconstructable),
        num_candidates=scored,
        num_matched=num_matched,
        num_fakes=num_fakes,
        num_duplicates=num_duplicates,
    )
