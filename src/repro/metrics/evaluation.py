"""Batch evaluation of a fitted pipeline over event collections.

Consolidates the matching/fitting bookkeeping the analysis scripts need:
aggregate tracking scores, pT-binned efficiency, and helix-fit pT
resolution, from one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .curves import BinnedEfficiency, binned_efficiency
from .track_metrics import TrackingScore, match_tracks

__all__ = ["TrackingEvaluation", "evaluate_tracking"]

DEFAULT_PT_EDGES = (0.5, 1.0, 1.5, 2.5, 4.0, 10.0)


@dataclass
class TrackingEvaluation:
    """Aggregated reconstruction quality over a set of events."""

    per_event: List[TrackingScore]
    pt_efficiency: Optional[BinnedEfficiency]
    pt_residuals: np.ndarray

    @property
    def efficiency(self) -> float:
        """Matched / reconstructable, pooled over events."""
        matched = sum(s.num_matched for s in self.per_event)
        total = sum(s.num_reconstructable for s in self.per_event)
        return matched / total if total else 0.0

    @property
    def fake_rate(self) -> float:
        """Fake candidates / candidates, pooled over events."""
        fakes = sum(s.num_fakes for s in self.per_event)
        cands = sum(s.num_candidates for s in self.per_event)
        return fakes / cands if cands else 0.0

    @property
    def duplicate_rate(self) -> float:
        dups = sum(s.num_duplicates for s in self.per_event)
        cands = sum(s.num_candidates for s in self.per_event)
        return dups / cands if cands else 0.0

    @property
    def pt_resolution(self) -> float:
        """Median |Δpt/pt| of matched, fittable candidates (NaN if none)."""
        if self.pt_residuals.size == 0:
            return float("nan")
        return float(np.median(np.abs(self.pt_residuals)))

    def render(self) -> List[str]:
        lines = [
            f"events: {len(self.per_event)}",
            f"efficiency={self.efficiency:.3f} fake rate={self.fake_rate:.3f} "
            f"duplicates={self.duplicate_rate:.3f}",
        ]
        if self.pt_residuals.size:
            lines.append(f"pT resolution (median |Δpt/pt|): {self.pt_resolution:.3f}")
        if self.pt_efficiency is not None:
            lines.append("efficiency vs truth pT [GeV]:")
            lines.extend("  " + row for row in self.pt_efficiency.render())
        return lines


def evaluate_tracking(
    pipeline,
    events: Sequence,
    pt_edges: Sequence[float] = DEFAULT_PT_EDGES,
    min_hits: int = 3,
) -> TrackingEvaluation:
    """Reconstruct and score every event with a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`repro.pipeline.ExaTrkXPipeline`.
    events:
        Events with truth (`particle_ids`, `particles`).
    pt_edges:
        Bin edges for the efficiency-vs-pT curve (``None`` disables it).
    min_hits:
        Reconstructability / candidate-length cut.
    """
    from ..detector import fit_event_tracks, pt_resolution

    per_event: List[TrackingScore] = []
    truth_pt: List[float] = []
    was_matched: List[bool] = []
    residual_chunks: List[np.ndarray] = []

    for event in events:
        candidates = pipeline.reconstruct(event)
        score = match_tracks(candidates, event.particle_ids, min_hits=min_hits)
        per_event.append(score)

        fits = fit_event_tracks(event, candidates, pipeline.geometry.solenoid_field_tesla)
        residual_chunks.append(pt_resolution(event, candidates, fits))

        counts = np.bincount(event.particle_ids[event.particle_ids > 0]) if np.any(
            event.particle_ids > 0
        ) else np.zeros(1, dtype=np.int64)
        reconstructable = set(np.flatnonzero(counts >= min_hits).tolist()) - {0}
        matched = set()
        for cand in candidates:
            pids = event.particle_ids[np.asarray(cand, dtype=np.int64)]
            pids = pids[pids > 0]
            if pids.size == 0:
                continue
            values, c = np.unique(pids, return_counts=True)
            best = int(values[np.argmax(c)])
            if (
                c.max() * 2 > len(cand)
                and best in reconstructable
                and c.max() * 2 > counts[best]
            ):
                matched.add(best)
        pts = {p.particle_id: p.pt for p in event.particles}
        for pid in reconstructable:
            if pid in pts:
                truth_pt.append(pts[pid])
                was_matched.append(pid in matched)

    pt_eff = None
    if pt_edges is not None and truth_pt:
        pt_eff = binned_efficiency(
            np.asarray(truth_pt), np.asarray(was_matched), edges=list(pt_edges)
        )
    residuals = (
        np.concatenate([r for r in residual_chunks if r.size])
        if any(r.size for r in residual_chunks)
        else np.zeros(0)
    )
    return TrackingEvaluation(
        per_event=per_event, pt_efficiency=pt_eff, pt_residuals=residuals
    )
