"""Edge- and track-level evaluation metrics, plus training history."""

from .edge_metrics import (
    ConfusionCounts,
    confusion,
    f1_score,
    pooled_precision_recall,
    precision_recall,
    precision_recall_curve,
)
from .track_metrics import TrackingScore, match_tracks
from .history import EpochRecord, TrainingHistory
from .curves import BinnedEfficiency, binned_efficiency, roc_auc, roc_curve
from .evaluation import TrackingEvaluation, evaluate_tracking

__all__ = [
    "ConfusionCounts",
    "confusion",
    "precision_recall",
    "f1_score",
    "pooled_precision_recall",
    "precision_recall_curve",
    "TrackingScore",
    "match_tracks",
    "EpochRecord",
    "TrainingHistory",
    "roc_curve",
    "roc_auc",
    "BinnedEfficiency",
    "binned_efficiency",
    "TrackingEvaluation",
    "evaluate_tracking",
]
