"""Neural-network building blocks on the :mod:`repro.tensor` engine.

Provides the Module/Parameter system, Linear/LayerNorm/MLP layers,
optimisers (SGD, Adam), LR schedulers, and the losses used across the
Exa.TrkX pipeline stages.
"""

from .module import Module, Parameter
from .linear import Dropout, Identity, LayerNorm, Linear, ReLU, Sequential, Tanh
from .mlp import MLP
from .gru import GRUCell
from .optim import SGD, Adam, Optimizer
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from .losses import BCEWithLogitsLoss, HingeEmbeddingLoss, MSELoss, get_loss
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Sequential",
    "ReLU",
    "Tanh",
    "Identity",
    "Dropout",
    "MLP",
    "GRUCell",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "BCEWithLogitsLoss",
    "HingeEmbeddingLoss",
    "MSELoss",
    "get_loss",
    "init",
]
