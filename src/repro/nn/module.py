"""Module/parameter system for the reproduction's neural networks.

Mirrors the small subset of ``torch.nn.Module`` semantics the pipeline
relies on: named parameter traversal (for the optimiser and for the DDP
gradient synchronisation), train/eval mode, and state-dict round-trips
(used to checkpoint pipeline stages between training phases).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all networks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; assignment auto-registers them so that
    :meth:`named_parameters` discovers the full tree in deterministic
    (insertion) order.  Deterministic ordering matters for the coalesced
    all-reduce (Section III-D of the paper): every DDP rank must flatten
    parameters in the same order.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for list-style children)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of the module tree."""
        for _, p in self.named_parameters():
            yield p

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # mode and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def astype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place (grads are cleared).

        The pipeline's ``precision`` flag uses this to flip a freshly
        built model into the float64 reference mode (or back); parameter
        identity is preserved, so optimisers must be created *after* the
        cast (their moment buffers adopt the parameter dtype).
        """
        dt = np.dtype(dtype)
        if not np.issubdtype(dt, np.floating):
            raise ValueError(f"astype requires a float dtype, got {dt}")
        for p in self.parameters():
            p.data = p.data.astype(dt, copy=False)
            p.grad = None
        return self

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat copy of all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        Raises
        ------
        KeyError
            If a parameter is missing from ``state``.
        ValueError
            On any shape mismatch.
        """
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            arr = np.asarray(state[name])
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"checkpoint {arr.shape} vs model {p.data.shape}"
                )
            p.data[...] = arr

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_reprs = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_reprs})"
