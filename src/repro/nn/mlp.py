"""Configurable multi-layer perceptron.

Every learned component of the Exa.TrkX pipeline is an MLP: the stage-1
embedding network, the stage-3 edge filter, and the per-layer message /
aggregation networks ``φ`` inside the Interaction GNN (Algorithm 1).  Table
I of the paper records the MLP depth per dataset (3 for CTD, 2 for Ex3);
this class exposes that as ``num_layers``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from .linear import Identity, LayerNorm, Linear, ReLU, Sequential, Tanh
from .module import Module

__all__ = ["MLP"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "none": Identity}


class MLP(Module):
    """``num_layers`` Linear layers with activation and optional LayerNorm.

    Architecture (matching acorn's ``make_mlp``)::

        Linear -> [LayerNorm] -> act -> ... -> Linear [-> LayerNorm -> act]

    Parameters
    ----------
    in_features:
        Input width.
    hidden_features:
        Width of hidden (and, unless ``out_features`` is given, output)
        layers.  The paper uses hidden dimension 64.
    out_features:
        Output width; defaults to ``hidden_features``.
    num_layers:
        Number of Linear layers (≥ 1).
    activation:
        ``"relu"`` (default), ``"tanh"``, or ``"none"``.
    layer_norm:
        Insert LayerNorm after each hidden Linear.
    output_activation:
        Apply norm+activation after the final Linear too (acorn enables
        this for the networks inside the IGNN, but not for scoring heads).
    rng:
        Generator for weight init.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: Optional[int] = None,
        num_layers: int = 2,
        activation: str = "relu",
        layer_norm: bool = True,
        output_activation: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng if rng is not None else np.random.default_rng()
        out_features = hidden_features if out_features is None else out_features
        self.in_features = in_features
        self.out_features = out_features
        act_cls = _ACTIVATIONS[activation]

        layers = []
        width = in_features
        for i in range(num_layers):
            last = i == num_layers - 1
            target = out_features if last else hidden_features
            layers.append(Linear(width, target, rng=rng))
            if (not last) or output_activation:
                if layer_norm:
                    layers.append(LayerNorm(target))
                layers.append(act_cls())
            width = target
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    @property
    def first_linear(self) -> Linear:
        """The first ``Linear`` of the stack (always ``net[0]``).

        The fused graph kernels (:func:`repro.tensor.ops.gather_concat_matmul`,
        :func:`repro.tensor.ops.scatter_mlp_input`) absorb this layer into
        the gather/scatter and then continue via :meth:`forward_tail`.
        """
        return self.net[0]

    def forward_tail(self, x: Tensor) -> Tensor:
        """Apply everything after the first ``Linear`` to a pre-activation."""
        return self.net.forward_from(x, 1)

    def __repr__(self) -> str:
        return f"MLP({self.in_features} -> {self.out_features}, layers={len(self.net)})"
