"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is reproducible from a single
seed, and so that DDP ranks can construct bit-identical initial models.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "uniform_fanin", "zeros"]


def kaiming_uniform(
    shape: tuple, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming uniform init, appropriate for ReLU MLP stacks.

    Bound is ``gain * sqrt(3 / fan_in)`` with ``fan_in`` the first axis.
    """
    fan_in = shape[0]
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init for tanh/sigmoid layers."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_fanin(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """PyTorch Linear default: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(shape[0])
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    """Zero init (biases)."""
    return np.zeros(shape, dtype=np.float32)
