"""Optimisers: SGD (with momentum) and Adam/AdamW.

The acorn GNN stage trains with Adam; SGD is kept for the convergence
baselines and for tests that need a one-step closed-form update.  Both
optimisers operate on the ``(name, Parameter)`` pairs of a Module so that
DDP can synchronise gradients *before* ``step()`` is invoked.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # serialisation — required by the resumable-training checkpoints: the
    # slot arrays are keyed by *parameter index* (the deterministic
    # ``named_parameters`` order every DDP rank shares), never by ``id()``.
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat arrays capturing the full optimiser state."""
        return {"lr": np.asarray(self.lr, dtype=np.float64)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if "lr" in state:
            self.lr = float(np.asarray(state["lr"]))

    def _slots_to_state(
        self, label: str, slots: Dict[int, np.ndarray], out: Dict[str, np.ndarray]
    ) -> None:
        for i, p in enumerate(self.params):
            arr = slots.get(id(p))
            if arr is not None:
                out[f"{label}{i}"] = arr.copy()

    def _slots_from_state(
        self, label: str, state: Dict[str, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        slots: Dict[int, np.ndarray] = {}
        for i, p in enumerate(self.params):
            key = f"{label}{i}"
            if key in state:
                arr = np.asarray(state[key])
                if arr.shape != p.data.shape:
                    raise ValueError(
                        f"optimizer slot {key!r} shape {arr.shape} does not "
                        f"match parameter shape {p.data.shape}"
                    )
                slots[id(p)] = arr.copy()
        return slots


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one SGD update; parameters with no gradient are skipped."""
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + g
                self._velocity[id(p)] = v
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        self._slots_to_state("velocity", self._velocity, state)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._velocity = self._slots_from_state("velocity", state)


class Adam(Optimizer):
    """Adam / AdamW optimiser.

    Parameters
    ----------
    decoupled_weight_decay:
        If True applies AdamW-style decay (decay added to the update, not
        the gradient).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled_weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update; parameters with no gradient are skipped."""
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not self.decoupled:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1.0 - b1) * g
            v = b2 * v + (1.0 - b2) * (g * g)
            self._m[id(p)] = m
            self._v[id(p)] = v
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Adam moments + step count, keyed by parameter index."""
        state = super().state_dict()
        state["t"] = np.asarray(self._t, dtype=np.int64)
        self._slots_to_state("m", self._m, state)
        self._slots_to_state("v", self._v, state)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore moments and step count; resumed updates are bit-equal."""
        super().load_state_dict(state)
        self._t = int(np.asarray(state.get("t", 0)))
        self._m = self._slots_from_state("m", state)
        self._v = self._slots_from_state("v", state)
