"""Dense layers: Linear, LayerNorm, and Sequential containers."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "LayerNorm", "Sequential", "ReLU", "Tanh", "Identity", "Dropout"]


class Linear(Module):
    """Affine map ``x @ W + b`` with ``W`` of shape ``(in, out)``.

    Parameters
    ----------
    in_features, out_features:
        Input / output widths.
    bias:
        Include an additive bias vector.
    rng:
        Generator used for the Kaiming-uniform weight init; a fresh default
        generator is used if omitted (tests always pass one explicitly).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        else:
            object.__setattr__(self, "bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class LayerNorm(Module):
    """Layer normalisation over the feature axis with learned scale/shift."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.weight = Parameter(np.ones(features, dtype=np.float32))
        self.bias = Parameter(np.zeros(features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return ops.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.features})"


class ReLU(Module):
    """Stateless ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    """Stateless tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Identity(Module):
    """Pass-through module (placeholder in configurable stacks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            self.register_module(str(i), layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def forward_from(self, x: Tensor, start: int) -> Tensor:
        """Apply layers ``start``, ``start+1``, ... to ``x``.

        The entry point of the fused IGNN kernels: they compute the first
        ``Linear`` themselves (fused with the gather/scatter) and hand the
        pre-activation to the rest of the stack.
        """
        for layer in self._layers[start:]:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, i: int) -> Module:
        return self._layers[i]
