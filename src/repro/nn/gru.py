"""Gated recurrent unit cell.

acorn's Interaction GNN variants optionally update vertex state with a
GRU instead of a plain MLP: the aggregated messages act as the input and
the previous vertex state as the hidden state, which stabilises deep
message-passing stacks.  Implemented from scratch on the tensor engine::

    r = σ(x W_ir + h W_hr + b_r)        reset gate
    z = σ(x W_iz + h W_hz + b_z)        update gate
    n = tanh(x W_in + r ⊙ (h W_hn) + b_n)  candidate state
    h' = (1 − z) ⊙ n + z ⊙ h
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter

__all__ = ["GRUCell"]


class GRUCell(Module):
    """Single GRU step (batch of vectors, no time dimension).

    Parameters
    ----------
    input_size:
        Width of the input ``x``.
    hidden_size:
        Width of the state ``h``.
    rng:
        Weight-init generator.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # packed as three gates each for input and hidden projections
        self.w_ir = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_iz = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_in = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hr = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.w_hz = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.w_hn = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_r = Parameter(init.zeros((hidden_size,)))
        self.b_z = Parameter(init.zeros((hidden_size,)))
        self.b_n = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU update: ``(batch, in) × (batch, hidden) → (batch, hidden)``."""
        r = ops.sigmoid(
            ops.add(ops.add(ops.matmul(x, self.w_ir), ops.matmul(h, self.w_hr)), self.b_r)
        )
        z = ops.sigmoid(
            ops.add(ops.add(ops.matmul(x, self.w_iz), ops.matmul(h, self.w_hz)), self.b_z)
        )
        n = ops.tanh(
            ops.add(
                ops.add(ops.matmul(x, self.w_in), ops.mul(r, ops.matmul(h, self.w_hn))),
                self.b_n,
            )
        )
        one_minus_z = ops.sub(Tensor(np.float32(1.0)), z)
        return ops.add(ops.mul(one_minus_z, n), ops.mul(z, h))

    def __repr__(self) -> str:
        return f"GRUCell({self.input_size}, {self.hidden_size})"
