"""Loss functions wrapped as callables over Module outputs.

Thin layer over :mod:`repro.tensor.ops`; kept separate so pipeline configs
can name losses by string.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops

__all__ = ["BCEWithLogitsLoss", "HingeEmbeddingLoss", "MSELoss", "get_loss"]


class BCEWithLogitsLoss:
    """Binary cross-entropy on logits with optional positive-class weight.

    The edge-labels in tracking graphs are imbalanced (most candidate edges
    are fakes), so both the filter and GNN stages use ``pos_weight`` to keep
    recall from collapsing.
    """

    def __init__(self, pos_weight: Optional[float] = None, reduction: str = "mean") -> None:
        self.pos_weight = pos_weight
        self.reduction = reduction

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return ops.bce_with_logits(
            logits, targets, pos_weight=self.pos_weight, reduction=self.reduction
        )


class HingeEmbeddingLoss:
    """Metric-learning pair loss for the stage-1 embedding network."""

    def __init__(self, margin: float = 1.0, reduction: str = "mean") -> None:
        self.margin = margin
        self.reduction = reduction

    def __call__(self, dist_sq: Tensor, labels: np.ndarray) -> Tensor:
        return ops.hinge_embedding_loss(
            dist_sq, labels, margin=self.margin, reduction=self.reduction
        )


class MSELoss:
    """Mean-squared error."""

    def __init__(self, reduction: str = "mean") -> None:
        self.reduction = reduction

    def __call__(self, pred: Tensor, target: np.ndarray) -> Tensor:
        return ops.mse_loss(pred, target, reduction=self.reduction)


_LOSSES = {
    "bce": BCEWithLogitsLoss,
    "hinge": HingeEmbeddingLoss,
    "mse": MSELoss,
}


def get_loss(name: str, **kwargs):
    """Instantiate a loss by config name (``"bce"``, ``"hinge"``, ``"mse"``)."""
    try:
        return _LOSSES[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(_LOSSES)}") from None
