"""Command-line interface.

Four subcommands mirror the workflows of the paper's evaluation::

    repro simulate  --dataset ex3_like --train 8 --val 2 --test 2 --out data/
    repro train     --dataset ex3_like --mode bulk --epochs 6 --world-size 2
    repro reconstruct --events 8 --gnn-epochs 6
    repro benchmark --dataset ex3_like

``repro train`` exercises the GNN stage alone (Figures 3/4);
``repro reconstruct`` runs the full five-stage pipeline end to end.

``train`` / ``reconstruct`` / ``benchmark`` accept ``--trace-out`` and
``--metrics-out`` to export run telemetry (Chrome-trace spans + metrics
snapshot; see ``docs/observability.md``), and ``repro telemetry
summarize trace.json`` renders the per-phase time table (Figure 3).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN particle-track reconstruction (IPPS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a dataset and cache it as npz")
    p_sim.add_argument("--dataset", default="ex3_like", help="registry name")
    p_sim.add_argument("--train", type=int, default=8)
    p_sim.add_argument("--val", type=int, default=2)
    p_sim.add_argument("--test", type=int, default=2)
    p_sim.add_argument("--out", default=".repro_data", help="cache directory")

    p_train = sub.add_parser("train", help="train the GNN stage (Fig. 3/4 regimes)")
    p_train.add_argument(
        "--config",
        default=None,
        help="JSON file of GNNTrainConfig fields; explicit flags override it",
    )
    p_train.add_argument("--dataset", default="ex3_like")
    p_train.add_argument("--train-graphs", type=int, default=4)
    p_train.add_argument("--val-graphs", type=int, default=2)
    p_train.add_argument("--mode", choices=("full", "shadow", "bulk"), default="bulk")
    p_train.add_argument("--epochs", type=int, default=6)
    p_train.add_argument("--batch-size", type=int, default=128)
    p_train.add_argument("--hidden", type=int, default=16)
    p_train.add_argument("--layers", type=int, default=2)
    p_train.add_argument("--depth", type=int, default=2)
    p_train.add_argument("--fanout", type=int, default=4)
    p_train.add_argument("--bulk-k", type=int, default=4)
    p_train.add_argument("--world-size", type=int, default=1)
    p_train.add_argument(
        "--allreduce", choices=("coalesced", "per_parameter"), default="coalesced"
    )
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable trainer checkpoint every N epochs",
    )
    p_train.add_argument(
        "--checkpoint-path",
        default="gnn_checkpoint.npz",
        help="where trainer checkpoints are written (atomic + checksummed)",
    )
    p_train.add_argument(
        "--resume",
        default=None,
        metavar="CHECKPOINT",
        help="resume training from a checkpoint written by --checkpoint-every",
    )
    p_train.add_argument(
        "--prefetch-workers",
        type=int,
        default=0,
        metavar="N",
        help="background sampling threads (0 = synchronous); batch "
        "contents are bit-identical at any worker count",
    )
    p_train.add_argument(
        "--prefetch-depth",
        type=int,
        default=2,
        metavar="N",
        help="bound on in-flight prefetched bulk steps",
    )
    _add_telemetry_flags(p_train)

    p_reco = sub.add_parser("reconstruct", help="full pipeline: hits → tracks")
    p_reco.add_argument("--events", type=int, default=8)
    p_reco.add_argument("--particles", type=int, default=25)
    p_reco.add_argument("--gnn-epochs", type=int, default=6)
    p_reco.add_argument("--seed", type=int, default=0)
    p_reco.add_argument(
        "--pipeline",
        default=None,
        metavar="PATH",
        help="load a fitted pipeline from PATH instead of training",
    )
    p_reco.add_argument(
        "--save-pipeline",
        default=None,
        metavar="PATH",
        help="after fitting, save the pipeline to PATH (atomic npz)",
    )
    _add_telemetry_flags(p_reco)

    p_disp = sub.add_parser("display", help="render an event as an SVG file")
    p_disp.add_argument("--particles", type=int, default=20)
    p_disp.add_argument("--seed", type=int, default=0)
    p_disp.add_argument("--tracks", action="store_true", help="overlay truth tracks")
    p_disp.add_argument("--out", default="event.svg")

    p_bench = sub.add_parser("benchmark", help="quick bulk-vs-sequential sampling timing")
    p_bench.add_argument("--dataset", default="ex3_like")
    p_bench.add_argument("--batch-size", type=int, default=128)
    p_bench.add_argument("--depth", type=int, default=3)
    p_bench.add_argument("--fanout", type=int, default=6)
    p_bench.add_argument("--k", type=int, default=8)
    _add_telemetry_flags(p_bench)

    p_tel = sub.add_parser("telemetry", help="inspect exported telemetry files")
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_sum = tel_sub.add_parser(
        "summarize",
        help="per-phase time table from a trace file (the Figure-3 view)",
    )
    p_sum.add_argument("file", help="trace file (Chrome-trace .json or .jsonl)")
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a span trace: Chrome trace_event JSON (.json, for "
        "chrome://tracing / Perfetto) or JSONL (.jsonl)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot (counters/gauges/histograms) as JSON",
    )


# ----------------------------------------------------------------------
def _make_telemetry(args, config=None, seed=None, world_size=None):
    """Build RunTelemetry when ``--trace-out``/``--metrics-out`` ask for it.

    Returns ``None`` otherwise, so untraced runs keep the null-tracer
    no-op fast path.
    """
    if args.trace_out is None and args.metrics_out is None:
        return None
    from .obs import RunTelemetry

    return RunTelemetry.for_run(
        config=config, seed=seed, world_size=world_size, command=args.command
    )


def _flush_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    if args.trace_out:
        telemetry.write_trace(args.trace_out)
        print(
            f"wrote trace to {args.trace_out} "
            f"({len(telemetry.tracer.spans)} spans; open in chrome://tracing "
            "or https://ui.perfetto.dev)"
        )
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")


def _cmd_simulate(args) -> int:
    from .detector import dataset_config, make_dataset, summarize

    cfg = dataset_config(args.dataset).with_sizes(args.train, args.val, args.test)
    dataset = make_dataset(cfg, cache_dir=args.out)
    print(summarize(dataset))
    print(f"cached under {args.out}/")
    return 0


def _cmd_train(args) -> int:
    from .detector import dataset_config, make_dataset
    from .pipeline import CheckpointError, GNNTrainConfig, train_gnn

    cfg = dataset_config(args.dataset).with_sizes(
        args.train_graphs, args.val_graphs, 0
    )
    dataset = make_dataset(cfg)
    fields = dict(
        mode=args.mode,
        epochs=args.epochs,
        batch_size=args.batch_size,
        hidden=args.hidden,
        num_layers=args.layers,
        depth=args.depth,
        fanout=args.fanout,
        bulk_k=args.bulk_k,
        world_size=args.world_size,
        allreduce=args.allreduce,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        resume_from=args.resume,
        prefetch_workers=args.prefetch_workers,
        prefetch_depth=args.prefetch_depth,
    )
    if args.config is not None:
        import json

        with open(args.config) as fh:
            from_file = json.load(fh)
        unknown = set(from_file) - set(GNNTrainConfig.__dataclass_fields__)
        if unknown:
            raise SystemExit(
                f"unknown config keys in {args.config}: {sorted(unknown)}"
            )
        # file values become the base; flags the user typed (≠ parser
        # defaults) keep overriding them
        flag_defaults = {
            "mode": "bulk", "epochs": 6, "batch_size": 128, "hidden": 16,
            "num_layers": 2, "depth": 2, "fanout": 4, "bulk_k": 4,
            "world_size": 1, "allreduce": "coalesced", "seed": 0,
            "checkpoint_every": None, "checkpoint_path": "gnn_checkpoint.npz",
            "resume_from": None, "prefetch_workers": 0, "prefetch_depth": 2,
        }
        for key, value in from_file.items():
            if key not in fields or fields[key] == flag_defaults.get(key):
                fields[key] = value
    train_cfg = GNNTrainConfig(**fields)
    from .obs import use_telemetry

    telemetry = _make_telemetry(
        args, config=train_cfg, seed=args.seed, world_size=args.world_size
    )
    try:
        with use_telemetry(telemetry):
            result = train_gnn(dataset.train, dataset.val, train_cfg)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "The checkpoint cannot be used. Delete it (or fix --resume) and "
            "restart training from scratch.",
            file=sys.stderr,
        )
        return 2
    if result.resumed_epoch is not None:
        print(f"resumed from {args.resume} at epoch {result.resumed_epoch}")
    print(f"{'epoch':>5} | {'loss':>8} | {'precision':>9} | {'recall':>7} | {'time':>6}")
    for r in result.history.records:
        print(
            f"{r.epoch:>5} | {r.train_loss:8.4f} | {r.val_precision:9.3f} | "
            f"{r.val_recall:7.3f} | {r.epoch_seconds:5.1f}s"
        )
    if result.comm_stats is not None:
        print(
            f"all-reduce: {result.comm_stats.num_allreduce_calls} calls, "
            f"modeled {1e3 * result.comm_stats.modeled_seconds:.2f} ms"
        )
    if result.skipped_graphs:
        print(f"skipped {result.skipped_graphs} graph-epochs (memory)")
    if result.checkpoints_written:
        print(
            f"wrote {result.checkpoints_written} checkpoint(s) to "
            f"{args.checkpoint_path}"
        )
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_reconstruct(args) -> int:
    from .detector import DetectorGeometry, EventSimulator, ParticleGun
    from .pipeline import (
        CheckpointError,
        ExaTrkXPipeline,
        GNNTrainConfig,
        PipelineConfig,
        diagnose_event,
        load_pipeline,
        save_pipeline,
    )

    from .obs import use_telemetry

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=args.particles
    )
    events = [
        sim.generate(np.random.default_rng(args.seed + i), event_id=i)
        for i in range(args.events)
    ]
    n_train = max(args.events - 3, 1)
    config = PipelineConfig(
        embedding_dim=6,
        embedding_epochs=20,
        filter_epochs=20,
        frnn_radius=0.3,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=args.gnn_epochs,
            batch_size=64,
            hidden=16,
            num_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )
    telemetry = _make_telemetry(args, config=config, seed=args.seed)
    with use_telemetry(telemetry):
        if args.pipeline is not None:
            try:
                pipe = load_pipeline(args.pipeline, geometry)
            except CheckpointError as exc:
                print(f"error: {exc}", file=sys.stderr)
                print(
                    "The pipeline file is corrupt or incomplete. Re-run "
                    "'repro reconstruct --save-pipeline PATH' (or restore the "
                    "file from a backup) and try again.",
                    file=sys.stderr,
                )
                return 2
            print(f"loaded fitted pipeline from {args.pipeline}")
        else:
            pipe = ExaTrkXPipeline(config, geometry)
            pipe.fit(events[:n_train], events[n_train : n_train + 1])
            if args.save_pipeline is not None:
                save_pipeline(pipe, args.save_pipeline)
                print(f"saved fitted pipeline to {args.save_pipeline}")
        for event in events[n_train + 1 :]:
            print(f"\nevent {event.event_id}")
            for line in diagnose_event(pipe, event).render():
                print("  " + line)
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_benchmark(args) -> int:
    import time

    from .detector import dataset_config, make_dataset
    from .obs import use_telemetry
    from .sampling import BulkShadowSampler, ShadowSampler

    graph = make_dataset(dataset_config(args.dataset).with_sizes(1, 0, 0)).train[0]
    graph.to_csr(symmetric=True)
    rng = np.random.default_rng(0)
    size = min(args.batch_size, graph.num_nodes // 2)
    batches = [
        rng.choice(graph.num_nodes, size=size, replace=False) for _ in range(args.k)
    ]
    seq = ShadowSampler(args.depth, args.fanout)
    bulk = BulkShadowSampler(args.depth, args.fanout)
    telemetry = _make_telemetry(args, seed=0)
    with use_telemetry(telemetry):
        t0 = time.perf_counter()
        for b in batches:
            seq.sample(graph, b, rng)
        t_seq = (time.perf_counter() - t0) / args.k
        t0 = time.perf_counter()
        bulk.sample_bulk(graph, batches, rng)
        t_bulk = (time.perf_counter() - t0) / args.k
    if telemetry is not None:
        telemetry.metrics.gauge("bench.seq_ms_per_batch").set(1e3 * t_seq)
        telemetry.metrics.gauge("bench.bulk_ms_per_batch").set(1e3 * t_bulk)
        telemetry.metrics.gauge("bench.speedup").set(t_seq / t_bulk)
    print(f"graph: {graph.num_nodes} vertices / {graph.num_edges} edges")
    print(f"sequential ShaDow: {1e3 * t_seq:8.2f} ms/batch")
    print(f"bulk ShaDow (k={args.k}): {1e3 * t_bulk:6.2f} ms/batch  ({t_seq / t_bulk:.2f}x)")
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_telemetry(args) -> int:
    from .obs import summarize_trace

    try:
        lines = summarize_trace(args.file)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot summarize {args.file}: {exc}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0


def _cmd_display(args) -> int:
    from .detector import DetectorGeometry, EventSimulator, event_display_svg

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=args.particles)
    event = sim.generate(np.random.default_rng(args.seed))
    candidates = None
    if args.tracks:
        candidates = [
            np.flatnonzero(event.particle_ids == pid)
            for pid in np.unique(event.particle_ids[event.particle_ids > 0])
        ]
    svg = event_display_svg(event, geometry, candidates=candidates)
    with open(args.out, "w") as fh:
        fh.write(svg)
    print(f"wrote {args.out} ({event.num_hits} hits)")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "reconstruct": _cmd_reconstruct,
    "display": _cmd_display,
    "benchmark": _cmd_benchmark,
    "telemetry": _cmd_telemetry,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
