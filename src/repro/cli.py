"""Command-line interface.

Four subcommands mirror the workflows of the paper's evaluation::

    repro simulate  --dataset ex3_like --train 8 --val 2 --test 2 --out data/
    repro train     --dataset ex3_like --mode bulk --epochs 6 --world-size 2
    repro reconstruct --events 8 --gnn-epochs 6
    repro benchmark --dataset ex3_like

``repro train`` exercises the GNN stage alone (Figures 3/4);
``repro reconstruct`` runs the full five-stage pipeline end to end.

``repro serve`` wraps a fitted pipeline in the micro-batching inference
engine (``docs/serving.md``) and ``repro loadgen`` drives it with an
open-loop arrival schedule to measure shedding and degraded serving
under overload.

``repro store ingest`` simulates a dataset straight into an on-disk
event store (memory-mapped CSR shards, ``docs/event_store.md``);
``repro store info`` / ``repro store verify`` inspect and audit one.
``repro train --store DIR`` streams training epochs from a store under
a resident-byte budget (``--store-budget-mb``) instead of holding the
dataset in RAM; ``repro serve --store DIR`` hydrates replayed events
from precomputed construction graphs.

``repro scenarios run`` executes a deterministic hostile-workload chaos
matrix — mutated event feeds co-injected with process/stage/store
faults — and gates on physics-metric floors (``docs/scenarios.md``);
``repro scenarios list`` shows a matrix and the mutator catalog, and
``repro scenarios report`` re-renders a written conformance report.
``repro loadgen --scenario NAME`` applies a scenario's mutators to the
offered load.

``train`` / ``reconstruct`` / ``benchmark`` / ``serve`` / ``loadgen``
accept ``--trace-out`` and ``--metrics-out`` to export run telemetry
(Chrome-trace spans + metrics snapshot; see ``docs/observability.md``);
``train`` / ``serve`` / ``loadgen`` additionally accept
``--metrics-port`` to expose live ``/metrics`` (Prometheus text) and
``/health`` endpoints for the duration of the run.  ``repro telemetry
summarize trace.json`` renders the per-phase time table (Figure 3,
``--per-rank`` for merged multi-process traces), ``repro telemetry
baseline`` records a perf baseline from a trace, and ``repro telemetry
diff`` gates a fresh profile against one (nonzero exit on regression).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _version() -> str:
    """Package version: installed metadata, else the source tree's own."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN particle-track reconstruction (IPPS 2025 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a dataset and cache it as npz")
    p_sim.add_argument("--dataset", default="ex3_like", help="registry name")
    p_sim.add_argument("--train", type=int, default=8)
    p_sim.add_argument("--val", type=int, default=2)
    p_sim.add_argument("--test", type=int, default=2)
    p_sim.add_argument("--out", default=".repro_data", help="cache directory")

    p_train = sub.add_parser("train", help="train the GNN stage (Fig. 3/4 regimes)")
    p_train.add_argument(
        "--config",
        default=None,
        help="JSON file of GNNTrainConfig fields; explicit flags override it",
    )
    p_train.add_argument("--dataset", default="ex3_like")
    p_train.add_argument("--train-graphs", type=int, default=4)
    p_train.add_argument("--val-graphs", type=int, default=2)
    p_train.add_argument("--mode", choices=("full", "shadow", "bulk"), default="bulk")
    p_train.add_argument("--epochs", type=int, default=6)
    p_train.add_argument("--batch-size", type=int, default=128)
    p_train.add_argument("--hidden", type=int, default=16)
    p_train.add_argument("--layers", type=int, default=2)
    p_train.add_argument("--depth", type=int, default=2)
    p_train.add_argument("--fanout", type=int, default=4)
    p_train.add_argument("--bulk-k", type=int, default=4)
    p_train.add_argument("--world-size", type=int, default=1)
    p_train.add_argument(
        "--allreduce", choices=("coalesced", "per_parameter"), default="coalesced"
    )
    p_train.add_argument(
        "--backend", choices=("sim", "proc"), default="sim",
        help="comm backend: in-process simulator (sim) or one real worker "
        "process per rank with crash-tolerant supervision (proc)",
    )
    p_train.add_argument(
        "--comm-retries", type=int, default=3, metavar="N",
        help="retry budget for transient collective faults (default 3)",
    )
    p_train.add_argument(
        "--comm-retry-base-delay", type=float, default=0.05, metavar="S",
        help="first retry backoff delay in seconds (default 0.05)",
    )
    p_train.add_argument(
        "--comm-retry-max-delay", type=float, default=None, metavar="S",
        help="cap on the exponential retry backoff in seconds "
        "(default: uncapped)",
    )
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument(
        "--precision",
        choices=("float32", "float64"),
        default="float32",
        help="training dtype: float32 (paper) or the float64 reference mode",
    )
    p_train.add_argument(
        "--no-fused-kernels",
        action="store_true",
        help="use the unfused gather/concat/matmul reference message path",
    )
    p_train.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable trainer checkpoint every N epochs",
    )
    p_train.add_argument(
        "--checkpoint-path",
        default="gnn_checkpoint.npz",
        help="where trainer checkpoints are written (atomic + checksummed)",
    )
    p_train.add_argument(
        "--resume",
        default=None,
        metavar="CHECKPOINT",
        help="resume training from a checkpoint written by --checkpoint-every",
    )
    p_train.add_argument(
        "--prefetch-workers",
        type=int,
        default=0,
        metavar="N",
        help="background sampling threads (0 = synchronous); batch "
        "contents are bit-identical at any worker count",
    )
    p_train.add_argument(
        "--prefetch-depth",
        type=int,
        default=2,
        metavar="N",
        help="bound on in-flight prefetched bulk steps",
    )
    p_train.add_argument(
        "--validate-inputs",
        action="store_true",
        help="quarantine malformed training graphs instead of crashing",
    )
    p_train.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="stream training graphs from the event store at DIR instead "
        "of holding the dataset in RAM (ingested on first use; "
        "bit-identical losses either way — see docs/event_store.md)",
    )
    p_train.add_argument(
        "--store-budget-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="resident-byte budget for mapped store shards (LRU window)",
    )
    p_train.add_argument(
        "--keep-last",
        type=int,
        default=None,
        metavar="N",
        help="retain the last N checkpoints (history copies enable "
        "fallback resume when the newest one is corrupt)",
    )
    p_train.add_argument(
        "--watchdog",
        action="store_true",
        help="enable the training stability watchdog: on NaN/Inf or a "
        "loss spike, roll back to the last checkpoint with LR backoff",
    )
    p_train.add_argument(
        "--watchdog-window", type=int, default=8, metavar="N",
        help="rolling loss window for spike detection",
    )
    p_train.add_argument(
        "--watchdog-spike-factor", type=float, default=10.0, metavar="X",
        help="divergence when loss exceeds X times the rolling median",
    )
    p_train.add_argument(
        "--watchdog-max-rollbacks", type=int, default=2, metavar="N",
        help="rollback budget before training gives up",
    )
    p_train.add_argument(
        "--watchdog-lr-backoff", type=float, default=0.5, metavar="F",
        help="multiply the learning rate by F on each rollback",
    )
    _add_telemetry_flags(p_train)

    p_reco = sub.add_parser("reconstruct", help="full pipeline: hits → tracks")
    _add_pipeline_flags(p_reco)
    p_reco.add_argument(
        "--save-pipeline",
        default=None,
        metavar="PATH",
        help="after fitting, save the pipeline to PATH (atomic npz)",
    )
    _add_telemetry_flags(p_reco)

    p_serve = sub.add_parser(
        "serve", help="serve reconstruction requests (micro-batching engine)"
    )
    _add_pipeline_flags(p_serve)
    _add_engine_flags(p_serve)
    p_serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        metavar="N",
        help="serve the test events N times (replays exercise the stage cache)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads (0 = synchronous engine)",
    )
    _add_telemetry_flags(p_serve)

    p_load = sub.add_parser(
        "loadgen", help="open-loop load generator against the serving engine"
    )
    _add_pipeline_flags(p_load)
    _add_engine_flags(p_load)
    p_load.add_argument(
        "--rate", type=float, default=100.0, help="offered request rate (req/s)"
    )
    p_load.add_argument("--requests", type=int, default=64, metavar="N")
    p_load.add_argument(
        "--arrival",
        choices=("uniform", "poisson"),
        default="poisson",
        help="arrival process for the open-loop schedule",
    )
    p_load.add_argument(
        "--service-time-ms",
        type=float,
        default=None,
        metavar="MS",
        help="fixed modelled batch service time on the simulated clock "
        "(default: measured wall time — realistic but not bit-reproducible)",
    )
    _add_telemetry_flags(p_load)

    p_load.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="apply a hostile-workload scenario's event mutators to the "
        "load (see `repro scenarios list --matrix full`)",
    )

    p_disp = sub.add_parser("display", help="render an event as an SVG file")
    p_disp.add_argument("--particles", type=int, default=20)
    p_disp.add_argument("--seed", type=int, default=0)
    p_disp.add_argument("--tracks", action="store_true", help="overlay truth tracks")
    p_disp.add_argument("--out", default="event.svg")

    p_bench = sub.add_parser("benchmark", help="quick bulk-vs-sequential sampling timing")
    p_bench.add_argument("--dataset", default="ex3_like")
    p_bench.add_argument("--batch-size", type=int, default=128)
    p_bench.add_argument("--depth", type=int, default=3)
    p_bench.add_argument("--fanout", type=int, default=6)
    p_bench.add_argument("--k", type=int, default=8)
    _add_telemetry_flags(p_bench)

    p_store = sub.add_parser(
        "store", help="out-of-core event store (mmap CSR shards)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sing = store_sub.add_parser(
        "ingest",
        help="simulate a dataset straight into checksummed shards "
        "(raw events validated; invalid ones quarantined, never stored)",
    )
    p_sing.add_argument("--dataset", default="ex3_like", help="registry name")
    p_sing.add_argument("--train", type=int, default=8)
    p_sing.add_argument("--val", type=int, default=2)
    p_sing.add_argument("--test", type=int, default=2)
    p_sing.add_argument("--out", required=True, metavar="DIR", help="store root")
    p_sing.add_argument(
        "--shard-mb",
        type=float,
        default=16.0,
        metavar="MB",
        help="flush a shard once its payload reaches MB",
    )
    p_sing.add_argument(
        "--quarantine-log",
        default=None,
        metavar="PATH",
        help="append quarantined-event records to PATH as JSONL",
    )
    p_sing.add_argument(
        "--no-validate",
        action="store_true",
        help="skip raw-event validation (trusted input only)",
    )
    p_sing.add_argument(
        "--overwrite",
        action="store_true",
        help="replace an existing store at --out",
    )
    _add_telemetry_flags(p_sing)
    p_sinfo = store_sub.add_parser(
        "info", help="manifest summary (checksum-audited open)"
    )
    p_sinfo.add_argument("directory", help="store root")
    p_sver = store_sub.add_parser(
        "verify",
        help="full audit: every shard binary re-hashed against the "
        "manifest (exit 1 on corruption)",
    )
    p_sver.add_argument("directory", help="store root")

    p_tel = sub.add_parser("telemetry", help="inspect exported telemetry files")
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_sum = tel_sub.add_parser(
        "summarize",
        help="per-phase time table from a trace file (the Figure-3 view)",
    )
    p_sum.add_argument("file", help="trace file (Chrome-trace .json or .jsonl)")
    p_sum.add_argument(
        "--per-rank",
        action="store_true",
        help="group phases by (rank, phase) — merged multi-process traces "
        "show each rank's lane separately instead of pooling",
    )
    p_base = tel_sub.add_parser(
        "baseline",
        help="record a perf-regression baseline from a trace file",
    )
    p_base.add_argument("trace", help="trace file (Chrome-trace .json or .jsonl)")
    p_base.add_argument("-o", "--out", required=True, metavar="PATH",
                        help="where to write the baseline JSON")
    p_base.add_argument(
        "--tolerance", type=float, default=None, metavar="RATIO",
        help="default per-phase tolerance ratio (default 3.0: trip when a "
        "phase exceeds 3x its baseline total)",
    )
    p_base.add_argument(
        "--bench", default=None, metavar="NAME",
        help="benchmark name recorded in the baseline metadata",
    )
    p_diff = tel_sub.add_parser(
        "diff",
        help="gate a fresh profile against a baseline: exit 1 when any "
        "phase regresses past its tolerance band",
    )
    p_diff.add_argument(
        "candidate", help="fresh profile: trace file or baseline JSON"
    )
    p_diff.add_argument("baseline", help="baseline JSON (telemetry baseline)")
    p_diff.add_argument(
        "--tolerance", type=float, default=None, metavar="RATIO",
        help="override every phase's tolerance ratio for this comparison",
    )

    p_scen = sub.add_parser(
        "scenarios",
        help="deterministic hostile-workload chaos matrices with "
        "physics-metric floors",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)
    p_slist = scen_sub.add_parser(
        "list", help="scenarios in a matrix, plus the mutator catalog"
    )
    p_slist.add_argument(
        "--matrix", default="smoke", help="matrix name (smoke, full)"
    )
    p_srun = scen_sub.add_parser(
        "run",
        help="run a matrix and write its conformance report "
        "(exit 1 on any floor violation)",
    )
    p_srun.add_argument(
        "--matrix", default="smoke", help="matrix name (smoke, full)"
    )
    p_srun.add_argument(
        "--only",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of scenario names to run",
    )
    p_srun.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="scratch directory for stores/checkpoints/quarantine logs "
        "(default: a temporary directory)",
    )
    p_srun.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON conformance report to PATH",
    )
    _add_telemetry_flags(p_srun)
    p_srep = scen_sub.add_parser(
        "report", help="render a previously written conformance report"
    )
    p_srep.add_argument("file", help="report JSON from `scenarios run -o`")
    return parser


def _add_pipeline_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every subcommand that needs a fitted pipeline."""
    parser.add_argument("--events", type=int, default=8)
    parser.add_argument("--particles", type=int, default=25)
    parser.add_argument("--gnn-epochs", type=int, default=6)
    parser.add_argument("--embedding-epochs", type=int, default=20)
    parser.add_argument("--filter-epochs", type=int, default=20)
    parser.add_argument(
        "--track-builder",
        choices=("cc", "walkthrough"),
        default=None,
        help="track-building algorithm (default: cc when fitting; a loaded "
        "pipeline keeps its own unless overridden)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--pipeline",
        default=None,
        metavar="PATH",
        help="load a fitted pipeline from PATH instead of training",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Serving-engine knobs (``repro serve`` / ``repro loadgen``)."""
    parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="micro-batch flush threshold (events)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="micro-batch deadline: dispatch once the oldest request waited MS",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission bound: requests beyond N queued are shed",
    )
    parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="serve a batch degraded (skip the GNN) when its oldest request "
        "already waited longer than MS at dispatch",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=128,
        metavar="N",
        help="stage-cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--validate-inputs",
        action="store_true",
        help="quarantine malformed events at submit instead of crashing",
    )
    parser.add_argument(
        "--quarantine-log",
        default=None,
        metavar="PATH",
        help="append quarantined-request records to PATH as JSONL",
    )
    parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="fail requests still queued after MS with a typed timeout",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="open the GNN circuit breaker after N consecutive stage "
        "failures (default: breaker disabled)",
    )
    parser.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=1000.0,
        metavar="MS",
        help="open-state cooldown before the half-open probe",
    )
    parser.add_argument(
        "--breaker-probes",
        type=int,
        default=1,
        metavar="N",
        help="successful half-open probes required to close the breaker",
    )
    parser.add_argument(
        "--precision",
        choices=("float32", "float64"),
        default="float32",
        help="cast the pipeline's stage networks to this dtype "
        "(float64 = high-precision reference mode)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="hydrate replayed events from the construction-graph event "
        "store at DIR (ingested from the fitted pipeline on first use; "
        "see docs/event_store.md)",
    )
    parser.add_argument(
        "--store-budget-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="resident-byte budget for mapped store shards (LRU window)",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a span trace: Chrome trace_event JSON (.json, for "
        "chrome://tracing / Perfetto) or JSONL (.jsonl)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot (counters/gauges/histograms) as JSON",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics (Prometheus text) and /health on "
        "127.0.0.1:PORT for the duration of the run (0 = ephemeral port)",
    )


# ----------------------------------------------------------------------
def _make_telemetry(args, config=None, seed=None, world_size=None):
    """Build RunTelemetry when ``--trace-out`` / ``--metrics-out`` /
    ``--metrics-port`` ask for it.

    Returns ``None`` otherwise, so untraced runs keep the null-tracer
    no-op fast path.
    """
    if (
        args.trace_out is None
        and args.metrics_out is None
        and getattr(args, "metrics_port", None) is None
    ):
        return None
    from .obs import RunTelemetry

    return RunTelemetry.for_run(
        config=config, seed=seed, world_size=world_size, command=args.command
    )


def _start_exporter(telemetry, args, health_fn=None):
    """Start the ``/metrics`` + ``/health`` HTTP thread when requested.

    Returns the :class:`~repro.obs.MetricsExporter` (caller closes it in
    a ``finally``) or ``None`` when ``--metrics-port`` was not given.
    """
    port = getattr(args, "metrics_port", None)
    if port is None or telemetry is None:
        return None
    from .obs import MetricsExporter

    exporter = MetricsExporter(
        metrics_fn=lambda: telemetry.metrics_snapshot(),
        health_fn=health_fn,
        port=port,
    )
    print(f"metrics: {exporter.url}/metrics  health: {exporter.url}/health")
    return exporter


def _stop_exporter(exporter) -> None:
    if exporter is not None:
        exporter.close()


def _flush_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    if args.trace_out:
        telemetry.write_trace(args.trace_out)
        print(
            f"wrote trace to {args.trace_out} "
            f"({len(telemetry.tracer.spans)} spans; open in chrome://tracing "
            "or https://ui.perfetto.dev)"
        )
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")


def _cmd_simulate(args) -> int:
    from .detector import dataset_config, make_dataset, summarize

    cfg = dataset_config(args.dataset).with_sizes(args.train, args.val, args.test)
    dataset = make_dataset(cfg, cache_dir=args.out)
    print(summarize(dataset))
    print(f"cached under {args.out}/")
    return 0


def _cmd_train(args) -> int:
    from .detector import dataset_config, make_dataset
    from .guard import TrainingUnstableError
    from .pipeline import CheckpointError, GNNTrainConfig, train_gnn

    cfg = dataset_config(args.dataset).with_sizes(
        args.train_graphs, args.val_graphs, 0
    )
    store = None
    if args.store is not None:
        train_graphs, val_graphs, store = _open_train_store(args, cfg)
    else:
        dataset = make_dataset(cfg)
        train_graphs, val_graphs = dataset.train, dataset.val
    fields = dict(
        mode=args.mode,
        epochs=args.epochs,
        batch_size=args.batch_size,
        hidden=args.hidden,
        num_layers=args.layers,
        depth=args.depth,
        fanout=args.fanout,
        bulk_k=args.bulk_k,
        world_size=args.world_size,
        allreduce=args.allreduce,
        backend=args.backend,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        resume_from=args.resume,
        prefetch_workers=args.prefetch_workers,
        prefetch_depth=args.prefetch_depth,
        validate_inputs=args.validate_inputs,
        keep_last=args.keep_last,
        watchdog=args.watchdog,
        watchdog_window=args.watchdog_window,
        watchdog_spike_factor=args.watchdog_spike_factor,
        watchdog_max_rollbacks=args.watchdog_max_rollbacks,
        watchdog_lr_backoff=args.watchdog_lr_backoff,
        fused_kernels=not args.no_fused_kernels,
        precision=args.precision,
    )
    if args.config is not None:
        import json

        with open(args.config) as fh:
            from_file = json.load(fh)
        unknown = set(from_file) - set(GNNTrainConfig.__dataclass_fields__)
        if unknown:
            raise SystemExit(
                f"unknown config keys in {args.config}: {sorted(unknown)}"
            )
        # file values become the base; flags the user typed (≠ parser
        # defaults) keep overriding them
        flag_defaults = {
            "mode": "bulk", "epochs": 6, "batch_size": 128, "hidden": 16,
            "num_layers": 2, "depth": 2, "fanout": 4, "bulk_k": 4,
            "world_size": 1, "allreduce": "coalesced", "backend": "sim",
            "seed": 0,
            "checkpoint_every": None, "checkpoint_path": "gnn_checkpoint.npz",
            "resume_from": None, "prefetch_workers": 0, "prefetch_depth": 2,
            "validate_inputs": False, "keep_last": None, "watchdog": False,
            "watchdog_window": 8, "watchdog_spike_factor": 10.0,
            "watchdog_max_rollbacks": 2, "watchdog_lr_backoff": 0.5,
            "fused_kernels": True, "precision": "float32",
        }
        for key, value in from_file.items():
            if key not in fields or fields[key] == flag_defaults.get(key):
                fields[key] = value
    train_cfg = GNNTrainConfig(**fields)
    from .faults import RetryPolicy
    from .obs import use_telemetry

    retry_policy = RetryPolicy(
        max_retries=args.comm_retries,
        base_delay=args.comm_retry_base_delay,
        max_delay=args.comm_retry_max_delay,
    )
    telemetry = _make_telemetry(
        args, config=train_cfg, seed=args.seed, world_size=args.world_size
    )
    train_state = {"phase": "training", "ready": True}

    def _train_health():
        """Watchdog/checkpoint-centred health doc for ``repro train``."""
        gauges = telemetry.metrics.to_dict()["gauges"] if telemetry else {}
        return {
            "live": True,
            "ready": train_state["ready"],
            "phase": train_state["phase"],
            "checkpoints_written": gauges.get("train.checkpoints_written", 0.0),
            "watchdog_rollbacks": gauges.get("train.watchdog_rollbacks", 0.0),
        }

    exporter = _start_exporter(telemetry, args, health_fn=_train_health)
    try:
        try:
            with use_telemetry(telemetry):
                result = train_gnn(
                    train_graphs, val_graphs, train_cfg,
                    retry_policy=retry_policy,
                )
        except CheckpointError as exc:
            train_state["phase"] = "failed"
            print(f"error: {exc}", file=sys.stderr)
            print(
                "The checkpoint cannot be used. Delete it (or fix --resume) and "
                "restart training from scratch.",
                file=sys.stderr,
            )
            return 2
        except TrainingUnstableError as exc:
            train_state["phase"] = "failed"
            print(f"error: {exc}", file=sys.stderr)
            print(
                "Training diverged beyond the watchdog's rollback budget. "
                "Lower the learning rate or raise --watchdog-max-rollbacks.",
                file=sys.stderr,
            )
            return 3
        except KeyboardInterrupt:
            # SIGTERM lands here too (_install_sigterm_handler): readiness
            # drops via the finally below, then the exporter drains.
            train_state["phase"] = "interrupted"
            print("\ninterrupted — stopping training", file=sys.stderr)
            if train_cfg.checkpoint_every is not None:
                print(
                    f"resume with: repro train --resume {train_cfg.checkpoint_path}",
                    file=sys.stderr,
                )
            _flush_telemetry(telemetry, args)
            return 130
        train_state["phase"] = "finished"
        if result.resumed_epoch is not None:
            print(f"resumed from {args.resume} at epoch {result.resumed_epoch}")
        if result.resume_fallback_path is not None:
            print(
                "warning: requested checkpoint was corrupt; resumed from "
                f"verified fallback {result.resume_fallback_path}"
            )
        print(f"{'epoch':>5} | {'loss':>8} | {'precision':>9} | {'recall':>7} | {'time':>6}")
        for r in result.history.records:
            print(
                f"{r.epoch:>5} | {r.train_loss:8.4f} | {r.val_precision:9.3f} | "
                f"{r.val_recall:7.3f} | {r.epoch_seconds:5.1f}s"
            )
        if result.comm_stats is not None:
            line = (
                f"all-reduce: {result.comm_stats.num_allreduce_calls} calls, "
                f"modeled {1e3 * result.comm_stats.modeled_seconds:.2f} ms"
            )
            if result.comm_stats.measured_seconds:
                line += (
                    f", measured {1e3 * result.comm_stats.measured_seconds:.2f} ms"
                )
            if result.comm_stats.rank_failures:
                line += f", evicted ranks {result.comm_stats.rank_failures}"
            print(line)
        if result.skipped_graphs:
            print(f"skipped {result.skipped_graphs} graph-epochs (memory)")
        if result.quarantined_graphs:
            print(f"quarantined {result.quarantined_graphs} malformed graph(s)")
        if result.watchdog_rollbacks:
            print(
                f"watchdog: {result.watchdog_rollbacks} rollback(s) with LR "
                "backoff (see docs/resilience.md)"
            )
        if result.checkpoints_written:
            print(
                f"wrote {result.checkpoints_written} checkpoint(s) to "
                f"{args.checkpoint_path}"
            )
        if store is not None:
            s = store.stats
            print(
                f"store: {s.hits} shard-cache hit(s) / {s.misses} miss(es) "
                f"(hit rate {s.hit_rate():.2f}, peak resident "
                f"{s.peak_resident_bytes / (1 << 20):.1f} MB)"
            )
        _flush_telemetry(telemetry, args)
        return 0
    finally:
        train_state["ready"] = False
        _stop_exporter(exporter)
        if store is not None:
            store.close()


def _open_train_store(args, cfg):
    """Open (ingesting on first use) the event store behind ``--store``.

    Returns ``(train_handles, val_handles, store)``; the handles are
    lazy — training maps shards on demand under the LRU budget instead
    of materialising the dataset up front.
    """
    import os

    from .store import EventStore, MANIFEST_NAME, StoreError, ingest_simulated

    if not os.path.exists(os.path.join(args.store, MANIFEST_NAME)):
        report = ingest_simulated(cfg, args.store)
        line = (
            f"ingested {report.ingested}/{report.seen} event(s) into "
            f"{report.shards} shard(s) at {args.store}"
        )
        if report.quarantined:
            line += f" ({report.quarantined} quarantined)"
        print(line)
    try:
        store = EventStore(
            args.store, budget_bytes=int(args.store_budget_mb * (1 << 20))
        )
    except (StoreError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    d = store.describe()
    print(
        f"streaming from store {args.store}: {d['events']} event(s) / "
        f"{d['shards']} shard(s) / {d['bytes'] / (1 << 20):.2f} MB "
        f"(budget {args.store_budget_mb:g} MB)"
    )
    return store.handles("train"), store.handles("val"), store


def _open_serve_store(args, pipe, events):
    """Open (ingesting on first use) the serve-side hydration store.

    A fresh directory is populated with the fitted pipeline's
    construction graphs for ``events``; an existing store is opened
    as-is (it must hold construction graphs — the engine refuses
    builder-graph stores).
    """
    if args.store is None:
        return None
    import os

    from .store import EventStore, MANIFEST_NAME, StoreError, ingest_construction

    if not os.path.exists(os.path.join(args.store, MANIFEST_NAME)):
        report = ingest_construction(pipe, events, args.store)
        print(
            f"ingested {report.ingested} construction graph(s) into "
            f"{report.shards} shard(s) at {args.store}"
        )
    try:
        return EventStore(
            args.store, budget_bytes=int(args.store_budget_mb * (1 << 20))
        )
    except (StoreError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_store(args) -> int:
    if args.store_command == "ingest":
        return _cmd_store_ingest(args)
    if args.store_command == "info":
        return _cmd_store_info(args)
    return _cmd_store_verify(args)


def _cmd_store_ingest(args) -> int:
    from .detector import dataset_config
    from .obs import use_telemetry
    from .store import StoreError, ingest_simulated

    cfg = dataset_config(args.dataset).with_sizes(args.train, args.val, args.test)
    telemetry = _make_telemetry(args, seed=cfg.seed)
    try:
        with use_telemetry(telemetry):
            report = ingest_simulated(
                cfg,
                args.out,
                validate=not args.no_validate,
                quarantine_log=args.quarantine_log,
                max_shard_bytes=int(args.shard_mb * (1 << 20)),
                overwrite=args.overwrite,
            )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"ingested {report.ingested}/{report.seen} event(s) into "
        f"{report.shards} shard(s) ({report.bytes_written / (1 << 20):.2f} MB) "
        f"at {args.out}"
    )
    print("splits: " + ", ".join(f"{k}={v}" for k, v in sorted(report.splits.items())))
    if report.quarantined:
        where = f" (see {args.quarantine_log})" if args.quarantine_log else ""
        print(f"quarantined {report.quarantined} invalid event(s){where}")
    if report.swept_tmp:
        print(f"swept {report.swept_tmp} stale tmp file(s)")
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_store_info(args) -> int:
    from .store import EventStore, StoreError

    try:
        with EventStore(args.directory) as store:
            d = store.describe()
    except (StoreError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"format:  {d['format']}")
    print(f"events:  {d['events']}")
    print(f"shards:  {d['shards']}  ({d['bytes'] / (1 << 20):.2f} MB)")
    print("splits:  " + ", ".join(f"{k}={v}" for k, v in sorted(d["splits"].items())))
    for key, value in sorted(d["meta"].items()):
        print(f"meta.{key}: {value}")
    return 0


def _cmd_store_verify(args) -> int:
    """Exit 0 when every checksum holds, 1 on corruption, 2 on bad input."""
    from .store import EventStore, StoreCorruptError, StoreError

    try:
        with EventStore(args.directory) as store:
            store.verify()
            d = store.describe()
    except StoreCorruptError as exc:
        print(f"CORRUPT: {exc}", file=sys.stderr)
        return 1
    except (StoreError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"store OK: {d['events']} event(s) in {d['shards']} shard(s) verified "
        f"({d['bytes'] / (1 << 20):.2f} MB)"
    )
    return 0


def _simulated_events(args, geometry):
    from .detector import EventSimulator, ParticleGun

    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=args.particles
    )
    return [
        sim.generate(np.random.default_rng(args.seed + i), event_id=i)
        for i in range(args.events)
    ]


def _pipeline_config(args):
    from .pipeline import GNNTrainConfig, PipelineConfig

    return PipelineConfig(
        embedding_dim=6,
        embedding_epochs=args.embedding_epochs,
        filter_epochs=args.filter_epochs,
        frnn_radius=0.3,
        track_builder=args.track_builder or "cc",
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=args.gnn_epochs,
            batch_size=64,
            hidden=16,
            num_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
        ),
    )


def _obtain_pipeline(args, config, geometry, events, n_train):
    """Load a fitted pipeline (``--pipeline``) or fit one on the events.

    Returns the pipeline, or ``None`` after printing an error (the
    caller exits 2).  ``--track-builder`` overrides a loaded pipeline's
    builder — everything up to the GNN is builder-independent, so one
    saved pipeline serves both modes.
    """
    from .pipeline import CheckpointError, ExaTrkXPipeline, load_pipeline

    if args.pipeline is not None:
        try:
            pipe = load_pipeline(args.pipeline, geometry)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                "The pipeline file is corrupt or incomplete. Re-run "
                "'repro reconstruct --save-pipeline PATH' (or restore the "
                "file from a backup) and try again.",
                file=sys.stderr,
            )
            return None
        print(f"loaded fitted pipeline from {args.pipeline}")
        if (
            args.track_builder is not None
            and pipe.config.track_builder != args.track_builder
        ):
            import dataclasses

            pipe.config = dataclasses.replace(
                pipe.config, track_builder=args.track_builder
            )
            print(f"track builder overridden to {args.track_builder}")
        return pipe
    pipe = ExaTrkXPipeline(config, geometry)
    pipe.fit(events[:n_train], events[n_train : n_train + 1])
    return pipe


def _cmd_reconstruct(args) -> int:
    from .detector import DetectorGeometry
    from .obs import use_telemetry
    from .pipeline import diagnose_event, save_pipeline

    geometry = DetectorGeometry.barrel_only()
    events = _simulated_events(args, geometry)
    n_train = max(args.events - 3, 1)
    config = _pipeline_config(args)
    telemetry = _make_telemetry(args, config=config, seed=args.seed)
    with use_telemetry(telemetry):
        pipe = _obtain_pipeline(args, config, geometry, events, n_train)
        if pipe is None:
            return 2
        if args.pipeline is None and args.save_pipeline is not None:
            save_pipeline(pipe, args.save_pipeline)
            print(f"saved fitted pipeline to {args.save_pipeline}")
        for event in events[n_train + 1 :]:
            print(f"\nevent {event.event_id}")
            for line in diagnose_event(pipe, event).render():
                print("  " + line)
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_serve(args) -> int:
    from .detector import DetectorGeometry
    from .obs import use_telemetry
    from .serve import InferenceEngine, ServeConfig

    geometry = DetectorGeometry.barrel_only()
    events = _simulated_events(args, geometry)
    n_train = max(args.events - 3, 1)
    config = _pipeline_config(args)
    serve_cfg = ServeConfig(
        max_batch_events=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue_events=args.max_queue,
        workers=args.workers,
        latency_budget_ms=args.latency_budget_ms,
        cache_capacity=args.cache_capacity,
        validate_inputs=args.validate_inputs,
        quarantine_log=args.quarantine_log,
        request_timeout_ms=args.request_timeout_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        breaker_probes=args.breaker_probes,
        precision=args.precision,
    )
    telemetry = _make_telemetry(args, config=config, seed=args.seed)
    engine_ref = {}
    exporter = _start_exporter(
        telemetry, args, health_fn=lambda: _engine_health(engine_ref)
    )
    try:
        with use_telemetry(telemetry):
            pipe = _obtain_pipeline(args, config, geometry, events, n_train)
            if pipe is None:
                return 2
            test_events = events[n_train + 1 :] or events[-1:]
            stream = [e for _ in range(args.repeat) for e in test_events]
            store = _open_serve_store(args, pipe, test_events)
            # The with-block drains in-flight requests on any exit path
            # (including SIGTERM/ctrl-C), so no request is left hanging.
            with InferenceEngine(pipe, serve_cfg, store=store) as engine:
                engine_ref["engine"] = engine
                requests = engine.process(stream)
            if store is not None:
                store.close()
            done = [r for r in requests if r.status == "done"]
            for r in done:
                flags = "".join(
                    [" cache-hit" if r.cache_hit else "", " DEGRADED" if r.degraded else ""]
                )
                print(
                    f"event {r.event.event_id}: {len(r.tracks)} tracks  "
                    f"({r.latency_ms:.2f} ms{flags})"
                )
            stats = engine.stats
            print(
                f"\nserved {stats.completed}/{stats.submitted} requests in "
                f"{stats.batches} batches  (shed {stats.shed}, degraded "
                f"{stats.degraded}, cache {stats.cache_hits} hit / "
                f"{stats.cache_misses} miss)"
            )
            if stats.store_hydrated:
                print(f"hydrated {stats.store_hydrated} event(s) from the store")
            if stats.quarantined or stats.timed_out or stats.failed:
                print(
                    f"guardrails: quarantined {stats.quarantined}, "
                    f"timed out {stats.timed_out}, failed {stats.failed}, "
                    f"breaker-degraded {stats.breaker_degraded}"
                )
            if done:
                lat = np.array([r.latency_ms for r in done])
                print(
                    f"latency ms: p50={np.percentile(lat, 50):.2f}  "
                    f"p95={np.percentile(lat, 95):.2f}  "
                    f"p99={np.percentile(lat, 99):.2f}"
                )
    except KeyboardInterrupt:
        print("\ninterrupted — engine drained, exiting", file=sys.stderr)
        _flush_telemetry(telemetry, args)
        return 130
    finally:
        _stop_exporter(exporter)
    _flush_telemetry(telemetry, args)
    return 0


def _engine_health(engine_ref) -> dict:
    """``/health`` document for serve/loadgen: not ready until the engine
    exists, then :meth:`InferenceEngine.health` verbatim — readiness
    drops the moment ``close()`` starts draining or the breaker opens."""
    engine = engine_ref.get("engine")
    if engine is None:
        return {"live": True, "ready": False, "phase": "startup"}
    return engine.health()


def _cmd_loadgen(args) -> int:
    from .detector import DetectorGeometry
    from .faults import SimClock
    from .obs import use_telemetry
    from .serve import InferenceEngine, LoadGenConfig, ServeConfig, run_loadgen

    geometry = DetectorGeometry.barrel_only()
    events = _simulated_events(args, geometry)
    n_train = max(args.events - 3, 1)
    if args.scenario:
        from .scenarios import apply_mutators, get_matrix

        try:
            spec = get_matrix("full").get(args.scenario)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        hostile = apply_mutators(events, geometry, spec.mutators, args.seed)
        if spec.mutate_train:
            events = hostile
        else:
            # hostile events hit only the served slice; training stays clean
            events = events[: n_train + 1] + hostile[n_train + 1 :]
        print(
            f"scenario {spec.name!r}: applied "
            f"{', '.join(m.name for m in spec.mutators) or 'no'} mutator(s)"
        )
    config = _pipeline_config(args)
    serve_cfg = ServeConfig(
        max_batch_events=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue_events=args.max_queue,
        workers=0,  # the generator drives a synchronous engine
        latency_budget_ms=args.latency_budget_ms,
        cache_capacity=args.cache_capacity,
        sim_service_time_s=(
            1e-3 * args.service_time_ms if args.service_time_ms is not None else None
        ),
        validate_inputs=args.validate_inputs,
        quarantine_log=args.quarantine_log,
        request_timeout_ms=args.request_timeout_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        breaker_probes=args.breaker_probes,
        precision=args.precision,
    )
    load_cfg = LoadGenConfig(
        rate=args.rate,
        num_requests=args.requests,
        arrival=args.arrival,
        seed=args.seed,
    )
    telemetry = _make_telemetry(args, config=config, seed=args.seed)
    engine_ref = {}
    exporter = _start_exporter(
        telemetry, args, health_fn=lambda: _engine_health(engine_ref)
    )
    engine = None
    try:
        with use_telemetry(telemetry):
            pipe = _obtain_pipeline(args, config, geometry, events, n_train)
            if pipe is None:
                return 2
            test_events = events[n_train + 1 :] or events[-1:]
            store = _open_serve_store(args, pipe, test_events)
            engine = InferenceEngine(pipe, serve_cfg, clock=SimClock(), store=store)
            engine_ref["engine"] = engine
            report = run_loadgen(engine, test_events, load_cfg)
            for line in report.lines():
                print(line)
            if engine.stats.store_hydrated:
                print(
                    f"hydrated {engine.stats.store_hydrated} event(s) "
                    "from the store"
                )
            if store is not None:
                store.close()
    except KeyboardInterrupt:
        if engine is not None:
            engine.close()
        print("\ninterrupted — engine drained, exiting", file=sys.stderr)
        _flush_telemetry(telemetry, args)
        return 130
    finally:
        _stop_exporter(exporter)
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_benchmark(args) -> int:
    import time

    from .detector import dataset_config, make_dataset
    from .obs import use_telemetry
    from .sampling import BulkShadowSampler, ShadowSampler

    graph = make_dataset(dataset_config(args.dataset).with_sizes(1, 0, 0)).train[0]
    graph.to_csr(symmetric=True)
    rng = np.random.default_rng(0)
    size = min(args.batch_size, graph.num_nodes // 2)
    batches = [
        rng.choice(graph.num_nodes, size=size, replace=False) for _ in range(args.k)
    ]
    seq = ShadowSampler(args.depth, args.fanout)
    bulk = BulkShadowSampler(args.depth, args.fanout)
    telemetry = _make_telemetry(args, seed=0)
    with use_telemetry(telemetry):
        t0 = time.perf_counter()
        for b in batches:
            seq.sample(graph, b, rng)
        t_seq = (time.perf_counter() - t0) / args.k
        t0 = time.perf_counter()
        bulk.sample_bulk(graph, batches, rng)
        t_bulk = (time.perf_counter() - t0) / args.k
    if telemetry is not None:
        telemetry.metrics.gauge("bench.seq_ms_per_batch").set(1e3 * t_seq)
        telemetry.metrics.gauge("bench.bulk_ms_per_batch").set(1e3 * t_bulk)
        telemetry.metrics.gauge("bench.speedup").set(t_seq / t_bulk)
    print(f"graph: {graph.num_nodes} vertices / {graph.num_edges} edges")
    print(f"sequential ShaDow: {1e3 * t_seq:8.2f} ms/batch")
    print(f"bulk ShaDow (k={args.k}): {1e3 * t_bulk:6.2f} ms/batch  ({t_seq / t_bulk:.2f}x)")
    _flush_telemetry(telemetry, args)
    return 0


def _cmd_telemetry(args) -> int:
    if args.telemetry_command == "summarize":
        return _cmd_telemetry_summarize(args)
    if args.telemetry_command == "baseline":
        return _cmd_telemetry_baseline(args)
    return _cmd_telemetry_diff(args)


def _cmd_telemetry_summarize(args) -> int:
    from .obs import summarize_trace

    try:
        lines = summarize_trace(args.file, per_rank=args.per_rank)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot summarize {args.file}: {exc}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0


def _cmd_telemetry_baseline(args) -> int:
    from .obs import record_baseline, write_baseline
    from .obs.regression import DEFAULT_TOLERANCE

    metadata = {"trace": args.trace}
    if args.bench:
        metadata["bench"] = args.bench
    try:
        baseline = record_baseline(
            args.trace,
            tolerance=(
                args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
            ),
            metadata=metadata,
        )
        write_baseline(baseline, args.out)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot record baseline: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote baseline {args.out} ({len(baseline['phases'])} phases, "
        f"tolerance {baseline['tolerance']['default']:.1f}x)"
    )
    return 0


def _cmd_telemetry_diff(args) -> int:
    """Exit 0 when within tolerance, 1 on a regression, 2 on bad input."""
    from .obs import diff_profiles, load_baseline, load_phase_totals

    try:
        baseline = load_baseline(args.baseline)
        candidate = load_phase_totals(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report, failures = diff_profiles(
        candidate, baseline, tolerance_override=args.tolerance
    )
    print(f"candidate: {args.candidate}")
    print(f"baseline:  {args.baseline}")
    for line in report:
        print(line)
    if failures:
        print(f"\nPERF REGRESSION ({len(failures)} phase(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nwithin tolerance: no phase regressed past its band")
    return 0


def _cmd_display(args) -> int:
    from .detector import DetectorGeometry, EventSimulator, event_display_svg

    geometry = DetectorGeometry.barrel_only()
    sim = EventSimulator(geometry, particles_per_event=args.particles)
    event = sim.generate(np.random.default_rng(args.seed))
    candidates = None
    if args.tracks:
        candidates = [
            np.flatnonzero(event.particle_ids == pid)
            for pid in np.unique(event.particle_ids[event.particle_ids > 0])
        ]
    svg = event_display_svg(event, geometry, candidates=candidates)
    with open(args.out, "w") as fh:
        fh.write(svg)
    print(f"wrote {args.out} ({event.num_hits} hits)")
    return 0


def _cmd_scenarios(args) -> int:
    import json as _json
    import tempfile

    from .scenarios import (
        build_report,
        get_matrix,
        mutator_catalog,
        render_report,
        run_matrix,
        write_report,
    )

    if args.scenarios_command == "list":
        try:
            matrix = get_matrix(args.matrix)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"matrix {matrix.name!r} ({len(matrix.scenarios)} scenarios):")
        for spec in matrix.scenarios:
            muts = ", ".join(m.name for m in spec.mutators) or "-"
            print(f"  {spec.name:<24} mutators: {muts}")
            if spec.description:
                print(f"      {spec.description}")
        print("\nmutator catalog:")
        for name, doc in sorted(mutator_catalog().items()):
            print(f"  {name:<16} {doc}")
        return 0

    if args.scenarios_command == "run":
        from .obs import use_telemetry

        try:
            matrix = get_matrix(args.matrix)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        names = None
        if args.only:
            names = [n.strip() for n in args.only.split(",") if n.strip()]
            unknown = [n for n in names if n not in matrix.names()]
            if unknown:
                print(
                    f"error: unknown scenario(s) {unknown}; "
                    f"known: {matrix.names()}",
                    file=sys.stderr,
                )
                return 2
        telemetry = _make_telemetry(args)
        scratch = None
        if args.workdir:
            workdir = args.workdir
        else:
            scratch = tempfile.TemporaryDirectory(prefix="repro-scenarios-")
            workdir = scratch.name
        try:
            with use_telemetry(telemetry):
                results = run_matrix(
                    matrix,
                    workdir,
                    names=names,
                    progress=lambda r: print(
                        f"  [{'PASS' if r.passed else 'FAIL'}] {r.spec.name}"
                    ),
                )
        finally:
            if scratch is not None:
                scratch.cleanup()
        doc = build_report(matrix.name, results)
        print(render_report(doc))
        if args.out:
            write_report(doc, args.out)
            print(f"wrote report to {args.out}")
        _flush_telemetry(telemetry, args)
        return 0 if doc["summary"]["failed"] == 0 else 1

    with open(args.file, "r", encoding="utf-8") as fh:
        doc = _json.load(fh)
    if doc.get("format") != "repro.scenarios/v1":
        print(
            f"error: {args.file!r} is not a scenario report "
            f"(format={doc.get('format')!r})",
            file=sys.stderr,
        )
        return 2
    print(render_report(doc))
    return 0 if doc["summary"]["failed"] == 0 else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "train": _cmd_train,
    "reconstruct": _cmd_reconstruct,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "display": _cmd_display,
    "benchmark": _cmd_benchmark,
    "store": _cmd_store,
    "telemetry": _cmd_telemetry,
    "scenarios": _cmd_scenarios,
}


def _raise_keyboard_interrupt(signum, frame):  # pragma: no cover - trivial
    raise KeyboardInterrupt


def _install_sigterm_handler() -> None:
    """Route SIGTERM through the KeyboardInterrupt cleanup paths.

    ``kill <pid>`` then drains the serving engine / reports the last
    checkpoint exactly like ctrl-C, instead of dying mid-batch.  Only
    possible from the main thread; embedded callers keep their handler.
    """
    try:
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:  # not the main thread
        pass


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    _install_sigterm_handler()
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # Backstop for commands without their own cleanup: exit with the
        # conventional 128+SIGINT code and no stack trace.
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
