"""Scenario specifications, physics-metric floors, and built-in matrices.

A :class:`ScenarioSpec` is a complete, declarative description of one
hostile-workload run: the simulated feed, the event mutators layered on
it, the infrastructure chaos co-injected from :mod:`repro.faults`, the
serving configuration, and the :class:`ScenarioFloors` the run must
clear.  A :class:`ScenarioMatrix` is an ordered, named collection of
specs — the unit the runner executes and the CI smoke gate enforces.

Floors are *conformance assertions*, not benchmarks: a floor states the
minimum physics (efficiency/purity from :mod:`repro.metrics`) and the
required resilience behaviour (offenders quarantined, breaker recovers,
corruption detected) that must survive the scenario.  Degraded-mode
scenarios carry deliberately relaxed floors — the point of the GNN-skip
path is bounded, not zero, physics loss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .mutators import MutatorSpec

__all__ = [
    "ScenarioFloors",
    "ScenarioSpec",
    "ScenarioMatrix",
    "smoke_matrix",
    "full_matrix",
    "get_matrix",
    "MATRIX_BUILDERS",
]


@dataclass(frozen=True)
class ScenarioFloors:
    """Per-scenario conformance floors (all must hold for a pass).

    ``min_efficiency`` / ``min_purity`` apply to the pooled
    double-majority score over every *completed* serve request
    (purity = 1 − fake rate).  The behavioural floors assert the
    resilience machinery engaged: quarantine isolated the offenders,
    the breaker opened and recovered, the store surfaced its typed
    corruption error, the watchdog rolled back, a SIGKILLed rank was
    evicted.
    """

    min_efficiency: float = 0.0
    min_purity: float = 0.0
    min_completed: int = 1
    min_quarantined: int = 0
    min_degraded: int = 0
    min_watchdog_rollbacks: int = 0
    min_evicted_ranks: int = 0
    require_breaker_recovery: bool = False
    require_store_corrupt_detected: bool = False

    def to_doc(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative hostile-workload scenario.

    Parameters
    ----------
    name, description:
        Identity (names must be unique within a matrix).
    events, particles, seed:
        Simulation feed: ``events`` base events of mean ``particles``
        multiplicity, seeded per event like the CLI does.
    mutators:
        Ordered :class:`MutatorSpec` list applied to the feed.
    mutate_train:
        Whether mutators apply to the training split too (``False`` =
        hostile events hit only the serve feed — the serve-side
        quarantine scenarios).
    stage_faults:
        Serving-stage chaos: kwargs for
        :class:`repro.faults.StageFault`, co-injected into the engine's
        fault plan (the breaker scenarios).
    train_chaos:
        Optional training-chaos leg: ``{"kind": "sigkill", ...}`` runs a
        proc-backend training with a scheduled
        :class:`~repro.faults.ProcessFault`; ``{"kind": "numeric", ...}``
        schedules a :class:`~repro.faults.NumericFault` against the
        stability watchdog.
    store_chaos:
        Optional store-chaos leg: kwargs for
        :class:`repro.faults.DiskFault`, fired through
        ``EventStore(fault_plan=...)`` against an ingest of the
        scenario's construction graphs.
    serve:
        :class:`repro.serve.ServeConfig` field overrides (breaker
        thresholds, validation, …) merged over the runner's
        deterministic defaults.
    serve_gap_s:
        Simulated seconds between serve submissions (drives breaker
        cooldown expiry deterministically).
    serve_repeats:
        How many passes to make over the serve feed.  More than one
        gives the breaker scenarios enough traffic to open, ride out
        the cooldown, and recover — all on the simulated clock.
    floors:
        The conformance floors for this scenario.
    """

    name: str
    description: str = ""
    events: int = 8
    particles: int = 12
    seed: int = 0
    mutators: Tuple[MutatorSpec, ...] = ()
    mutate_train: bool = True
    stage_faults: Tuple[Mapping, ...] = ()
    train_chaos: Optional[Mapping] = None
    store_chaos: Optional[Mapping] = None
    serve: Mapping = field(default_factory=dict)
    serve_gap_s: float = 0.06
    serve_repeats: int = 1
    floors: ScenarioFloors = field(default_factory=ScenarioFloors)

    def to_doc(self) -> Dict:
        """Deterministic JSON-ready description (report + ``list``)."""
        return {
            "name": self.name,
            "description": self.description,
            "events": self.events,
            "particles": self.particles,
            "seed": self.seed,
            "mutators": [m.to_doc() for m in self.mutators],
            "mutate_train": self.mutate_train,
            "stage_faults": [dict(d) for d in self.stage_faults],
            "train_chaos": dict(self.train_chaos) if self.train_chaos else None,
            "store_chaos": dict(self.store_chaos) if self.store_chaos else None,
            "serve": dict(self.serve),
            "serve_gap_s": self.serve_gap_s,
            "serve_repeats": self.serve_repeats,
            "floors": self.floors.to_doc(),
        }


@dataclass(frozen=True)
class ScenarioMatrix:
    """An ordered, named collection of scenarios."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.scenarios]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate scenario names in matrix: {sorted(dupes)}")

    def get(self, name: str) -> ScenarioSpec:
        for spec in self.scenarios:
            if spec.name == name:
                return spec
        raise KeyError(
            f"no scenario {name!r} in matrix {self.name!r}; "
            f"known: {[s.name for s in self.scenarios]}"
        )

    def names(self) -> List[str]:
        return [s.name for s in self.scenarios]


# ----------------------------------------------------------------------
# built-in matrices
# ----------------------------------------------------------------------
def smoke_matrix() -> ScenarioMatrix:
    """The CI matrix: every resilience mechanism engaged at least once.

    Eight scenarios — clean baseline, four physics-hostile feeds
    (pileup, noise burst, dead layer, misalignment), a quarantine
    isolation case (NaN + duplicate feed), a breaker-recovery case
    (degraded GNN-skip under stage faults), a store-corruption case
    (DiskFault bit-flip), and a SIGKILL training-chaos case — with
    floors calibrated against the runner's fixed small pipeline recipe.
    """
    scenarios = (
        ScenarioSpec(
            name="baseline",
            description="clean feed; the reference floors every hostile "
            "scenario is allowed to degrade from",
            floors=ScenarioFloors(
                min_efficiency=0.45, min_purity=0.45, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="pileup_x2",
            description="2x pileup: every event merged with its neighbour",
            mutators=(MutatorSpec.of("pileup", multiplier=2),),
            floors=ScenarioFloors(
                min_efficiency=0.25, min_purity=0.30, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="noise_burst",
            description="Poisson(25) fake hits per event (noisy DAQ)",
            mutators=(MutatorSpec.of("noise_burst", mean_hits=25.0),),
            floors=ScenarioFloors(
                min_efficiency=0.30, min_purity=0.30, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="dead_layer",
            description="layer 3 dead: every hit on it dropped",
            mutators=(MutatorSpec.of("dead_layers", layers=(3,)),),
            floors=ScenarioFloors(
                min_efficiency=0.25, min_purity=0.30, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="misaligned_layers",
            description="layers 1-2 rigidly shifted by 2 mm (survey error)",
            mutators=(MutatorSpec.of("misalign", layers=(1, 2), shift_mm=2.0),),
            floors=ScenarioFloors(
                min_efficiency=0.25, min_purity=0.30, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="hostile_mix_quarantine",
            description="NaN-poisoned + duplicate-hit serve feed: the "
            "always-on critical precheck quarantines the NaN offenders "
            "while the merely-messy duplicate events are served "
            "(quarantine-isolation proof)",
            mutators=(
                MutatorSpec.of("nan_hits", hits=2, stride=2),
                MutatorSpec.of("duplicate_hits", fraction=0.15, jitter_mm=0.0),
            ),
            mutate_train=False,
            floors=ScenarioFloors(
                min_completed=2, min_quarantined=1, min_efficiency=0.20,
                min_purity=0.25,
            ),
        ),
        ScenarioSpec(
            name="breaker_recovery",
            description="GNN stage faults trip the breaker open; requests "
            "ride the degraded GNN-skip path within its relaxed floor; "
            "the half-open probe closes it again (degraded-mode-recovery "
            "proof)",
            events=10,
            stage_faults=({"stage": "gnn", "at_call": 1, "times": 2},),
            serve={"breaker_threshold": 2, "breaker_cooldown_ms": 100.0},
            serve_gap_s=0.06,
            serve_repeats=4,
            floors=ScenarioFloors(
                min_completed=8, min_degraded=1, require_breaker_recovery=True,
                min_efficiency=0.10, min_purity=0.10,
            ),
        ),
        ScenarioSpec(
            name="store_bitflip",
            description="a DiskFault flips one bit of a store shard before "
            "its map: the typed StoreCorruptError surfaces (never a "
            "garbage batch) and telemetry records it",
            store_chaos={"at_map": 0, "mode": "flip", "byte_offset": 64, "bit": 3},
            floors=ScenarioFloors(
                min_completed=3, require_store_corrupt_detected=True,
                min_efficiency=0.25, min_purity=0.30,
            ),
        ),
        ScenarioSpec(
            name="train_sigkill",
            description="a worker rank is SIGKILLed mid-training on the "
            "proc backend; elastic recovery evicts it and training "
            "completes on the survivors",
            train_chaos={"kind": "sigkill", "world_size": 2, "rank": 1, "at_call": 1},
            floors=ScenarioFloors(
                min_completed=3, min_evicted_ranks=1,
                min_efficiency=0.25, min_purity=0.30,
            ),
        ),
    )
    return ScenarioMatrix(name="smoke", scenarios=scenarios)


def full_matrix() -> ScenarioMatrix:
    """The extended matrix: smoke plus sweeps and the remaining
    degenerate/watchdog cases (not run in CI; ``repro scenarios run
    --matrix full`` for local qualification)."""
    extra = (
        ScenarioSpec(
            name="pileup_x3",
            description="3x pileup sweep point",
            mutators=(MutatorSpec.of("pileup", multiplier=3),),
            floors=ScenarioFloors(
                min_efficiency=0.15, min_purity=0.25, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="merged_hits",
            description="15% of hits re-emitted with 0.4 mm jitter "
            "(merged clusters that pass validation)",
            mutators=(
                MutatorSpec.of("duplicate_hits", fraction=0.15, jitter_mm=0.4),
            ),
            floors=ScenarioFloors(
                min_efficiency=0.20, min_purity=0.20, min_completed=3
            ),
        ),
        ScenarioSpec(
            name="degenerate_graphs",
            description="star blob, all-isolated, and single-giant-track "
            "events appended to the serve feed; the engine must complete "
            "the feed without crashing",
            mutators=(
                MutatorSpec.of("degenerate", kind="star", count=1),
                MutatorSpec.of("degenerate", kind="isolated", count=1),
                MutatorSpec.of("degenerate", kind="giant", count=1),
            ),
            mutate_train=False,
            floors=ScenarioFloors(
                min_completed=5, min_efficiency=0.20, min_purity=0.20
            ),
        ),
        ScenarioSpec(
            name="watchdog_numeric",
            description="a NumericFault NaNs a training step; the "
            "stability watchdog rolls back to the last good checkpoint "
            "and training converges",
            train_chaos={"kind": "numeric", "at_step": 20, "target": "loss"},
            floors=ScenarioFloors(
                min_completed=3, min_watchdog_rollbacks=1,
                min_efficiency=0.25, min_purity=0.30,
            ),
        ),
    )
    smoke = smoke_matrix()
    return ScenarioMatrix(name="full", scenarios=smoke.scenarios + extra)


MATRIX_BUILDERS = {
    "smoke": smoke_matrix,
    "full": full_matrix,
}


def get_matrix(name: str) -> ScenarioMatrix:
    """Look up a built-in matrix by name."""
    try:
        return MATRIX_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; known: {sorted(MATRIX_BUILDERS)}"
        ) from None
