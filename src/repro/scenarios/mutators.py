"""Seeded hostile-workload event mutators.

Each mutator is a deterministic transformation of a list of simulated
:class:`repro.detector.Event` objects — the hostile counterpart of the
clean simulation in :mod:`repro.detector.events`.  Mutators compose: a
scenario applies an ordered list of :class:`MutatorSpec` entries, each
with its own derived RNG stream, so the same (spec list, seed) pair
always produces the byte-identical event feed.

The catalog (see docs/scenarios.md):

``pileup``
    Merge each event with its neighbours in the feed — a pileup
    multiplier sweep without re-simulating (truth particle ids are
    re-offset by :func:`repro.detector.merge_events`).
``noise_burst``
    Append Poisson-distributed fake hits uniform over the detector
    surfaces (a noisy-DAQ burst).
``dead_layers``
    Drop every hit on the named layers (a dead module/layer).
``misalign``
    Rigidly shift the hits of the named layers by a fixed random
    direction scaled to ``shift_mm`` (survey misalignment).
``duplicate_hits``
    Re-emit a fraction of hits, optionally jittered — exact copies
    (``jitter_mm=0``) trip the ``duplicate_hits`` validation rule;
    small jitter models merged/double-read clusters that validation
    lets through.
``nan_hits``
    Poison hit coordinates with NaN in every ``stride``-th event (a
    failed calibration) — these must be quarantined, never served.
``degenerate``
    Append adversarially degenerate events: ``star`` (a dense noise
    blob collapsing to a star-shaped graph), ``isolated`` (hits so far
    apart no edge survives), ``giant`` (one particle crossing every
    layer many times — a single giant track).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..detector import Event, merge_events

__all__ = [
    "MutatorSpec",
    "MUTATOR_BUILDERS",
    "build_mutator",
    "apply_mutators",
    "mutator_catalog",
]

#: A mutator maps (events, geometry, rng) -> new event list.
Mutator = Callable[[List[Event], object, np.random.Generator], List[Event]]


@dataclass(frozen=True)
class MutatorSpec:
    """One named mutation with its parameters (sorted, hence canonical)."""

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params) -> "MutatorSpec":
        if name not in MUTATOR_BUILDERS:
            raise KeyError(
                f"unknown mutator {name!r}; known: {sorted(MUTATOR_BUILDERS)}"
            )
        spec = cls(name=name, params=tuple(sorted(params.items())))
        build_mutator(spec)  # eagerly reject unknown/invalid parameters
        return spec

    def kwargs(self) -> Dict:
        return {k: v for k, v in self.params}

    def to_doc(self) -> Dict:
        return {"name": self.name, "params": dict(self.params)}


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _surfaces(geometry) -> list:
    return list(geometry.barrel) + list(geometry.endcaps)


def _noise_hit(geometry, rng: np.random.Generator) -> Tuple[float, float, float, int]:
    """Uniform fake hit on a random detector surface (mirrors
    :meth:`repro.detector.EventSimulator._noise_hit`)."""
    surfaces = _surfaces(geometry)
    surf = surfaces[int(rng.integers(len(surfaces)))]
    if hasattr(surf, "radius"):  # barrel layer
        phi = rng.uniform(-np.pi, np.pi)
        z = rng.uniform(-surf.half_length, surf.half_length)
        return (
            float(surf.radius * np.cos(phi)),
            float(surf.radius * np.sin(phi)),
            float(z),
            surf.layer_id,
        )
    phi = rng.uniform(-np.pi, np.pi)
    r = np.sqrt(rng.uniform(surf.r_inner**2, surf.r_outer**2))
    return float(r * np.cos(phi)), float(r * np.sin(phi)), float(surf.z), surf.layer_id


def _append_hits(
    event: Event,
    positions: np.ndarray,
    layer_ids: np.ndarray,
    particle_ids: np.ndarray,
    hit_order: np.ndarray,
) -> Event:
    return dataclasses.replace(
        event,
        positions=np.vstack([event.positions, positions.astype(np.float64)]),
        layer_ids=np.concatenate([event.layer_ids, layer_ids.astype(np.int64)]),
        particle_ids=np.concatenate(
            [event.particle_ids, particle_ids.astype(np.int64)]
        ),
        hit_order=np.concatenate([event.hit_order, hit_order.astype(np.int64)]),
    )


def _mask_hits(event: Event, keep: np.ndarray) -> Event:
    return dataclasses.replace(
        event,
        positions=event.positions[keep],
        layer_ids=event.layer_ids[keep],
        particle_ids=event.particle_ids[keep],
        hit_order=event.hit_order[keep],
    )


# ----------------------------------------------------------------------
# mutator builders
# ----------------------------------------------------------------------
def _build_pileup(multiplier: int = 2) -> Mutator:
    """Merge each event with its ``multiplier - 1`` cyclic neighbours."""
    if multiplier < 2:
        raise ValueError("pileup multiplier must be >= 2")

    def mutate(events, geometry, rng):
        n = len(events)
        out = []
        for i, ev in enumerate(events):
            group = [events[(i + j) % n] for j in range(multiplier)]
            out.append(merge_events(group, event_id=ev.event_id))
        return out

    return mutate


def _build_noise_burst(mean_hits: float = 20.0) -> Mutator:
    """Append ``Poisson(mean_hits)`` fake hits per event."""
    if mean_hits <= 0:
        raise ValueError("mean_hits must be > 0")

    def mutate(events, geometry, rng):
        out = []
        for ev in events:
            k = int(rng.poisson(mean_hits))
            if k == 0:
                out.append(ev)
                continue
            hits = [_noise_hit(geometry, rng) for _ in range(k)]
            pos = np.array([(x, y, z) for x, y, z, _ in hits], dtype=np.float64)
            layers = np.array([l for _, _, _, l in hits], dtype=np.int64)
            out.append(
                _append_hits(
                    ev,
                    pos,
                    layers,
                    np.zeros(k, dtype=np.int64),  # pid 0 = noise
                    np.full(k, -1, dtype=np.int64),
                )
            )
        return out

    return mutate


def _build_dead_layers(layers: Sequence[int] = (3,)) -> Mutator:
    """Drop every hit recorded on the named layers."""
    dead = np.array(sorted(int(l) for l in layers), dtype=np.int64)
    if dead.size == 0:
        raise ValueError("dead_layers needs at least one layer")

    def mutate(events, geometry, rng):
        return [_mask_hits(ev, ~np.isin(ev.layer_ids, dead)) for ev in events]

    return mutate


def _build_misalign(layers: Sequence[int] = (1, 2), shift_mm: float = 2.0) -> Mutator:
    """Rigidly shift the named layers by ``shift_mm`` in a random direction.

    One direction is drawn per layer per apply (not per event): a real
    misalignment is a fixed survey error, identical across the feed.
    """
    moved = sorted(int(l) for l in layers)
    if not moved:
        raise ValueError("misalign needs at least one layer")
    if shift_mm <= 0:
        raise ValueError("shift_mm must be > 0")

    def mutate(events, geometry, rng):
        shifts = {}
        for layer in moved:
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            shifts[layer] = shift_mm * direction
        out = []
        for ev in events:
            pos = ev.positions.copy()
            for layer, delta in shifts.items():
                pos[ev.layer_ids == layer] += delta
            out.append(dataclasses.replace(ev, positions=pos))
        return out

    return mutate


def _build_duplicate_hits(fraction: float = 0.1, jitter_mm: float = 0.0) -> Mutator:
    """Re-emit a random fraction of each event's hits as spurious copies.

    The copies carry noise truth labels (particle 0, order −1) — a
    double-read or split cluster yields one extra *untracked* hit, not
    an ambiguous truth segment.  ``jitter_mm=0`` places the copy exactly
    on top of the original; positive jitter produces merged-cluster
    lookalikes a few hundred microns away.  Either way the copies pass
    critical validation and stress the pipeline's tolerance for
    near-coincident hits.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if jitter_mm < 0:
        raise ValueError("jitter_mm must be >= 0")

    def mutate(events, geometry, rng):
        out = []
        for ev in events:
            n = ev.num_hits
            k = max(1, int(round(fraction * n)))
            idx = rng.choice(n, size=min(k, n), replace=False)
            pos = ev.positions[idx].copy()
            if jitter_mm > 0:
                pos += rng.normal(scale=jitter_mm, size=pos.shape)
            m = len(idx)
            out.append(
                _append_hits(
                    ev,
                    pos,
                    ev.layer_ids[idx],
                    np.zeros(m, dtype=np.int64),
                    np.full(m, -1, dtype=np.int64),
                )
            )
        return out

    return mutate


def _build_nan_hits(hits: int = 1, stride: int = 2) -> Mutator:
    """Poison ``hits`` coordinates with NaN in every ``stride``-th event."""
    if hits < 1 or stride < 1:
        raise ValueError("hits and stride must be >= 1")

    def mutate(events, geometry, rng):
        out = []
        for i, ev in enumerate(events):
            if i % stride != 0 or ev.num_hits == 0:
                out.append(ev)
                continue
            pos = ev.positions.copy()
            idx = rng.choice(ev.num_hits, size=min(hits, ev.num_hits), replace=False)
            pos[idx] = np.nan
            out.append(dataclasses.replace(ev, positions=pos))
        return out

    return mutate


def _degenerate_star(geometry, rng: np.random.Generator, event_id: int) -> Event:
    """A dense noise blob: every hit within ~1 mm of one centre point.

    Any radius-based construction connects all of them to all of them —
    the star/clique topology that maximises edge count per hit.
    """
    layer = geometry.barrel[0]
    center = np.array([layer.radius, 0.0, 0.0])
    m = 24
    pos = center + rng.normal(scale=0.5, size=(m, 3))
    pos[0] = center
    return Event(
        positions=pos.astype(np.float64),
        layer_ids=np.full(m, layer.layer_id, dtype=np.int64),
        particle_ids=np.zeros(m, dtype=np.int64),
        hit_order=np.full(m, -1, dtype=np.int64),
        particles=[],
        event_id=event_id,
    )


def _degenerate_isolated(geometry, rng: np.random.Generator, event_id: int) -> Event:
    """One hit per barrel layer, maximally separated in phi and z —
    no two hits close enough to form an edge (all-isolated nodes)."""
    layers = list(geometry.barrel)
    pos, lids = [], []
    for j, layer in enumerate(layers):
        phi = 2.39996 * j  # golden-angle spacing: no accidental pairs
        z = layer.half_length * (-1) ** j * 0.8
        pos.append(
            (layer.radius * np.cos(phi), layer.radius * np.sin(phi), z)
        )
        lids.append(layer.layer_id)
    m = len(pos)
    return Event(
        positions=np.array(pos, dtype=np.float64),
        layer_ids=np.array(lids, dtype=np.int64),
        particle_ids=np.zeros(m, dtype=np.int64),
        hit_order=np.full(m, -1, dtype=np.int64),
        particles=[],
        event_id=event_id,
    )


def _degenerate_giant(geometry, rng: np.random.Generator, event_id: int) -> Event:
    """One particle crossing every barrel layer over several turns — a
    single giant track owning every hit in the event."""
    layers = list(geometry.barrel)
    turns = 4
    pos, lids = [], []
    step = 0
    for t in range(turns):
        for layer in layers:
            phi = 0.35 * step
            z = 0.5 * layer.half_length * np.sin(0.2 * step)
            pos.append(
                (layer.radius * np.cos(phi), layer.radius * np.sin(phi), z)
            )
            lids.append(layer.layer_id)
            step += 1
    m = len(pos)
    return Event(
        positions=np.array(pos, dtype=np.float64),
        layer_ids=np.array(lids, dtype=np.int64),
        particle_ids=np.ones(m, dtype=np.int64),
        hit_order=np.arange(m, dtype=np.int64),
        particles=[],
        event_id=event_id,
    )


_DEGENERATE_BUILDERS = {
    "star": _degenerate_star,
    "isolated": _degenerate_isolated,
    "giant": _degenerate_giant,
}


def _build_degenerate(kind: str = "star", count: int = 1) -> Mutator:
    """Append ``count`` adversarially degenerate events to the feed."""
    if kind not in _DEGENERATE_BUILDERS:
        raise ValueError(
            f"unknown degenerate kind {kind!r}; choose from "
            f"{sorted(_DEGENERATE_BUILDERS)}"
        )
    if count < 1:
        raise ValueError("count must be >= 1")

    def mutate(events, geometry, rng):
        next_id = 1 + max((ev.event_id for ev in events), default=-1)
        builder = _DEGENERATE_BUILDERS[kind]
        extra = [builder(geometry, rng, next_id + i) for i in range(count)]
        return list(events) + extra

    return mutate


MUTATOR_BUILDERS: Dict[str, Callable[..., Mutator]] = {
    "pileup": _build_pileup,
    "noise_burst": _build_noise_burst,
    "dead_layers": _build_dead_layers,
    "misalign": _build_misalign,
    "duplicate_hits": _build_duplicate_hits,
    "nan_hits": _build_nan_hits,
    "degenerate": _build_degenerate,
}


def build_mutator(spec: MutatorSpec) -> Mutator:
    """Instantiate the mutator a spec names (validates its params)."""
    try:
        builder = MUTATOR_BUILDERS[spec.name]
    except KeyError:
        raise KeyError(
            f"unknown mutator {spec.name!r}; known: {sorted(MUTATOR_BUILDERS)}"
        ) from None
    return builder(**spec.kwargs())


def apply_mutators(
    events: Sequence[Event],
    geometry,
    specs: Sequence[MutatorSpec],
    seed: int,
) -> List[Event]:
    """Apply the spec list in order, each with its own derived RNG stream.

    The stream is seeded from ``(seed, position)`` so inserting a
    mutator perturbs only the streams after it — and the same list is
    bit-reproducible run to run.
    """
    out = list(events)
    for k, spec in enumerate(specs):
        rng = np.random.default_rng([seed, k])
        out = build_mutator(spec)(out, geometry, rng)
    return out


def mutator_catalog() -> Dict[str, str]:
    """Mutator name → one-line summary (CLI ``scenarios list``)."""
    return {
        name: (builder.__doc__ or "").strip().splitlines()[0]
        for name, builder in sorted(MUTATOR_BUILDERS.items())
    }
