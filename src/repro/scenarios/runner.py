"""The scenario runner: train → chaos → serve → score, per scenario.

One :func:`run_scenario` call executes a complete hostile-workload
cycle against a *fixed small pipeline recipe* (so floors mean the same
thing run to run):

1. **simulate** — seeded base events, one RNG stream per event (the CLI
   convention), so the clean feed is bit-reproducible;
2. **mutate** — the spec's :class:`~repro.scenarios.MutatorSpec` list,
   each with a derived RNG stream;
3. **fit** — the five-stage pipeline with ``validate_inputs=True``:
   malformed training events are quarantined, never crash the fit.
   Scenarios whose training feed is identical share one fitted pipeline
   through the matrix-level cache;
4. **chaos legs** — optional training chaos (proc-backend SIGKILL via
   :class:`~repro.faults.ProcessFault`, watchdog-triggering
   :class:`~repro.faults.NumericFault`) and store chaos (shard
   corruption via :class:`~repro.faults.DiskFault`, detected as a typed
   :class:`~repro.store.StoreCorruptError`);
5. **serve** — every hostile event through an
   :class:`~repro.serve.InferenceEngine` on a :class:`~repro.faults.
   SimClock` with a fixed simulated service time (fully deterministic),
   co-injecting the spec's serving-stage faults;
6. **score** — pooled double-majority efficiency/purity over the
   completed requests, then the spec's :class:`~repro.scenarios.
   ScenarioFloors` are evaluated into pass/fail checks.

Everything lands in a :class:`ScenarioResult` whose ``to_doc()`` is
deterministic (no wall-clock times, no filesystem paths), which is what
makes two runs of the same matrix byte-identical modulo the report's
``generated_at`` stamp.

Telemetry: ``scenario.run`` / ``scenario.phase.*`` spans and
``scenario.{runs,passed,failed,floor_violations}`` counters via
:mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..detector import (
    DetectorGeometry,
    EventSimulator,
    ParticleGun,
    dataset_config,
    make_dataset,
)
from ..faults import (
    DiskFault,
    FaultPlan,
    NumericFault,
    ProcessFault,
    SimClock,
    StageFault,
)
from ..graph import random_graph
from ..metrics import match_tracks
from ..obs import get_telemetry, get_tracer
from ..pipeline import ExaTrkXPipeline, GNNTrainConfig, PipelineConfig, train_gnn
from ..serve import InferenceEngine, ServeConfig
from ..store import EventStore, StoreCorruptError, ingest_construction
from .mutators import apply_mutators
from .spec import ScenarioFloors, ScenarioMatrix, ScenarioSpec

__all__ = ["ScenarioResult", "run_scenario", "run_matrix"]

#: Truth matching threshold, matching the pipeline default.
_MIN_TRACK_HITS = 3


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, floors already evaluated."""

    spec: ScenarioSpec
    metrics: Dict
    serve: Dict
    quarantine: Dict
    chaos: Dict
    checks: List[Dict]

    @property
    def passed(self) -> bool:
        return all(c["ok"] for c in self.checks)

    @property
    def status(self) -> str:
        return "pass" if self.passed else "fail"

    def to_doc(self) -> Dict:
        """Deterministic JSON payload (no timestamps, no paths)."""
        return {
            "name": self.spec.name,
            "status": self.status,
            "spec": self.spec.to_doc(),
            "metrics": self.metrics,
            "serve": self.serve,
            "quarantine": self.quarantine,
            "chaos": self.chaos,
            "checks": self.checks,
        }


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
def _simulate(spec: ScenarioSpec, geometry) -> List:
    sim = EventSimulator(
        geometry, gun=ParticleGun(), particles_per_event=spec.particles
    )
    return [
        sim.generate(np.random.default_rng(spec.seed + i), event_id=i)
        for i in range(spec.events)
    ]


def _pipeline_config(spec: ScenarioSpec, quarantine_log: str) -> PipelineConfig:
    """The fixed small recipe every scenario trains with.

    Scaled to the CI budget (the floors in :mod:`.spec` are calibrated
    against exactly this recipe — change it and recalibrate them).
    """
    return PipelineConfig(
        embedding_dim=6,
        embedding_hidden=32,
        embedding_epochs=15,
        frnn_radius=0.3,
        filter_hidden=32,
        filter_epochs=15,
        mlp_layers=2,
        gnn=GNNTrainConfig(
            mode="bulk",
            epochs=4,
            batch_size=64,
            hidden=16,
            num_layers=2,
            mlp_layers=2,
            depth=2,
            fanout=4,
            bulk_k=4,
            seed=spec.seed,
        ),
        min_track_hits=_MIN_TRACK_HITS,
        seed=spec.seed,
        validate_inputs=True,
        quarantine_log=quarantine_log,
    )


def _pipeline_key(spec: ScenarioSpec) -> str:
    """Cache key: scenarios with identical training feeds share a fit."""
    doc = {
        "events": spec.events,
        "particles": spec.particles,
        "seed": spec.seed,
        "mutators": [m.to_doc() for m in spec.mutators] if spec.mutate_train else [],
    }
    return json.dumps(doc, sort_keys=True)


def _fit_pipeline(
    spec: ScenarioSpec,
    geometry,
    train_events: List,
    val_events: List,
    workdir: str,
    cache: Optional[Dict],
):
    key = _pipeline_key(spec)
    if cache is not None and key in cache:
        return cache[key]
    qlog = os.path.join(workdir, f"fit_quarantine_{spec.name}.jsonl")
    pipe = ExaTrkXPipeline(_pipeline_config(spec, qlog), geometry)
    pipe.fit(train_events, val_events, rng=np.random.default_rng(spec.seed))
    entry = (pipe, pipe.report.quarantined_events)
    if cache is not None:
        cache[key] = entry
    return entry


def _run_train_chaos(chaos: Dict, workdir: str, seed: int) -> Dict:
    """The training-chaos leg: SIGKILL a proc-backend rank, or NaN a
    step against the watchdog.  Runs on a small synthetic dataset — the
    point is the recovery machinery, not this pipeline's weights."""
    kind = chaos.get("kind")
    if kind == "sigkill":
        world = int(chaos.get("world_size", 2))
        plan = FaultPlan(
            process_faults=[
                ProcessFault(
                    at_call=int(chaos.get("at_call", 1)),
                    rank=int(chaos.get("rank", 1)),
                    kind="sigkill",
                )
            ]
        )
        dataset = make_dataset(dataset_config("ex3_like").with_sizes(2, 1, 0))
        result = train_gnn(
            dataset.train,
            dataset.val,
            GNNTrainConfig(
                mode="bulk", epochs=2, batch_size=32, hidden=8, num_layers=2,
                mlp_layers=2, depth=2, fanout=3, seed=seed, world_size=world,
                allreduce="coalesced", backend="proc",
            ),
            fault_plan=plan,
        )
        evicted = (
            list(result.comm_stats.rank_failures) if result.comm_stats else []
        )
        return {
            "kind": "sigkill",
            "evicted_ranks": evicted,
            "trained_steps": result.trained_steps,
        }
    if kind == "numeric":
        plan = FaultPlan(
            numeric_faults=[
                NumericFault(
                    at_step=int(chaos.get("at_step", 20)),
                    target=str(chaos.get("target", "loss")),
                )
            ]
        )
        rng = np.random.default_rng(7)
        graphs = [random_graph(60, 240, rng=rng, true_fraction=0.3) for _ in range(2)]
        result = train_gnn(
            graphs,
            graphs[:1],
            GNNTrainConfig(
                mode="bulk", epochs=4, batch_size=16, hidden=8, num_layers=2,
                bulk_k=2, seed=3,
                checkpoint_every=1,
                checkpoint_path=os.path.join(workdir, "watchdog.npz"),
                watchdog=True, watchdog_max_rollbacks=2, watchdog_lr_backoff=0.5,
            ),
            fault_plan=plan,
        )
        return {
            "kind": "numeric",
            "watchdog_rollbacks": result.watchdog_rollbacks,
            "trained_steps": result.trained_steps,
        }
    raise ValueError(f"unknown train_chaos kind {kind!r}")


def _run_store_chaos(pipe, events: List, workdir: str, chaos: Dict) -> Dict:
    """The store-chaos leg: ingest this scenario's construction graphs,
    schedule a :class:`DiskFault`, and stream through the store — the
    damage must surface as a typed :class:`StoreCorruptError` (recorded
    by ``store.shard.corrupt`` telemetry), never as a garbage batch."""
    directory = os.path.join(workdir, "store")
    ingest_construction(pipe, events, directory, overwrite=True)
    plan = FaultPlan(disk_faults=[DiskFault(**dict(chaos))])
    detected = False
    error_type = None
    store = EventStore(
        directory, fault_plan=plan, verify_on_map=True, audit=False
    )
    try:
        for handle in store.handles():
            try:
                handle.materialize()
            except StoreCorruptError as exc:
                detected = True
                error_type = type(exc).__name__
                break
    finally:
        store.close()
    return {"kind": "disk", "detected": detected, "error_type": error_type}


def _run_serve(pipe, spec: ScenarioSpec, serve_events: List, workdir: str):
    """Drive every hostile event through the engine on a SimClock."""
    plan = None
    if spec.stage_faults:
        plan = FaultPlan(
            stage_faults=[StageFault(**dict(d)) for d in spec.stage_faults]
        )
    fields = dict(
        workers=0,
        max_batch_events=1,
        max_queue_events=max(64, len(serve_events)),
        cache_capacity=0,
        sim_service_time_s=1e-3,
        quarantine_log=os.path.join(workdir, f"serve_quarantine_{spec.name}.jsonl"),
    )
    fields.update(dict(spec.serve))
    clock = SimClock()
    engine = InferenceEngine(
        pipe, ServeConfig(**fields), clock=clock, fault_plan=plan
    )
    requests = []
    try:
        for event in serve_events:
            requests.append(engine.submit(event))
            engine.flush()
            clock.sleep(spec.serve_gap_s)
    finally:
        engine.close()
    stats = engine.stats
    breaker_doc = None
    if engine.breaker is not None:
        breaker_doc = {
            "state": engine.breaker.state,
            "transitions": dict(engine.breaker.transitions),
        }
    serve_doc = {
        "submitted": stats.submitted,
        "completed": stats.completed,
        "quarantined": stats.quarantined,
        "shed": stats.shed,
        "timed_out": stats.timed_out,
        "failed": stats.failed,
        "degraded": stats.degraded,
        "breaker_degraded": stats.breaker_degraded,
        "breaker": breaker_doc,
    }
    return requests, serve_doc


def _score(requests: List, serve_events: List) -> Dict:
    """Pooled double-majority score over the completed requests.

    Degraded (GNN-skip) results are scored too — bounded physics loss
    under degradation is exactly what the relaxed floors assert.
    """
    totals = {
        "num_reconstructable": 0,
        "num_candidates": 0,
        "num_matched": 0,
        "num_fakes": 0,
        "num_duplicates": 0,
    }
    scored = 0
    for event, request in zip(serve_events, requests):
        if request.status != "done":
            continue
        score = match_tracks(
            request.result(), event.particle_ids, min_hits=_MIN_TRACK_HITS
        )
        for key in totals:
            totals[key] += int(getattr(score, key))
        scored += 1
    efficiency = (
        totals["num_matched"] / totals["num_reconstructable"]
        if totals["num_reconstructable"]
        else 1.0
    )
    purity = (
        1.0 - totals["num_fakes"] / totals["num_candidates"]
        if totals["num_candidates"]
        else 1.0
    )
    return {
        "scored_events": scored,
        "efficiency": round(efficiency, 6),
        "purity": round(purity, 6),
        **totals,
    }


def _evaluate_floors(
    floors: ScenarioFloors, metrics: Dict, serve: Dict, chaos: Dict
) -> List[Dict]:
    checks: List[Dict] = []

    def add(name: str, floor, actual, ok) -> None:
        checks.append({"check": name, "floor": floor, "actual": actual, "ok": bool(ok)})

    eps = 1e-9
    add(
        "efficiency", floors.min_efficiency, metrics["efficiency"],
        metrics["efficiency"] + eps >= floors.min_efficiency,
    )
    add(
        "purity", floors.min_purity, metrics["purity"],
        metrics["purity"] + eps >= floors.min_purity,
    )
    add(
        "completed", floors.min_completed, serve["completed"],
        serve["completed"] >= floors.min_completed,
    )
    if floors.min_quarantined:
        add(
            "quarantined", floors.min_quarantined, serve["quarantined"],
            serve["quarantined"] >= floors.min_quarantined,
        )
    if floors.min_degraded:
        degraded = serve["degraded"] + serve["breaker_degraded"]
        add("degraded", floors.min_degraded, degraded, degraded >= floors.min_degraded)
    if floors.require_breaker_recovery:
        breaker = serve.get("breaker")
        opened = bool(breaker) and breaker["transitions"].get("open", 0) >= 1
        closed = bool(breaker) and breaker["state"] == "closed"
        add(
            "breaker_recovery",
            "open>=1,state=closed",
            breaker if breaker else "no breaker",
            opened and closed,
        )
    if floors.require_store_corrupt_detected:
        store = chaos.get("store") or {}
        add(
            "store_corrupt_detected", True, store.get("detected", False),
            store.get("detected", False),
        )
    if floors.min_watchdog_rollbacks:
        train = chaos.get("train") or {}
        rollbacks = train.get("watchdog_rollbacks", 0)
        add(
            "watchdog_rollbacks", floors.min_watchdog_rollbacks, rollbacks,
            rollbacks >= floors.min_watchdog_rollbacks,
        )
    if floors.min_evicted_ranks:
        train = chaos.get("train") or {}
        evicted = len(train.get("evicted_ranks", []))
        add(
            "evicted_ranks", floors.min_evicted_ranks, evicted,
            evicted >= floors.min_evicted_ranks,
        )
    return checks


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_scenario(
    spec: ScenarioSpec,
    workdir: str,
    pipeline_cache: Optional[Dict] = None,
) -> ScenarioResult:
    """Execute one scenario end to end; never raises on a floor miss
    (the result's checks carry the verdict — chaos that *escapes* its
    guardrail, e.g. an unexpected crash, does propagate)."""
    os.makedirs(workdir, exist_ok=True)
    tracer = get_tracer()
    telemetry = get_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter("scenario.runs").add(1)
    with tracer.span("scenario.run", category="scenario", scenario=spec.name):
        geometry = DetectorGeometry.barrel_only()
        with tracer.span("scenario.phase.simulate", category="scenario"):
            base = _simulate(spec, geometry)
        with tracer.span("scenario.phase.mutate", category="scenario"):
            hostile = apply_mutators(base, geometry, spec.mutators, spec.seed)

        n_train = max(spec.events - 3, 1)
        train_feed = hostile if spec.mutate_train else base
        train_events = train_feed[:n_train]
        val_events = train_feed[n_train : n_train + 1] or train_events[:1]
        serve_events = hostile[n_train:] or list(hostile)

        with tracer.span("scenario.phase.fit", category="scenario"):
            pipe, fit_quarantined = _fit_pipeline(
                spec, geometry, train_events, val_events, workdir, pipeline_cache
            )

        chaos: Dict = {}
        if spec.train_chaos is not None:
            with tracer.span("scenario.phase.train_chaos", category="scenario"):
                chaos["train"] = _run_train_chaos(
                    dict(spec.train_chaos), workdir, spec.seed
                )
        if spec.store_chaos is not None:
            with tracer.span("scenario.phase.store_chaos", category="scenario"):
                chaos["store"] = _run_store_chaos(
                    pipe, serve_events, workdir, dict(spec.store_chaos)
                )

        serve_feed = list(serve_events) * max(1, spec.serve_repeats)
        with tracer.span("scenario.phase.serve", category="scenario"):
            requests, serve_doc = _run_serve(pipe, spec, serve_feed, workdir)

        with tracer.span("scenario.phase.score", category="scenario"):
            metrics = _score(requests, serve_feed)

        checks = _evaluate_floors(spec.floors, metrics, serve_doc, chaos)
        result = ScenarioResult(
            spec=spec,
            metrics=metrics,
            serve=serve_doc,
            quarantine={
                "fit_quarantined": fit_quarantined,
                "serve_quarantined": serve_doc["quarantined"],
            },
            chaos=chaos,
            checks=checks,
        )
    if telemetry is not None:
        telemetry.metrics.counter(
            "scenario.passed" if result.passed else "scenario.failed"
        ).add(1)
        violations = sum(1 for c in checks if not c["ok"])
        if violations:
            telemetry.metrics.counter("scenario.floor_violations").add(violations)
    tracer.event(
        "scenario.result",
        category="scenario",
        scenario=spec.name,
        status=result.status,
        efficiency=metrics["efficiency"],
        purity=metrics["purity"],
    )
    return result


def run_matrix(
    matrix: ScenarioMatrix,
    workdir: str,
    names: Optional[List[str]] = None,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
) -> List[ScenarioResult]:
    """Run a matrix (or the named subset), sharing fitted pipelines
    between scenarios whose training feeds are identical."""
    specs = list(matrix.scenarios)
    if names:
        specs = [matrix.get(name) for name in names]
    cache: Dict = {}
    results = []
    with get_tracer().span(
        "scenario.matrix", category="scenario", matrix=matrix.name,
        scenarios=len(specs),
    ):
        for spec in specs:
            result = run_scenario(spec, workdir, pipeline_cache=cache)
            results.append(result)
            if progress is not None:
                progress(result)
    return results
