"""Conformance reports for hostile-workload scenario runs.

The report document is the deterministic artifact the acceptance gate
compares: everything inside ``build_report``'s return value derives
only from the scenario specs and their seeded execution, so two runs of
the same matrix produce byte-identical JSON.  The single wall-clock
field (``generated_at``) is added by :func:`write_report` at the last
moment, and :func:`strip_volatile` removes it again for comparisons.
"""

from __future__ import annotations

import datetime
import json
from typing import Dict, List, Optional

from .runner import ScenarioResult

__all__ = [
    "REPORT_FORMAT",
    "build_report",
    "write_report",
    "render_report",
    "strip_volatile",
]

REPORT_FORMAT = "repro.scenarios/v1"


def build_report(matrix_name: str, results: List[ScenarioResult]) -> Dict:
    """Assemble the deterministic report document."""
    passed = sum(1 for r in results if r.passed)
    return {
        "format": REPORT_FORMAT,
        "matrix": matrix_name,
        "summary": {
            "total": len(results),
            "passed": passed,
            "failed": len(results) - passed,
        },
        "scenarios": [r.to_doc() for r in results],
    }


def strip_volatile(doc: Dict) -> Dict:
    """Drop the timestamp so two report files can be byte-compared."""
    return {k: v for k, v in doc.items() if k != "generated_at"}


def write_report(doc: Dict, path: str, timestamp: Optional[str] = None) -> None:
    """Serialize with sorted keys; ``generated_at`` is the only field
    that differs between two runs of the same matrix."""
    out = dict(doc)
    out["generated_at"] = timestamp or (
        datetime.datetime.now(datetime.timezone.utc).isoformat()
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(out, fh, sort_keys=True, indent=2)
        fh.write("\n")


def render_report(doc: Dict) -> str:
    """Human-readable summary of a report document."""
    lines = [
        f"scenario matrix: {doc['matrix']}  "
        f"({doc['summary']['passed']}/{doc['summary']['total']} passed)"
    ]
    for scenario in doc["scenarios"]:
        flag = "PASS" if scenario["status"] == "pass" else "FAIL"
        metrics = scenario["metrics"]
        lines.append(
            f"  [{flag}] {scenario['name']}: "
            f"eff={metrics['efficiency']:.3f} pur={metrics['purity']:.3f} "
            f"completed={scenario['serve']['completed']} "
            f"quarantined={scenario['serve']['quarantined']}"
        )
        for check in scenario["checks"]:
            if not check["ok"]:
                lines.append(
                    f"         floor violated: {check['check']} "
                    f"(floor={check['floor']}, actual={check['actual']})"
                )
    return "\n".join(lines)
