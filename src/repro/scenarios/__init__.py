"""Hostile-workload scenario engine.

Deterministic chaos matrices for the tracking pipeline: seeded event
mutators (pileup sweeps, noise bursts, dead layers, misalignment,
duplicate hits, degenerate graphs) composed with the fault injectors in
:mod:`repro.faults` (serving-stage faults, training SIGKILL, numeric
watchdog trips, store shard corruption), scored against physics-metric
floors into a conformance report.

Components
----------
``MutatorSpec`` / ``apply_mutators``
    Declarative, seeded event corruption on top of
    :mod:`repro.detector` simulation.
``ScenarioSpec`` / ``ScenarioFloors`` / ``ScenarioMatrix``
    A named hostile workload, its pass/fail floors, and a suite of
    them (``smoke_matrix`` / ``full_matrix``).
``run_scenario`` / ``run_matrix`` / ``ScenarioResult``
    The train → chaos → serve → score cycle.
``build_report`` / ``write_report`` / ``render_report``
    The deterministic conformance report (byte-identical across runs
    of the same matrix, modulo ``generated_at``).
"""

from .mutators import MUTATOR_BUILDERS, MutatorSpec, apply_mutators, mutator_catalog
from .spec import (
    MATRIX_BUILDERS,
    ScenarioFloors,
    ScenarioMatrix,
    ScenarioSpec,
    full_matrix,
    get_matrix,
    smoke_matrix,
)
from .runner import ScenarioResult, run_matrix, run_scenario
from .report import (
    REPORT_FORMAT,
    build_report,
    render_report,
    strip_volatile,
    write_report,
)

__all__ = [
    "MUTATOR_BUILDERS",
    "MutatorSpec",
    "apply_mutators",
    "mutator_catalog",
    "MATRIX_BUILDERS",
    "ScenarioFloors",
    "ScenarioMatrix",
    "ScenarioSpec",
    "full_matrix",
    "get_matrix",
    "smoke_matrix",
    "ScenarioResult",
    "run_matrix",
    "run_scenario",
    "REPORT_FORMAT",
    "build_report",
    "render_report",
    "strip_volatile",
    "write_report",
]
