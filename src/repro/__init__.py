"""repro — reproduction of "Scaling Graph Neural Networks for Particle
Track Reconstruction" (IPPS 2025).

The package implements, from scratch on NumPy/SciPy:

* :mod:`repro.tensor` — reverse-mode autograd engine (PyTorch substitute);
* :mod:`repro.nn` — Module/MLP/optimiser layer;
* :mod:`repro.graph` — event-graph substrate (COO/CSR, components, FRNN);
* :mod:`repro.detector` — synthetic HEP detector & dataset generator
  (stands in for the gated CTD / Ex3 datasets);
* :mod:`repro.models` — the Interaction GNN (Algorithm 1) and stage MLPs;
* :mod:`repro.sampling` — ShaDow (Algorithm 2) and matrix-based bulk
  sampling (Figure 2), plus node-wise and layer-wise samplers;
* :mod:`repro.distributed` — simulated multi-GPU DDP with ring all-reduce,
  coalesced gradient buffers, and an α–β communication cost model;
* :mod:`repro.memory` — GPU activation-memory model driving full-graph
  skip decisions;
* :mod:`repro.pipeline` — the five Exa.TrkX stages end to end;
* :mod:`repro.metrics` — edge precision/recall and track-level scores;
* :mod:`repro.obs` — run telemetry: hierarchical span tracing, a metrics
  registry, and Chrome-trace/JSONL export (``docs/observability.md``);
* :mod:`repro.data` — asynchronous prefetching batch pipeline that
  overlaps sampler work with training compute (``docs/data_pipeline.md``);
* :mod:`repro.serve` — inference serving engine: dynamic micro-batching,
  keyed stage caching, and load-shedding with a degraded GNN-skip mode
  (``docs/serving.md``);
* :mod:`repro.guard` — end-to-end guardrails: input quarantine, the
  training stability watchdog (rollback + LR backoff), and the serving
  circuit breaker (``docs/resilience.md``);
* :mod:`repro.store` — out-of-core event store: memory-mapped CSR
  shards with checksummed manifests, guarded ingestion, and streaming
  epochs under a resident-byte budget (``docs/event_store.md``).

See ``DESIGN.md`` for the full system inventory and the per-experiment
index mapping each paper table/figure to a benchmark.
"""

__version__ = "1.0.0"

from . import tensor, nn, graph, detector, models, sampling, data, distributed, memory, metrics, obs, perf, guard, pipeline, io, baselines, faults, serve, store  # noqa: E402,F401

__all__ = [
    "__version__",
    "tensor",
    "nn",
    "graph",
    "detector",
    "models",
    "sampling",
    "data",
    "distributed",
    "memory",
    "metrics",
    "obs",
    "perf",
    "guard",
    "pipeline",
    "io",
    "faults",
    "serve",
    "store",
]
