"""Per-phase summaries of exported traces (the Figure-3 view).

``repro telemetry summarize trace.json`` aggregates a trace file —
Chrome ``trace_event`` JSON or the JSONL span log — into a per-phase
time table: total seconds, call count, mean, and share of wall time,
plus the paper's sampling/training split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["SpanRecord", "load_trace", "phase_totals", "summarize_trace"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span as read back from a trace file (seconds)."""

    name: str
    category: str
    start_s: float
    duration_s: float
    depth: int


def _from_chrome(payload: Dict[str, Any]) -> List[SpanRecord]:
    spans = []
    for ev in payload.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        spans.append(
            SpanRecord(
                name=ev["name"],
                category=ev.get("cat", "span"),
                start_s=float(ev["ts"]) / 1e6,
                duration_s=float(ev.get("dur", 0.0)) / 1e6,
                depth=int(args.get("depth", 0)),
            )
        )
    return spans


def _from_jsonl(lines: List[str]) -> List[SpanRecord]:
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("type") != "span":
            continue
        spans.append(
            SpanRecord(
                name=rec["name"],
                category=rec.get("cat", "span"),
                start_s=float(rec["t0"]),
                duration_s=float(rec["dur"]),
                depth=int(rec.get("depth", 0)),
            )
        )
    return spans


def load_trace(path: str) -> List[SpanRecord]:
    """Read spans from a Chrome-trace JSON or JSONL file."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path} is empty")
    # Both formats start with "{": a Chrome trace is ONE JSON object, a
    # JSONL log is one object per line — try whole-file JSON first.
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return _from_jsonl(text.splitlines())
    if isinstance(payload, dict) and payload.get("type") in ("span", "event"):
        return _from_jsonl(text.splitlines())  # single-record JSONL
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: JSON object without 'traceEvents'")
    return _from_chrome(payload)


def phase_totals(spans: List[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: total seconds, count, mean."""
    out: Dict[str, Dict[str, float]] = {}
    for s in spans:
        agg = out.setdefault(s.name, {"total_s": 0.0, "count": 0, "mean_s": 0.0})
        agg["total_s"] += s.duration_s
        agg["count"] += 1
    for agg in out.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    return out


def _wall_seconds(spans: List[SpanRecord]) -> float:
    if not spans:
        return 0.0
    start = min(s.start_s for s in spans)
    end = max(s.start_s + s.duration_s for s in spans)
    return end - start


def summarize_trace(path: str) -> List[str]:
    """Render the per-phase table for a trace file (list of lines)."""
    spans = load_trace(path)
    totals = phase_totals(spans)
    wall = _wall_seconds(spans)
    lines = [
        f"trace: {path}  ({len(spans)} spans, wall {wall:.3f}s)",
        f"{'phase':<24} | {'total':>9} | {'count':>6} | {'mean':>9} | {'% wall':>6}",
    ]
    for name, agg in sorted(totals.items(), key=lambda kv: -kv[1]["total_s"]):
        pct = 100.0 * agg["total_s"] / wall if wall else 0.0
        lines.append(
            f"{name:<24} | {agg['total_s']:8.3f}s | {agg['count']:>6d} | "
            f"{1e3 * agg['mean_s']:7.2f}ms | {pct:5.1f}%"
        )
    # the Figure-3 split: sampling vs training share of the epoch time
    sampling = totals.get("sampling", {}).get("total_s", 0.0)
    training = totals.get("training", {}).get("total_s", 0.0)
    if sampling or training:
        busy = sampling + training
        lines.append(
            f"Figure-3 split: sampling {sampling:.3f}s "
            f"({100.0 * sampling / busy:.1f}%)  /  training {training:.3f}s "
            f"({100.0 * training / busy:.1f}%)"
        )
    return lines
