"""Per-phase summaries of exported traces (the Figure-3 view).

``repro telemetry summarize trace.json`` aggregates a trace file —
Chrome ``trace_event`` JSON or the JSONL span log — into a per-phase
time table: total seconds, call count, mean, and share of wall time,
plus the paper's sampling/training split.

Merged multi-process traces (the ``proc`` backend ships one lane per
worker rank) need two refinements over the single-timeline view:

* wall time is the length of the *union* of busy intervals across all
  lanes — overlapping per-rank spans must not double-count, and one
  lane's idle gap is not wall time if another lane was busy through it;
* ``--per-rank`` groups phases by ``(rank, phase)`` so a straggling
  rank's barrier waits stand out instead of averaging away.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanRecord", "load_trace", "phase_totals", "summarize_trace"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span as read back from a trace file (seconds).

    ``pid`` is the Chrome-trace process lane (0 = driver) and ``rank``
    the comm rank for worker-lane spans (``None`` for driver spans).
    """

    name: str
    category: str
    start_s: float
    duration_s: float
    depth: int
    pid: int = 0
    rank: Optional[int] = None


def _from_chrome(payload: Dict[str, Any]) -> List[SpanRecord]:
    spans = []
    for ev in payload.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        rank = args.get("rank")
        spans.append(
            SpanRecord(
                name=ev["name"],
                category=ev.get("cat", "span"),
                start_s=float(ev["ts"]) / 1e6,
                duration_s=float(ev.get("dur", 0.0)) / 1e6,
                depth=int(args.get("depth", 0)),
                pid=int(ev.get("pid", 0)),
                rank=int(rank) if rank is not None else None,
            )
        )
    return spans


def _from_jsonl(lines: List[str]) -> List[SpanRecord]:
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("type") != "span":
            continue
        rank = rec.get("rank")
        spans.append(
            SpanRecord(
                name=rec["name"],
                category=rec.get("cat", "span"),
                start_s=float(rec["t0"]),
                duration_s=float(rec["dur"]),
                depth=int(rec.get("depth", 0)),
                pid=int(rec.get("pid", 0)),
                rank=int(rank) if rank is not None else None,
            )
        )
    return spans


def load_trace(path: str) -> List[SpanRecord]:
    """Read spans from a Chrome-trace JSON or JSONL file."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path} is empty")
    # Both formats start with "{": a Chrome trace is ONE JSON object, a
    # JSONL log is one object per line — try whole-file JSON first.
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return _from_jsonl(text.splitlines())
    if isinstance(payload, dict) and payload.get("type") in ("span", "event"):
        return _from_jsonl(text.splitlines())  # single-record JSONL
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: JSON object without 'traceEvents'")
    return _from_chrome(payload)


def _lane_label(span: SpanRecord) -> str:
    if span.rank is not None:
        return f"r{span.rank}"
    return "driver" if span.pid == 0 else f"p{span.pid}"


def phase_totals(
    spans: List[SpanRecord], per_rank: bool = False
) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: total seconds, count, mean.

    With ``per_rank=True`` the grouping key becomes ``(lane, phase)``
    rendered as ``"r2/comm.worker.barrier_wait"`` (driver-lane spans
    under ``"driver/..."``), so per-rank imbalance is visible instead of
    pooled across lanes.
    """
    out: Dict[str, Dict[str, float]] = {}
    for s in spans:
        key = f"{_lane_label(s)}/{s.name}" if per_rank else s.name
        agg = out.setdefault(key, {"total_s": 0.0, "count": 0, "mean_s": 0.0})
        agg["total_s"] += s.duration_s
        agg["count"] += 1
    for agg in out.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    return out


def _union_seconds(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def _wall_seconds(spans: List[SpanRecord]) -> float:
    """Busy wall-clock: the union of every lane's span intervals.

    A merged multi-process trace holds one overlapping timeline per
    rank; ``max(end) - min(start)`` would count cross-lane idle skew as
    wall time, while summing per-lane extents would double-count
    overlap.  The union of busy intervals is both lane-count-invariant
    for identical timelines and correct for staggered ones.
    """
    return _union_seconds(
        [(s.start_s, s.start_s + s.duration_s) for s in spans]
    )


def summarize_trace(path: str, per_rank: bool = False) -> List[str]:
    """Render the per-phase table for a trace file (list of lines)."""
    spans = load_trace(path)
    totals = phase_totals(spans, per_rank=per_rank)
    wall = _wall_seconds(spans)
    lanes = sorted({_lane_label(s) for s in spans})
    lane_note = f", {len(lanes)} lanes" if len(lanes) > 1 else ""
    lines = [
        f"trace: {path}  ({len(spans)} spans{lane_note}, wall {wall:.3f}s)",
        f"{'phase':<24} | {'total':>9} | {'count':>6} | {'mean':>9} | {'% wall':>6}",
    ]
    for name, agg in sorted(totals.items(), key=lambda kv: -kv[1]["total_s"]):
        pct = 100.0 * agg["total_s"] / wall if wall else 0.0
        lines.append(
            f"{name:<24} | {agg['total_s']:8.3f}s | {agg['count']:>6d} | "
            f"{1e3 * agg['mean_s']:7.2f}ms | {pct:5.1f}%"
        )
    # the Figure-3 split: sampling vs training share of the epoch time
    flat = phase_totals(spans) if per_rank else totals
    sampling = flat.get("sampling", {}).get("total_s", 0.0)
    training = flat.get("training", {}).get("total_s", 0.0)
    if sampling or training:
        busy = sampling + training
        lines.append(
            f"Figure-3 split: sampling {sampling:.3f}s "
            f"({100.0 * sampling / busy:.1f}%)  /  training {training:.3f}s "
            f"({100.0 * training / busy:.1f}%)"
        )
    return lines
