"""Run-level metrics: counters, gauges, and streaming histograms.

Spans answer *where did the time go*; metrics answer *how much of
everything happened* — all-reduce calls, bytes moved, retries, sampled
subgraph sizes.  A :class:`MetricsRegistry` collects named instruments
and snapshots them to one JSON-serialisable dict.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (calls, bytes, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount


class Gauge:
    """Last-write-wins level (world size, best F1, modeled seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution with quantile readout.

    Observations are kept in a bounded reservoir: once ``max_samples``
    is reached every *second* sample is dropped and the stride doubles,
    so long runs keep an unbiased-enough sketch at fixed memory while
    ``count``/``sum``/``min``/``max`` stay exact.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples", "_stride", "_seen", "max_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._stride = 1
        self._seen = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self._seen % self._stride == 0:
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._samples.append(value)
        self._seen += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the reservoir (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first touch.

    A name is bound to one instrument kind; asking for the same name as
    a different kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: Dict[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not kind and name in table:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_unique(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_unique(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        if name not in self._histograms:
            self._check_unique(name, self._histograms)
            self._histograms[name] = Histogram(name, max_samples=max_samples)
        return self._histograms[name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
