"""Run-level metrics: counters, gauges, and streaming histograms.

Spans answer *where did the time go*; metrics answer *how much of
everything happened* — all-reduce calls, bytes moved, retries, sampled
subgraph sizes.  A :class:`MetricsRegistry` collects named instruments
and snapshots them to one JSON-serialisable dict.

Thread safety
-------------
Instruments are updated from many threads at once: the threaded serving
engine's worker pool, the prefetch loader's sampler threads, and each
``proc``-backend worker's heartbeat thread all write concurrently with
the exporter thread reading (:mod:`repro.obs.exporter`).  Every
read-modify-write therefore runs under a per-instrument lock, and the
registry's creation maps under a registry lock — ``Counter.add`` from
``N`` threads never loses an increment (enforced by
``tests/obs/test_metrics.py::TestConcurrency``).

Cross-process merging
---------------------
The multi-process comm backend ships each worker rank's registry to the
driver over its command pipe (:mod:`repro.distributed.proc_backend`).
:meth:`Histogram.state` / :meth:`MetricsRegistry.drain_state` produce a
picklable snapshot (raw reservoir samples, not just quantiles) and
:meth:`MetricsRegistry.merge_state` folds it into the driver registry:
counters and histograms merge under the same name (cross-rank
distribution), gauges land under a per-rank suffix.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (calls, bytes, retries)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with self._lock:
            self.value += amount

    def drain(self) -> float:
        """Atomically read and reset (cross-process delta shipping)."""
        with self._lock:
            value, self.value = self.value, 0.0
        return value


class Gauge:
    """Last-write-wins level (world size, best F1, modeled seconds)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming distribution with quantile readout.

    Observations are kept in a bounded reservoir: once ``max_samples``
    is reached every *second* sample is dropped and the stride doubles,
    so long runs keep an unbiased-enough sketch at fixed memory while
    ``count``/``sum``/``min``/``max`` stay exact.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples", "_stride",
                 "_seen", "max_samples", "_lock")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._stride = 1
        self._seen = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if self._seen % self._stride == 0:
                self._shrink_reservoir()
                self._samples.append(value)
            self._seen += 1

    def _shrink_reservoir(self) -> None:
        # caller holds the lock
        while len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the reservoir (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            count, total = self.count, self.sum
            lo, hi = self.min, self.max
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- cross-process state -------------------------------------------
    def state(self, reset: bool = False) -> Dict[str, Any]:
        """Picklable exact state (counts + reservoir, not just quantiles).

        With ``reset=True`` the instrument is atomically zeroed after the
        snapshot, so periodic shipping sends non-overlapping deltas.
        """
        with self._lock:
            state = {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "samples": list(self._samples),
            }
            if reset:
                self.count = 0
                self.sum = 0.0
                self.min = math.inf
                self.max = -math.inf
                self._samples = []
                self._stride = 1
                self._seen = 0
        return state

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        ``count``/``sum``/``min``/``max`` merge exactly; reservoirs
        concatenate and re-thin to ``max_samples``.
        """
        if not state.get("count"):
            return
        with self._lock:
            self.count += int(state["count"])
            self.sum += float(state["sum"])
            if state.get("min") is not None:
                self.min = min(self.min, float(state["min"]))
            if state.get("max") is not None:
                self.max = max(self.max, float(state["max"]))
            for value in state.get("samples", ()):
                self._shrink_reservoir()
                self._samples.append(float(value))
                self._seen += 1


class MetricsRegistry:
    """Named instruments, created on first touch.

    A name is bound to one instrument kind; asking for the same name as
    a different kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: Dict[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not kind and name in table:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._check_unique(name, self._counters)
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._check_unique(name, self._gauges)
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._check_unique(name, self._histograms)
                self._histograms[name] = Histogram(name, max_samples=max_samples)
            return self._histograms[name]

    def _tables(self):
        with self._lock:
            return (
                sorted(self._counters.items()),
                sorted(self._gauges.items()),
                sorted(self._histograms.items()),
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of every instrument."""
        counters, gauges, histograms = self._tables()
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.summary() for n, h in histograms},
        }

    # -- cross-process shipping ----------------------------------------
    def drain_state(self) -> Dict[str, Any]:
        """Picklable delta snapshot: counters and histograms are read
        *and reset* atomically per instrument (no lost updates under
        concurrent writers), gauges are read in place (last-write-wins
        levels re-ship their current value every time)."""
        counters, gauges, histograms = self._tables()
        return {
            "counters": {n: c.drain() for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.state(reset=True) for n, h in histograms},
        }

    def merge_state(
        self, state: Dict[str, Any], gauge_suffix: Optional[str] = None
    ) -> None:
        """Fold a :meth:`drain_state` payload from another registry in.

        Counters add under the same name and histograms merge into the
        same cross-source distribution; gauges (which cannot meaningfully
        average) are stored under ``name + gauge_suffix`` so per-rank
        levels stay distinguishable.
        """
        for name, value in state.get("counters", {}).items():
            if value:
                self.counter(name).add(value)
        suffix = gauge_suffix or ""
        for name, value in state.get("gauges", {}).items():
            self.gauge(name + suffix).set(value)
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state(hist_state)
