"""Hierarchical span tracing.

The paper's headline results are timing decompositions (Figure 3 splits
epoch time into sampling vs. training; the coalesced all-reduce argument
is a latency-accounting claim), so the runtime needs a structured record
of *where time goes* rather than ad-hoc prints.  A :class:`Tracer`
produces nested spans — ``epoch → batch → {sampling, forward, backward,
allreduce}`` in the trainers — recorded to an in-memory buffer and
exportable as JSONL event logs or Chrome ``trace_event`` JSON (loadable
in ``chrome://tracing`` / Perfetto).

When tracing is off the hot paths go through :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op context manager: no allocation, no
timestamp reads, no buffer growth.  The no-op guarantee is verified by a
test (``tests/obs/test_tracer.py``).

Multi-process traces
--------------------
The ``proc`` comm backend runs one tracer per worker rank and ships the
buffers to the driver over the command pipe (workers call
:meth:`Tracer.drain_records`, the driver calls
:meth:`Tracer.ingest_remote`).  Ingested records are timestamp-rebased to
the driver's origin — ``perf_counter`` is CLOCK_MONOTONIC on Linux, so
the same clock is readable in every process and a simple shift aligns
the lanes — and exported with a per-rank ``pid``, giving one Perfetto
process track per rank next to the driver's ``pid 0`` lane.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed scope.  Used as a context manager handed out by
    :meth:`Tracer.span`; closed spans land in the tracer's buffer.

    Attributes
    ----------
    name, category:
        Label and coarse grouping (``"stage"``, ``"comm"``, ...).
    start_s, end_s:
        ``perf_counter`` timestamps relative to the tracer's origin.
    span_id, parent_id, depth:
        Tree structure; ``parent_id`` is ``None`` for root spans.
    attributes:
        Arbitrary JSON-serialisable payload (``nbytes``, ``algorithm``,
        ``modeled_s``, ...).
    """

    __slots__ = (
        "name",
        "category",
        "start_s",
        "end_s",
        "span_id",
        "parent_id",
        "depth",
        "tid",
        "attributes",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        attributes: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attributes = attributes
        self.start_s = 0.0
        self.end_s = 0.0
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.tid = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the (possibly still open) span."""
        self.attributes.update(attrs)
        return self

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._close(self)
        return False

    def to_record(self) -> Dict[str, Any]:
        """JSONL-ready dict."""
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "t0": self.start_s,
            "t1": self.end_s,
            "dur": self.duration_s,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "tid": self.tid,
            "attrs": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration_s:.6f}s, "
            f"depth={self.depth}, attrs={self.attributes})"
        )


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same no-op object.

    Hot paths call ``get_tracer().span(...)`` unconditionally; with the
    null tracer that is one attribute lookup and one shared object —
    no timestamps, no allocation, no recording.
    """

    enabled = False

    def span(self, name: str, category: str = "span", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, category: str = "event", **attrs: Any) -> None:
        return None

    @property
    def spans(self) -> tuple:
        return ()

    @property
    def events(self) -> tuple:
        return ()


#: Process-wide shared null tracer (what :func:`repro.obs.get_tracer`
#: returns when no telemetry is installed).
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: hierarchical spans + instantaneous events.

    Spans nest through a *per-thread* stack: a span opened while another
    is active on the same thread becomes its child (``parent_id`` /
    ``depth``).  Closed spans are appended to :attr:`spans` in close
    order (children before parents).

    The tracer is single-process but thread-aware: the prefetching data
    pipeline (:mod:`repro.data`) samples on worker threads, and their
    sampler spans must land in the same trace as the main-thread compute
    spans without corrupting either thread's nesting.  Each OS thread
    gets a compact lane id (``tid``, main/creator thread = 0) carried on
    every span and used as the Chrome-trace ``tid`` — Perfetto then shows
    sampling overlapping compute on separate tracks.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._origin = clock()
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {threading.get_ident(): 0}
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        #: span/event records ingested from other processes' tracers,
        #: already rebased to this tracer's origin and tagged with a pid.
        self.remote_spans: List[Dict[str, Any]] = []
        self.remote_events: List[Dict[str, Any]] = []
        self._process_names: Dict[int, str] = {}

    @property
    def origin(self) -> float:
        """Absolute clock reading all relative timestamps are measured
        from (used to rebase remote lanes onto this tracer's timeline)."""
        return self._origin

    # -- per-thread state ----------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "span", **attrs: Any) -> Span:
        """Create a span; enter it (``with``) to start the clock."""
        return Span(self, name, category, attrs)

    def event(self, name: str, category: str = "event", **attrs: Any) -> None:
        """Record an instantaneous event under the current span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        record = {
            "type": "event",
            "name": name,
            "cat": category,
            "t": self._clock() - self._origin,
            "parent": parent,
            "tid": self._tid(),
            "attrs": attrs,
        }
        with self._lock:
            self.events.append(record)

    # -- span lifecycle (called by Span.__enter__/__exit__) ------------
    def _open(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.tid = self._tid()
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = stack[-1].depth + 1
        stack.append(span)
        span.start_s = self._clock() - self._origin

    def _close(self, span: Span) -> None:
        span.end_s = self._clock() - self._origin
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(open stack: {[s.name for s in stack]})"
            )
        stack.pop()
        with self._lock:
            self.spans.append(span)

    # -- queries -------------------------------------------------------
    def total(self, name: str) -> float:
        """Summed duration of all *closed* spans with this name."""
        return sum(s.duration_s for s in self.spans if s.name == name)

    def count(self, name: str) -> int:
        return sum(1 for s in self.spans if s.name == name)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # -- cross-process shipping ----------------------------------------
    def drain_records(self) -> "tuple[List[Dict[str, Any]], List[Dict[str, Any]]]":
        """Atomically snapshot-and-clear closed spans and events.

        Workers call this at epoch boundaries so repeated shipments carry
        non-overlapping deltas.  Open spans stay on their thread stacks
        and land in a later drain once closed.
        """
        with self._lock:
            span_records = [s.to_record() for s in self.spans]
            event_records = list(self.events)
            self.spans = []
            self.events = []
        return span_records, event_records

    def ingest_remote(
        self,
        spans: Iterable[Dict[str, Any]],
        events: Iterable[Dict[str, Any]],
        pid: int,
        process_name: str,
        time_shift: float = 0.0,
        rank: Optional[int] = None,
    ) -> None:
        """Merge another process's drained records into this trace.

        ``time_shift`` is ``remote_origin - self.origin`` in seconds:
        adding it converts remote-relative timestamps onto this tracer's
        timeline.  ``pid`` must be nonzero (0 is this process's lane);
        ``process_name`` labels the lane in Chrome-trace viewers.
        """
        if pid == 0:
            raise ValueError("pid 0 is reserved for the local lane")
        shifted_spans = []
        for rec in spans:
            rec = dict(rec)
            rec["t0"] = rec["t0"] + time_shift
            rec["t1"] = rec["t1"] + time_shift
            rec["pid"] = pid
            if rank is not None:
                rec["rank"] = rank
            shifted_spans.append(rec)
        shifted_events = []
        for rec in events:
            rec = dict(rec)
            rec["t"] = rec["t"] + time_shift
            rec["pid"] = pid
            if rank is not None:
                rec["rank"] = rank
            shifted_events.append(rec)
        with self._lock:
            self._process_names[pid] = process_name
            self.remote_spans.extend(shifted_spans)
            self.remote_events.extend(shifted_events)

    # -- export --------------------------------------------------------
    def to_jsonl_lines(self) -> List[str]:
        """One JSON object per line: spans (close order) then events.

        Local records carry no ``pid`` key (implicitly lane 0); ingested
        remote records keep their ``pid``/``rank`` tags.
        """
        records: Iterable[Dict[str, Any]] = [s.to_record() for s in self.spans]
        return (
            [json.dumps(r) for r in records]
            + [json.dumps(e) for e in self.events]
            + [json.dumps(r) for r in self.remote_spans]
            + [json.dumps(e) for e in self.remote_events]
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.to_jsonl_lines():
                fh.write(line + "\n")

    def to_chrome_trace(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON object format.

        Loadable in ``chrome://tracing`` and https://ui.perfetto.dev:
        complete (``"X"``) events with microsecond ``ts``/``dur``, plus
        instant (``"i"``) events.  Run metadata rides in ``otherData``.
        """
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for pid, name in sorted(self._process_names.items()):
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for s in self.spans:
            trace_events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.start_s * 1e6,
                    "dur": s.duration_s * 1e6,
                    "pid": 0,
                    "tid": s.tid,
                    "args": dict(s.attributes, depth=s.depth, id=s.span_id,
                                 parent=s.parent_id),
                }
            )
        for e in self.events:
            trace_events.append(
                {
                    "name": e["name"],
                    "cat": e["cat"],
                    "ph": "i",
                    "ts": e["t"] * 1e6,
                    "pid": 0,
                    "tid": e.get("tid", 0),
                    "s": "t",
                    "args": dict(e["attrs"]),
                }
            )
        for r in self.remote_spans:
            args = dict(r.get("attrs", {}), depth=r.get("depth", 0),
                        id=r.get("id"), parent=r.get("parent"))
            if r.get("rank") is not None:
                args["rank"] = r["rank"]
            trace_events.append(
                {
                    "name": r["name"],
                    "cat": r.get("cat", "span"),
                    "ph": "X",
                    "ts": r["t0"] * 1e6,
                    "dur": (r["t1"] - r["t0"]) * 1e6,
                    "pid": r["pid"],
                    "tid": r.get("tid", 0),
                    "args": args,
                }
            )
        for r in self.remote_events:
            args = dict(r.get("attrs", {}))
            if r.get("rank") is not None:
                args["rank"] = r["rank"]
            trace_events.append(
                {
                    "name": r["name"],
                    "cat": r.get("cat", "event"),
                    "ph": "i",
                    "ts": r["t"] * 1e6,
                    "pid": r["pid"],
                    "tid": r.get("tid", 0),
                    "s": "t",
                    "args": args,
                }
            )
        out: Dict[str, Any] = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
        }
        if metadata:
            out["otherData"] = dict(metadata)
        return out

    def write_chrome_trace(
        self, path: str, metadata: Optional[Dict[str, Any]] = None
    ) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(metadata), fh)
